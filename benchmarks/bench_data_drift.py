"""A8 — data-distribution change (the paper's second drift axis).

Workload drift (F1b) changes *which keys are asked for*; data drift
changes *what is stored*. Mid-run, a bulk load injects a dense cluster
of new keys into a previously empty region of the key space, and the
workload immediately starts reading from it. The learned store's models
were trained before the injection: its delta buffer absorbs the new
keys, lookups pay delta-probing costs, and a merge-retrain restores
performance — all visible to the Fig 1b/1c metrics. The B+ tree absorbs
the same injection structurally, with no transient.
"""

from __future__ import annotations

import numpy as np

from bench_common import (
    FANOUT,
    bench_once,
    dataset,
    make_traditional,
)
from repro.core.benchmark import Benchmark
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.metrics.adaptability import recovery_time
from repro.suts.kv_learned import LearnedKVStore
from repro.workloads.distributions import HotspotDistribution
from repro.workloads.generators import simple_spec

RATE = 2500.0
SEG = 30.0


def _scenario(ds) -> Scenario:
    span = ds.high - ds.low
    # The injected cluster sits past the current maximum key.
    new_lo = ds.high + span * 0.05
    new_hi = ds.high + span * 0.10
    rng = np.random.default_rng(61)
    injected = np.sort(rng.uniform(new_lo, new_hi, int(len(ds) * 0.3)))

    before = HotspotDistribution(ds.low, ds.high, ds.low + span * 0.1,
                                 span * 0.05, 0.9)
    # After the injection, 80% of reads target the new cluster.
    after = HotspotDistribution(ds.low, new_hi, new_lo, new_hi - new_lo, 0.8)
    return Scenario(
        name="data-drift",
        segments=[
            Segment(spec=simple_spec("pre-load", before, rate=RATE,
                                     read_fraction=1.0), duration=SEG),
            Segment(
                spec=simple_spec("post-load", after, rate=RATE,
                                 read_fraction=1.0),
                duration=SEG,
                data_injection=injected,
            ),
        ],
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=ds.keys,
        seed=67,
    )


def test_data_drift(benchmark, figure_sink):
    ds = dataset()
    scenario = _scenario(ds)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["learned-kv"] = bench.run(
            LearnedKVStore(max_fanout=FANOUT, retrain_cooldown=2.0,
                           delta_threshold=2048),
            scenario,
        )
        runs["btree-kv"] = bench.run(make_traditional(), scenario)

    bench_once(benchmark, run_all)

    rows = [
        "A8 — bulk data injection mid-run (30% new keys, reads follow)",
        f"{'store':<12s} {'pre p99 ms':>11s} {'post p99 ms':>12s} "
        f"{'recovery s':>11s} {'retrains':>9s}",
    ]
    stats = {}
    for name, result in runs.items():
        pre = [q.latency for q in result.queries_in_segment("pre-load")]
        post = [q.latency for q in result.queries_in_segment("post-load")]
        pre_p99 = float(np.percentile(pre, 99)) * 1000
        post_p99 = float(np.percentile(post, 99)) * 1000
        recovery = recovery_time(result, change_time=SEG, window=3.0)
        online = sum(1 for e in result.training_events if e.online)
        stats[name] = (pre_p99, post_p99, recovery, online)
        rows.append(
            f"{name:<12s} {pre_p99:11.2f} {post_p99:12.2f} "
            f"{str(recovery):>11s} {online:9d}"
        )

    # Shape checks: the learned store pays a visible transient after the
    # injection and retrains at least once to absorb it; it recovers
    # within the post-load segment; the B+ tree's post-injection p99
    # moves far less in relative terms.
    learned = stats["learned-kv"]
    btree = stats["btree-kv"]
    assert learned[1] > learned[0] * 3
    assert learned[3] >= 1
    assert learned[2] is not None and learned[2] < SEG
    assert btree[1] < btree[0] * 3

    figure_sink("data_drift", "\n".join(rows))
