"""L3 — Lesson 3: "Training must be a first-class result."

Two demonstrations:

1. The same learned KV store reported with and without its training
   column: systems with different training budgets look identical under
   execution-only reporting but differ exactly in the training column.
2. Label-collection cost for supervised learned cardinality estimation
   (§IV): reaching a given accuracy requires executing queries whose
   rows processed are an accounted training cost, and the exact-oracle
   alternative is orders of magnitude more expensive per estimate.
"""

from __future__ import annotations

import numpy as np

from bench_common import FANOUT, bench_once, dataset
from repro.core.benchmark import Benchmark
from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.plans import Filter, Scan
from repro.learned.cardinality import (
    LearnedCardinalityEstimator,
    TrueCardinalityOracle,
)
from repro.scenarios import training_budget_scenario
from repro.suts.analytic import build_analytic_catalog
from repro.suts.kv_learned import LearnedKVStore

RATE = 3000.0


def test_lesson3_training_first_class(benchmark, figure_sink):
    ds = dataset()
    bench = Benchmark()
    full = LearnedKVStore(max_fanout=FANOUT).cost_model.full_retrain_seconds(len(ds))
    rows = [
        "Lesson 3 — training as a first-class result",
        f"{'budget':>7s} {'exec q/s':>9s} {'mean lat':>11s} "
        f"{'train nominal s':>16s} {'train $':>10s} {'sessions':>9s}",
    ]
    outcomes = {}

    def run_sweep():
        for fraction in (0.05, 1.0):
            scenario = training_budget_scenario(
                ds, budget_seconds=full * fraction, rate=RATE, duration=20.0
            )
            result = bench.run(LearnedKVStore(max_fanout=FANOUT), scenario)
            outcomes[fraction] = result

    bench_once(benchmark, run_sweep)

    for fraction, result in outcomes.items():
        horizon = result.duration
        tp = float((result.completions() <= horizon).sum()) / horizon
        rows.append(
            f"{fraction:7.0%} {tp:9.1f} "
            f"{np.mean(result.latencies())*1000:9.2f}ms "
            f"{result.total_training_nominal_seconds():16.2f} "
            f"{result.total_training_cost():10.6f} "
            f"{len(result.training_events):9d}"
        )

    # Label-collection accounting for learned cardinality (§IV).
    catalog = build_analytic_catalog(n_orders=4000, n_customers=400, seed=9)
    executor = Executor(catalog)
    model = LearnedCardinalityEstimator([("orders", "amount")])
    model.bind_statistics(catalog)
    plans, cards = [], []
    for threshold in np.linspace(10, 500, 40):
        plan = Filter(Scan("orders"), col("amount") > float(threshold))
        plans.append(plan)
        cards.append(float(executor.execute(plan).table.row_count))
    model.train_batch(plans, cards, catalog)
    oracle = TrueCardinalityOracle(catalog)
    test_plan = Filter(Scan("orders"), col("amount") > 275.0)
    for _ in range(100):
        oracle.estimate(test_plan, catalog)
    rows += [
        "",
        "label-collection cost (supervised cardinality, §IV):",
        f"  learned model: {model.trained_examples} labeled queries, "
        f"{model.label_collection_rows} ground-truth rows collected once",
        f"  exact oracle:  100 estimates cost {oracle.rows_executed} rows executed",
    ]

    # Shape checks: training differs by ~20x while both serve queries;
    # the oracle's per-estimate cost dwarfs the one-off label collection.
    t_small = outcomes[0.05].total_training_nominal_seconds()
    t_full = outcomes[1.0].total_training_nominal_seconds()
    assert t_full > 10 * t_small
    assert float(np.mean(outcomes[1.0].latencies())) < float(
        np.mean(outcomes[0.05].latencies())
    )
    assert oracle.rows_executed > model.label_collection_rows

    figure_sink("lesson3_training", "\n".join(rows))
