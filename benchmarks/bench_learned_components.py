"""A6 — the other §II learned components: sorting and caching.

* Learned CDF sort (Kristo et al., cited in §II): work units vs a
  comparison sort, in-distribution and after the training distribution
  shifts — the same specialize/adapt trade-off at component scale.
* Learned cache eviction vs LRU/LFU: hit rates on a stationary Zipf
  trace and on a scan-polluted trace (where reuse prediction pays off).
"""

from __future__ import annotations

import numpy as np

from bench_common import bench_once
from repro.learned.cache import LearnedCache, LFUCache, LRUCache
from repro.learned.sorter import LearnedSorter, comparison_sort_work

N_SORT = 50_000
CACHE_CAPACITY = 200


def _cache_traces(rng):
    """(stationary Zipf trace, scan-polluted trace)."""
    zipf = rng.zipf(1.4, 40_000) % 4000
    hot = rng.zipf(1.4, 20_000) % 400
    scans = np.concatenate(
        [np.arange(10_000 + 2_000 * i, 10_000 + 2_000 * i + 1000) for i in range(10)]
    )
    polluted = np.concatenate([hot[:10_000], scans, hot[10_000:]])
    return zipf, polluted


def _run_cache(cache, trace):
    for key in trace:
        if cache.get(int(key)) is None:
            cache.put(int(key), key)
    return cache.stats.hit_rate


def test_learned_components(benchmark, figure_sink):
    rng = np.random.default_rng(13)
    results = {}

    def run_all():
        # -- learned sort ---------------------------------------------------
        data = rng.normal(1e6, 1e4, N_SORT)
        in_dist_sorter = LearnedSorter()
        out, report_in = in_dist_sorter.sort(data)
        assert np.array_equal(out, np.sort(data))
        shifted_sorter = LearnedSorter().fit(rng.normal(1e6, 1e4, 2048))
        shifted_data = rng.lognormal(13, 1.5, N_SORT)
        out2, report_out = shifted_sorter.sort(shifted_data)
        assert np.array_equal(out2, np.sort(shifted_data))
        results["sort"] = (report_in, report_out)

        # -- caches -----------------------------------------------------------
        zipf, polluted = _cache_traces(rng)
        cache_rows = {}
        for trace_name, trace in (("zipf", zipf), ("scan-polluted", polluted)):
            for cls in (LRUCache, LFUCache, LearnedCache):
                cache_rows[(trace_name, cls.__name__)] = _run_cache(
                    cls(CACHE_CAPACITY), trace
                )
        results["cache"] = cache_rows

    bench_once(benchmark, run_all)

    report_in, report_out = results["sort"]
    nlogn = comparison_sort_work(N_SORT)
    rows = [
        "A6 — learned sorting and caching",
        "learned CDF sort (work units; comparison sort = "
        f"{nlogn:,.0f}):",
        f"  in-distribution:   {report_in.work_units:12,.0f} "
        f"({report_in.work_units / nlogn:5.2f}x nlogn, "
        f"overflow buckets {report_in.overflow_buckets})",
        f"  shifted data:      {report_out.work_units:12,.0f} "
        f"({report_out.work_units / nlogn:5.2f}x nlogn, "
        f"overflow buckets {report_out.overflow_buckets})",
        "",
        "cache hit rates (capacity "
        f"{CACHE_CAPACITY}):",
        f"{'trace':<15s} {'LRU':>7s} {'LFU':>7s} {'Learned':>8s}",
    ]
    cache_rows = results["cache"]
    for trace_name in ("zipf", "scan-polluted"):
        rows.append(
            f"{trace_name:<15s} "
            f"{cache_rows[(trace_name, 'LRUCache')]:7.3f} "
            f"{cache_rows[(trace_name, 'LFUCache')]:7.3f} "
            f"{cache_rows[(trace_name, 'LearnedCache')]:8.3f}"
        )

    # Shape checks: learned sort beats nlogn in-distribution and loses
    # its edge off-distribution; learned eviction's relative position
    # improves on the scan-polluted trace vs the stationary one.
    assert report_in.work_units < nlogn
    assert report_out.work_units > report_in.work_units
    lru_gap_zipf = (
        cache_rows[("zipf", "LearnedCache")] - cache_rows[("zipf", "LRUCache")]
    )
    lru_gap_scan = (
        cache_rows[("scan-polluted", "LearnedCache")]
        - cache_rows[("scan-polluted", "LRUCache")]
    )
    assert lru_gap_scan > lru_gap_zipf

    figure_sink("learned_components", "\n".join(rows))
