"""L4 — Lesson 4: "We cannot ignore the human cost anymore."

Three-year TCO comparison across workload-change frequencies: the
traditional system needs a DBA re-tune per change, the learned system an
(accounted, cheap) automatic retrain. The crossover in change frequency
is the lesson: the more dynamic the environment, the more the human
cost dominates.
"""

from __future__ import annotations

from bench_common import FANOUT, bench_once, dataset
from repro.core.benchmark import Benchmark
from repro.core.hardware import GPU
from repro.metrics.cost import DBAModel, TCOModel
from repro.scenarios import training_budget_scenario
from repro.suts.kv_learned import LearnedKVStore


def test_lesson4_tco(benchmark, figure_sink):
    ds = dataset()
    bench = Benchmark()
    full = LearnedKVStore(max_fanout=FANOUT).cost_model.full_retrain_seconds(len(ds))
    holder = {}

    def run_once():
        # One real run to measure the actual per-session training cost.
        scenario = training_budget_scenario(
            ds, budget_seconds=full, rate=2000.0, duration=15.0
        )
        holder["result"] = bench.run(LearnedKVStore(max_fanout=FANOUT), scenario)

    bench_once(benchmark, run_once)
    result = holder["result"]
    session_cost_cpu = result.total_training_cost()
    session_cost_gpu = GPU.cost_of_nominal(result.total_training_nominal_seconds())

    tco = TCOModel(hardware_monthly=300.0, horizon_months=36.0, dba=DBAModel())
    tuning_level = 2  # the DBA effort needed to match learned performance
    rows = [
        "Lesson 4 — 3-year TCO vs workload-change frequency",
        f"(hardware ${tco.hardware_monthly}/mo x {tco.horizon_months:.0f} months; "
        f"DBA level {tuning_level} = "
        f"${tco.dba.cost_of_level(tuning_level):,.0f} per (re)tune; "
        f"learned retrain = ${session_cost_cpu:.6f} CPU / "
        f"${session_cost_gpu:.6f} GPU)",
        f"{'changes over horizon':>21s} {'traditional $':>14s} "
        f"{'learned(CPU) $':>15s} {'learned(GPU) $':>15s}",
    ]
    crossover_seen = False
    for changes in (0, 1, 4, 12, 36, 120):
        traditional = tco.traditional_tco(tuning_level, retunes=changes)
        learned_cpu = tco.learned_tco(session_cost_cpu, sessions=changes + 1)
        learned_gpu = tco.learned_tco(session_cost_gpu, sessions=changes + 1)
        rows.append(
            f"{changes:>21d} {traditional:14,.0f} {learned_cpu:15,.2f} "
            f"{learned_gpu:15,.2f}"
        )
        if learned_cpu < traditional:
            crossover_seen = True

    # Shape checks: learned TCO is flat in change frequency; traditional
    # TCO grows linearly with it; learned wins from the first re-tune.
    base = tco.traditional_tco(tuning_level, retunes=0)
    busy = tco.traditional_tco(tuning_level, retunes=36)
    assert busy > base
    assert crossover_seen
    assert tco.learned_tco(session_cost_cpu, 121) - tco.learned_tco(
        session_cost_cpu, 1
    ) < tco.dba.cost_of_level(tuning_level)

    figure_sink("lesson4_tco", "\n".join(rows))
