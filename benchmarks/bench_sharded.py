"""SH — sharded streaming: merged shards == one stream, with speedup.

Three claims pinned here. First, *equivalence at scale*: a 2M-query
multi-segment run fanned across 4 worker processes must merge into the
same summary the unsharded streaming path produces — integer/grid
metric payloads byte-identical, query/op/segment counts equal, float
summaries within 1e-9 (the Chan combine's summation tree differs; see
DESIGN.md §10). Second, *speedup*: on a machine with >= 4 CPUs the
4-shard run must finish at least 2x faster than the unsharded run
(shards simulate disjoint stream slices concurrently); on smaller
machines the assertion is skipped but both walls are still recorded.
Third, *resilience*: a shard whose worker dies hard (``os._exit``)
mid-attempt must be retried under the executor's budget and still merge
bit-clean.

Writes ``BENCH_sharded.json`` into ``benchmarks/results/`` (walls,
speedup, shard plan, crash-recovery attempts). Scale knob:
``REPRO_BENCH_SHARD_QUERIES`` overrides the 2M default.
"""

from __future__ import annotations

import json
import os
import time
from functools import partial
from pathlib import Path

import numpy as np

from bench_common import bench_once
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.sharded import run_sharded_streaming
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import HotspotDistribution, UniformDistribution
from repro.workloads.generators import simple_spec

#: Offered load. The btree SUT's simulated capacity on the 50k-key
#: domain is ~2360 q/s; 1500 q/s keeps utilization ~0.64 so the queue
#: drains inside every segment and shard boundaries are clean (the
#: equivalence precondition the executor's drain check verifies).
RATE = 1500.0
TOTAL_QUERIES = int(os.environ.get("REPRO_BENCH_SHARD_QUERIES", 2_000_000))
N_SHARDS = 4
N_KEYS = 50_000
KEY_DOMAIN = 100_000.0
BLOCK_SIZE = 65_536
SLA = 0.050

#: Integer/grid-derived payloads: byte-identical under any shard plan.
EXACT_METRICS = {"throughput", "adaptability", "sla", "recovery", "adjustment_speed"}

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_RECORD_PATH = os.path.join(_RESULTS_DIR, "BENCH_sharded.json")


def _scenario(total_queries: int, n_segments: int = N_SHARDS) -> Scenario:
    """Multi-segment scenario totalling ``total_queries`` arrivals.

    One segment per target shard so ``plan_shards`` hands each worker a
    whole segment; alternating key patterns keep the drift machinery in
    the loop like the streaming memory gate does.
    """
    per_segment = total_queries // n_segments
    duration = per_segment / RATE
    uniform = UniformDistribution(0, KEY_DOMAIN)
    hotspot = HotspotDistribution(
        0, KEY_DOMAIN, hot_start=0.1 * KEY_DOMAIN,
        hot_width=0.05 * KEY_DOMAIN, hot_fraction=0.9,
    )
    segments = [
        Segment(
            spec=simple_spec(
                f"seg-{i}", uniform if i % 2 == 0 else hotspot, rate=RATE
            ),
            duration=duration,
            label=f"seg-{i}",
        )
        for i in range(n_segments)
    ]
    return Scenario(
        name=f"sharded-{total_queries}",
        segments=segments,
        seed=13,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def _config(total_queries: int) -> DriverConfig:
    """Driver knobs for the equivalence runs.

    ``jitter_arrivals=False`` keeps arrivals evenly spaced (0.67 ms at
    1500 q/s) so the 0.42 ms service always completes before the next
    arrival — every segment boundary drains *deterministically*, which
    is the precondition for bit-identical shard merges. With jitter on,
    the last arrival of a segment can land inside a service window and
    push work across the boundary (the executor's drain check would
    flag it rather than miscount).
    """
    return DriverConfig(
        block_size=BLOCK_SIZE,
        max_queries=total_queries + 1,
        jitter_arrivals=False,
    )


def _assert_summaries_equivalent(merged, reference):
    """The merge contract: integers byte-for-byte, floats to 1e-9."""
    assert merged.num_queries == reference.num_queries
    assert merged.op_counts == reference.op_counts
    assert merged.segment_counts == reference.segment_counts
    assert merged.max_completion == reference.max_completion
    assert set(merged.metrics) == set(reference.metrics)
    for name, payload in merged.metrics.items():
        if name in EXACT_METRICS:
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                reference.metrics[name], sort_keys=True
            ), f"grid metric {name!r} observed the shard boundaries"
        else:
            _assert_close(name, payload, reference.metrics[name])


def _assert_close(name, got, want, path=""):
    where = f"{name}{path}"
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), where
        for key in want:
            _assert_close(name, got[key], want[key], f"{path}.{key}")
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want), where
        for i, item in enumerate(want):
            _assert_close(name, got[i], item, f"{path}[{i}]")
    elif isinstance(want, float):
        assert np.isclose(got, want, rtol=1e-9, atol=0.0, equal_nan=True), (
            f"{where}: {got!r} != {want!r}"
        )
    else:
        assert got == want, f"{where}: {got!r} != {want!r}"


def _update_record(**fields):
    """Merge fields into ``BENCH_sharded.json`` (tests run separately)."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    record = {}
    if os.path.exists(_RECORD_PATH):
        with open(_RECORD_PATH) as handle:
            record = json.load(handle)
    record.update(fields)
    with open(_RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2)


def test_sharded_matches_unsharded_with_speedup(benchmark, figure_sink):
    """2M queries, 4 shards: byte-identical merge, >= 2x wall speedup."""
    config = _config(TOTAL_QUERIES)
    state = {}

    def both_runs():
        t0 = time.perf_counter()
        state["reference"] = VirtualClockDriver(config).run_streaming(
            TraditionalKVStore(), _scenario(TOTAL_QUERIES), sla=SLA
        )
        state["unsharded_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        state["merged"] = run_sharded_streaming(
            TraditionalKVStore,
            _scenario(TOTAL_QUERIES),
            shards=N_SHARDS,
            config=config,
            sla=SLA,
        )
        state["sharded_s"] = time.perf_counter() - t0

    bench_once(benchmark, both_runs)
    reference, merged = state["reference"], state["merged"]
    unsharded_s, sharded_s = state["unsharded_s"], state["sharded_s"]

    # Even spacing can round one arrival off the end of each segment.
    assert merged.num_queries >= TOTAL_QUERIES - 2 * N_SHARDS
    _assert_summaries_equivalent(merged, reference)
    assert merged.sharding["shards"] == N_SHARDS
    assert merged.sharding["boundaries_drained"] is True

    speedup = unsharded_s / max(sharded_s, 1e-9)
    cpus = os.cpu_count() or 1
    gate_applied = cpus >= N_SHARDS
    if gate_applied:
        assert speedup >= 2.0, (
            f"4-shard run only {speedup:.2f}x faster than unsharded "
            f"({sharded_s:.1f}s vs {unsharded_s:.1f}s) on {cpus} CPUs"
        )

    _update_record(
        bench="sharded",
        n_queries=int(merged.num_queries),
        n_shards=N_SHARDS,
        shard_queries=merged.sharding["shard_queries"],
        unsharded_wall_s=round(unsharded_s, 2),
        sharded_wall_s=round(sharded_s, 2),
        speedup=round(speedup, 2),
        cpu_count=cpus,
        speedup_gate_applied=gate_applied,
        identical_integer_payloads=True,
        boundaries_drained=True,
    )
    figure_sink(
        "sharded_scaling",
        "\n".join(
            [
                f"sharded streaming: {merged.num_queries:,} queries, "
                f"{N_SHARDS} shards on {cpus} CPUs",
                f"  unsharded wall : {unsharded_s:6.1f}s",
                f"  sharded wall   : {sharded_s:6.1f}s ({speedup:.2f}x)",
                "  merge          : integer payloads byte-identical, "
                "floats <= 1e-9",
                f"  speedup gate   : {'enforced (>= 2x)' if gate_applied else f'skipped ({cpus} CPUs < {N_SHARDS})'}",
            ]
        ),
    )


def _crash_once_factory(marker):
    """First worker to run dies hard; later attempts build a real SUT."""
    if not os.path.exists(marker):
        Path(marker).touch()
        os._exit(3)
    return TraditionalKVStore()


def test_crash_injected_shard_recovers(tmp_path, figure_sink):
    """A hard-crashed shard retries under budget and merges bit-clean."""
    queries = min(TOTAL_QUERIES // 20, 100_000)
    config = _config(queries)
    reference = VirtualClockDriver(config).run_streaming(
        TraditionalKVStore(), _scenario(queries), sla=SLA
    )
    merged = run_sharded_streaming(
        partial(_crash_once_factory, str(tmp_path / "crashed")),
        _scenario(queries),
        shards=N_SHARDS,
        config=config,
        sla=SLA,
        max_attempts=3,
        retry_backoff=0.0,
    )
    attempts = merged.sharding["attempts"]
    assert sum(attempts) > N_SHARDS, "crash injection never fired"
    _assert_summaries_equivalent(merged, reference)

    _update_record(
        crash_recovery={
            "n_queries": int(merged.num_queries),
            "attempts": attempts,
            "recovered": True,
        }
    )
    figure_sink(
        "sharded_crash_recovery",
        "\n".join(
            [
                f"crash-injected shard recovery ({merged.num_queries:,} queries)",
                f"  attempts per shard : {attempts}",
                "  merged summary     : identical to unsharded reference",
            ]
        ),
    )
