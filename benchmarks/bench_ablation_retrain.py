"""A1 — Ablation: drift detection and retraining policy.

Same abrupt-shift scenario, four adaptation policies: no adaptation,
slow detector (large window), fast detector (small window), and a
hair-trigger detector (small window, low threshold). Measures the Fig 1b
area and total training spend, exposing the detection-latency vs
retraining-churn trade-off the benchmark is designed to surface.
"""

from __future__ import annotations

from bench_common import (
    FANOUT,
    RATE,
    SEG_DURATION,
    bench_once,
    dataset,
    make_static,
)
from repro.core.benchmark import Benchmark
from repro.metrics.adaptability import area_between_systems
from repro.scenarios import abrupt_shift, expected_access_sample
from repro.suts.kv_learned import LearnedKVStore


def _policy(name, sample, window, threshold):
    return LearnedKVStore(
        name=name,
        max_fanout=FANOUT,
        drift_window=window,
        drift_threshold=threshold,
        retrain_cooldown=2.0,
        expected_access_sample=sample,
    )


def test_ablation_retrain_policy(benchmark, figure_sink):
    ds = dataset()
    scenario = abrupt_shift(ds, rate=RATE, segment_duration=SEG_DURATION,
                            train_budget=1e9)
    sample = expected_access_sample(scenario)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["no-adapt"] = bench.run(make_static(sample), scenario)
        runs["slow-detector"] = bench.run(
            _policy("slow-detector", sample, window=4096, threshold=0.15), scenario
        )
        runs["fast-detector"] = bench.run(
            _policy("fast-detector", sample, window=512, threshold=0.15), scenario
        )
        runs["hair-trigger"] = bench.run(
            _policy("hair-trigger", sample, window=128, threshold=0.05), scenario
        )

    bench_once(benchmark, run_all)

    baseline = runs["no-adapt"]
    rows = [
        "A1 — retraining-policy ablation (abrupt shift)",
        f"{'policy':<16s} {'area vs no-adapt':>17s} {'retrains':>9s} "
        f"{'train nominal s':>16s}",
    ]
    areas = {}
    for name, result in runs.items():
        area = area_between_systems(result, baseline)
        areas[name] = area
        online = sum(1 for e in result.training_events if e.online)
        rows.append(
            f"{name:<16s} {area:17,.0f} {online:9d} "
            f"{result.total_training_nominal_seconds():16.1f}"
        )

    # Shape checks: any adaptation beats none; the fast detector beats
    # the slow one; the hair-trigger pays more training for little gain.
    assert areas["fast-detector"] > 0
    assert areas["slow-detector"] > 0
    assert areas["fast-detector"] >= areas["slow-detector"]
    hair = runs["hair-trigger"].total_training_nominal_seconds()
    fast = runs["fast-detector"].total_training_nominal_seconds()
    assert hair >= fast

    figure_sink("ablation_retrain", "\n".join(rows))
