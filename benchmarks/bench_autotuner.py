"""A7 — automatic knob tuning vs DBA effort (the §II tuning family).

The third column of the Fig 1d comparison: besides *learning new
components* (the RMI) and *paying a DBA*, one can *auto-tune the
traditional system's knobs*. The tuner searches the B+ tree's order and
the store's tuning level against a probe workload; its cost is
evaluations × probe time, priced on the same serving hardware.

Expected: the tuner recovers most of the DBA's gain at machine-time
prices, but the learned store still dominates because its specialization
is finer-grained than any knob.
"""

from __future__ import annotations

import numpy as np

from bench_common import FANOUT, bench_once
from repro.core.hardware import CPU
from repro.learned.tuner import KnobSpace, KnobTuner, tuning_cost_seconds
from repro.suts.kv_learned import LearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.generators import KVOperation, KVQuery

PROBE_QUERIES = 400


def test_autotuner_vs_dba(benchmark, figure_sink):
    from repro.data.datasets import build_dataset
    from repro.scenarios import hotspot

    # The 'books' dataset: learnable CDF, where the structural advantage
    # of a trained model over any knob setting is cleanest (per SOSD and
    # our A2 ablation).
    ds = build_dataset("books", n=50_000, seed=7)
    pairs = ds.pairs()
    rng = np.random.default_rng(19)
    # A skewed probe workload: knobs can only help uniformly, whereas the
    # learned store specializes to the hot region — the granularity gap
    # this experiment is about.
    probe_dist = hotspot(ds, 0.1)
    probe_keys = probe_dist.sample(rng, PROBE_QUERIES)
    probe_keys = ds.keys[
        np.clip(np.searchsorted(ds.keys, probe_keys), 0, len(ds.keys) - 1)
    ]
    access_sample = probe_dist.sample(rng, 4096)

    def probe(store) -> float:
        """Total virtual service time of the probe workload."""
        return sum(
            store.execute(KVQuery(op=KVOperation.READ, key=float(k)), 0.0)
            for k in probe_keys
        )

    outcome = {}

    def run_all():
        def objective(config):
            store = TraditionalKVStore(
                order=config["order"], tuning_level=config["level"]
            )
            store.setup(pairs)
            return probe(store)

        space = KnobSpace.of(order=(16, 32, 64, 128, 256), level=(0, 1, 2, 3))
        result = KnobTuner(space, objective, budget=16).tune()
        outcome["tuning"] = result

        # Reference points under the same probe.
        default_store = TraditionalKVStore()
        default_store.setup(pairs)
        outcome["default"] = probe(default_store)
        learned = LearnedKVStore(max_fanout=FANOUT,
                                 expected_access_sample=access_sample)
        learned.setup(pairs)
        learned.offline_train(1e9)
        outcome["learned"] = probe(learned)
        outcome["learned_train"] = learned.training.nominal_seconds

    bench_once(benchmark, run_all)

    result = outcome["tuning"]
    probe_seconds = outcome["default"]  # one evaluation ≈ one probe run
    tuner_cost = CPU.cost(tuning_cost_seconds(result, probe_seconds))
    learned_cost = CPU.cost_of_nominal(outcome["learned_train"])
    rows = [
        "A7 — auto-tuner vs DBA vs learned store (probe: "
        f"{PROBE_QUERIES} point reads)",
        f"{'configuration':<26s} {'probe time s':>13s} {'cost $':>12s}",
        f"{'btree defaults':<26s} {outcome['default']:13.4f} {0.0:12.6f}",
        f"{'btree auto-tuned ' + str(result.best):<26s} "
        f"{result.best_score:13.4f} {tuner_cost:12.6f}",
        f"{'learned (full training)':<26s} {outcome['learned']:13.4f} "
        f"{learned_cost:12.6f}",
        f"tuner: {result.evaluation_count} evaluations, "
        f"converged={result.converged}",
    ]

    # Shape checks: tuning helps the traditional store; the learned
    # store still beats the tuned one; machine costs are tiny vs DBA $.
    assert result.best_score < outcome["default"]
    assert outcome["learned"] < result.best_score
    assert tuner_cost < 1.0

    figure_sink("autotuner", "\n".join(rows))
