"""F1d — Fig 1d: throughput per cost.

Sweeps the learned store's training budget (on CPU and GPU hardware
profiles) and the traditional store's DBA tuning level, then prints the
two cost→throughput curves and the paper's new single-value metric:
the *training cost to outperform* the manually tuned system.

Throughput saturates at the offered rate when a system keeps up, so the
curve is reported at an offered load high enough that only well-trained
configurations sustain it; mean latency is reported alongside.
"""

from __future__ import annotations

import numpy as np

from bench_common import FANOUT, bench_once, dataset, make_traditional
from repro.core.benchmark import Benchmark
from repro.core.hardware import CPU, GPU
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario
from repro.metrics.cost import DBAModel, training_cost_to_outperform
from repro.reporting.figures import render_fig1d
from repro.scenarios import training_budget_scenario
from repro.suts.kv_learned import LearnedKVStore

RATE = 3200.0
DURATION = 20.0


def _scenario(budget: float, hardware) -> Scenario:
    ds = dataset()
    scenario = training_budget_scenario(
        ds, budget_seconds=budget, rate=RATE, duration=DURATION
    )
    scenario.initial_training = TrainingPhase(budget_seconds=budget, hardware=hardware)
    return scenario


def _effective_throughput(result) -> float:
    """Completions within the horizon / horizon (saturation-aware)."""
    horizon = result.duration
    return float((result.completions() <= horizon).sum()) / horizon


def test_fig1d_cost(benchmark, figure_sink):
    ds = dataset()
    bench = Benchmark()
    full = LearnedKVStore(max_fanout=FANOUT).cost_model.full_retrain_seconds(len(ds))
    learned_curve = []
    rows = []

    def run_sweep():
        for hardware in (CPU, GPU):
            for fraction in (0.02, 0.1, 0.3, 0.6, 1.0):
                scenario = _scenario(full * fraction, hardware)
                sut = LearnedKVStore(max_fanout=FANOUT)
                result = bench.run(sut, scenario)
                cost = result.total_training_cost()
                throughput = _effective_throughput(result)
                learned_curve.append((cost, throughput))
                rows.append(
                    (hardware.name, fraction, cost, throughput,
                     float(np.mean(result.latencies())))
                )

    bench_once(benchmark, run_sweep)

    dba = DBAModel()
    traditional_levels = []
    for level in range(dba.levels):
        scenario = _scenario(0.0, CPU)
        result = bench.run(make_traditional(level), scenario)
        traditional_levels.append(
            (dba.cost_of_level(level), _effective_throughput(result))
        )

    crossover = training_cost_to_outperform(learned_curve, traditional_levels)
    text = render_fig1d(
        learned_curve,
        traditional_levels,
        crossover,
        learned_name="learned-kv",
        traditional_name="btree-kv(DBA)",
    )
    detail = ["", "training-budget sweep detail:",
              f"{'hw':<5s} {'budget':>7s} {'cost $':>10s} {'eff q/s':>9s} {'mean lat':>10s}"]
    for hw, fraction, cost, tp, latency in rows:
        detail.append(
            f"{hw:<5s} {fraction:7.0%} {cost:10.4f} {tp:9.1f} {latency*1000:8.2f}ms"
        )
    text += "\n" + "\n".join(detail)

    # Shape checks: throughput non-decreasing in budget (per hardware),
    # GPU strictly cheaper for the same budget fraction, finite crossover.
    cpu_rows = [r for r in rows if r[0] == "cpu"]
    assert cpu_rows[-1][3] >= cpu_rows[0][3]  # full budget >= starved
    assert cpu_rows[-1][4] < cpu_rows[0][4]  # latency improves with budget
    gpu_full = next(r for r in rows if r[0] == "gpu" and r[1] == 1.0)
    cpu_full = next(r for r in rows if r[0] == "cpu" and r[1] == 1.0)
    assert gpu_full[2] < cpu_full[2]  # same training, cheaper on GPU
    assert crossover is not None and crossover < dba.cost_of_level(1)

    figure_sink("fig1d_cost", text)
