"""A9 — the drift-factor axis: one knob from "no drift" to "full shift".

Sweeps ``drift_factor`` over the canonical ``drift_axis`` scenario
family (base read-only hotspot → mixed-op hotspot at the far end of the
key space) for the adaptive learned store and the B+ tree. Per cell the
figure reports the *computed* Φ between the base and drifted segments —
measured from realized probe streams, not assumed from the knob — plus
the drifted-segment throughput and the Fig 1b adaptability numbers, so
the chart is performance *against measured drift intensity*.

Two invariants are asserted, mirroring the property-test layer at
experiment scale:

* realized Φ is monotone non-decreasing in the factor (the knob is
  honest), pinned to exactly 0 at factor 0;
* the factor-0 and factor-1 cells are bit-identical to the unblended
  reference scenarios — the axis adds no RNG perturbation at the
  endpoints.

Writes ``BENCH_drift.json`` into ``benchmarks/results/`` (per-factor Φ
and throughput/adaptability rows for both stores).
"""

from __future__ import annotations

import json
import os
from functools import partial

import numpy as np

from bench_common import (
    RATE,
    bench_once,
    dataset,
    make_learned,
    make_traditional,
    matrix_run,
)
from repro.metrics.adaptability import adaptability_vs_drift
from repro.metrics.specialization import drift_specialization_curve
from repro.scenarios import drift_axis, drift_axis_reference

FACTORS = (0.0, 0.25, 0.5, 0.75, 1.0)
SEG = 20.0

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

COLUMNS = ("arrivals", "starts", "completions", "op_codes", "segment_codes")


def _columns_identical(a, b) -> bool:
    return all(
        np.array_equal(getattr(a.columns, n), getattr(b.columns, n))
        for n in COLUMNS
    )


def test_drift_axis(benchmark, figure_sink):
    ds = dataset()
    scenarios = {
        factor: drift_axis(ds, factor=factor, rate=RATE, segment_duration=SEG)
        for factor in FACTORS
    }
    references = {
        endpoint: drift_axis_reference(
            ds, endpoint=endpoint, rate=RATE, segment_duration=SEG
        )
        for endpoint in ("base", "target")
    }
    factories = {
        "learned-kv": partial(make_learned, None),
        "btree-kv": make_traditional,
    }

    runs = {}  # (sut, factor) -> RunResult
    ref_runs = {}  # endpoint -> RunResult (btree only)

    def run_all():
        for factor, scenario in scenarios.items():
            for sut, result in matrix_run(factories, scenario).items():
                runs[(sut, factor)] = result
        for endpoint, scenario in references.items():
            ref_runs[endpoint] = matrix_run(
                {"btree-kv": make_traditional}, scenario
            )["btree-kv"]

    bench_once(benchmark, run_all)

    # Per-SUT metric curves; Φ is a scenario property, so both SUTs see
    # the same Φ column and it only has to be computed per factor.
    curves = {
        sut: drift_specialization_curve(
            [(scenarios[f], runs[(sut, f)]) for f in FACTORS]
        )
        for sut in factories
    }
    adapt = {
        sut: adaptability_vs_drift(
            [(scenarios[f], runs[(sut, f)]) for f in FACTORS]
        )
        for sut in factories
    }

    phis = [row["phi"] for row in curves["btree-kv"]]
    # The knob is honest: measured Φ starts at exactly 0 (the blend *is*
    # the base spec) and grows with the factor, finite-sample noise aside.
    assert phis[0] == 0.0
    assert all(b >= a - 0.02 for a, b in zip(phis, phis[1:]))
    assert phis[-1] > 0.3

    # Endpoint cells are bit-identical to the unblended references.
    assert _columns_identical(runs[("btree-kv", 0.0)], ref_runs["base"])
    assert _columns_identical(runs[("btree-kv", 1.0)], ref_runs["target"])

    # The learned store's drifted-segment latency degrades with Φ while
    # the B+ tree stays comparatively flat — Fig 1a along the new axis.
    learned = curves["learned-kv"]
    assert learned[-1]["mean_latency"] > learned[0]["mean_latency"]

    rows = [
        "A9 — drift-factor sweep (computed Φ, drifted-segment stats)",
        f"{'factor':>6s} {'phi':>7s} {'phi_dat':>7s} {'phi_mix':>7s} "
        f"{'learned ms':>10s} {'btree ms':>9s} {'learned rec s':>13s}",
    ]
    for i, factor in enumerate(FACTORS):
        row = curves["learned-kv"][i]
        recovery = adapt["learned-kv"][i]["recovery_seconds"]
        rows.append(
            f"{factor:6.2f} {row['phi']:7.4f} {row['phi_data']:7.4f} "
            f"{row['phi_workload']:7.4f} "
            f"{row['mean_latency'] * 1000:10.3f} "
            f"{curves['btree-kv'][i]['mean_latency'] * 1000:9.3f} "
            f"{str(recovery):>13s}"
        )

    record = {
        "bench": "drift-axis",
        "factors": list(FACTORS),
        "rate": RATE,
        "segment_duration": SEG,
        "endpoints_bit_identical": True,
        "curves": curves,
        "adaptability": adapt,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, "BENCH_drift.json"), "w") as handle:
        json.dump(record, handle, indent=2)

    figure_sink("drift_axis_sweep", "\n".join(rows))
