"""A3 — Learned query optimization under *stale statistics* (§II).

The classic optimizer failure the learned approaches target: statistics
are collected once (``ANALYZE`` at setup), then a bulk load appends rows
in a value region the histograms believe is empty, and the workload
moves its predicates there.

* The traditional optimizer estimates ≈0 rows for those filters and
  picks nested-loop joins ("it's only a handful of rows") — each such
  plan then touches hundreds of thousands of row pairs.
* The learned SUT observes real cardinalities from every executed query
  (§IV's ground-truth-during-execution) and its bandit steering learns
  to avoid the disaster arms within a few dozen queries.

Reported per phase: mean/p95 service time per system, plus totals.
"""

from __future__ import annotations

import numpy as np

from bench_common import bench_once
from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticWorkload,
    LearnedOptimizerSUT,
    TraditionalOptimizerSUT,
    build_analytic_catalog,
)
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import AbruptDrift

RATE = 15.0
SEG = 20.0
#: Value region that exists only after the mid-run bulk load.
NEW_LO, NEW_HI = 1000.0, 1200.0


def _make_workload(seed: int) -> AnalyticWorkload:
    drift = AbruptDrift(
        [UniformDistribution(0.0, 150.0), UniformDistribution(NEW_LO, NEW_HI - 80)],
        [SEG],
    )
    return AnalyticWorkload(threshold_drift=drift, window=80.0,
                            join_fraction=0.8, seed=seed)


def _inject(catalog, rng) -> None:
    """Bulk-load 1,500 orders with amounts in the new region."""
    orders = catalog.get("orders")
    rows = [
        {
            "oid": 100_000 + i,
            "cid": int(rng.integers(0, 400)),
            "amount": float(rng.uniform(NEW_LO, NEW_HI)),
        }
        for i in range(1500)
    ]
    orders.append_rows(rows)


def test_learned_optimizer_stale_statistics(benchmark, figure_sink):
    results = {}

    def run_all():
        for name, factory in (
            ("traditional-optimizer", TraditionalOptimizerSUT),
            ("learned-optimizer", LearnedOptimizerSUT),
        ):
            catalog = build_analytic_catalog(n_orders=4000, n_customers=400, seed=9)
            rng = np.random.default_rng(29)
            sut = factory(catalog)
            results[name] = AnalyticDriver(seed=17).run(
                sut,
                [
                    ("before-load", _make_workload(3), SEG, RATE),
                    ("after-load", _make_workload(3), SEG, RATE),
                ],
                scenario_name="stale-statistics",
                segment_hooks={"after-load": lambda: _inject(catalog, rng)},
            )

    bench_once(benchmark, run_all)

    rows = [
        "A3 — stale statistics: traditional vs learned optimization",
        "(bulk load lands in a region ANALYZE never saw; predicates follow)",
        f"{'system':<24s} {'segment':<12s} {'mean svc ms':>12s} {'p95 svc ms':>11s}",
    ]
    summary = {}
    for name, result in results.items():
        for segment in ("before-load", "after-load"):
            services = [q.service_time for q in result.queries
                        if q.segment == segment]
            mean_ms = float(np.mean(services)) * 1000
            p95_ms = float(np.percentile(services, 95)) * 1000
            summary[(name, segment)] = mean_ms
            rows.append(f"{name:<24s} {segment:<12s} {mean_ms:12.3f} {p95_ms:11.3f}")

    trad_after = summary[("traditional-optimizer", "after-load")]
    learned_after = summary[("learned-optimizer", "after-load")]
    rows.append(
        f"after-load speedup from learning: {trad_after / learned_after:.1f}x"
    )

    # Shape checks: before the load the two are comparable; after it the
    # stale-statistics optimizer degrades hard while the learned one
    # stays in the same regime.
    trad_before = summary[("traditional-optimizer", "before-load")]
    assert trad_after > trad_before * 3  # the stale-stats disaster
    assert learned_after < trad_after / 2  # learning avoids it

    figure_sink("learned_optimizer", "\n".join(rows))
