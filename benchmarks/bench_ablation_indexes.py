"""A2 — Ablation: index structures (SOSD-style sanity check).

Measures real wall-clock lookup/insert time and the abstract cost-model
charge for every index structure on every synthetic dataset. This backs
the virtual-time cost model: the *ordering* of structures under the
model must match their ordering by counted work, and the learned
structures must beat the B+ tree on learnable datasets while losing
their edge on the adversarial one — SOSD's headline finding.
"""

from __future__ import annotations

import time

import numpy as np

from bench_common import bench_once
from repro.data.datasets import build_dataset
from repro.indexes import (
    AdaptiveLearnedIndex,
    BPlusTree,
    PGMIndex,
    RecursiveModelIndex,
    SortedArrayIndex,
)
from repro.suts.cost_models import KVCostModel

DATASETS = ["uniform", "books", "osm", "fb", "adversarial"]
N = 50_000
PROBES = 2_000


def _factories():
    return {
        "btree": lambda: BPlusTree(order=64),
        "sorted-array": lambda: SortedArrayIndex(),
        "rmi": lambda: RecursiveModelIndex(fanout=1024, max_delta=None),
        "pgm": lambda: PGMIndex(epsilon=32, max_delta=None),
        "alex": lambda: AdaptiveLearnedIndex(node_capacity=256),
    }


def test_ablation_index_structures(benchmark, figure_sink):
    model = KVCostModel()
    rows = [
        "A2 — index-structure ablation (lookup cost per dataset)",
        f"{'dataset':<12s} {'index':<13s} {'model µs/op':>12s} "
        f"{'wall µs/op':>11s} {'nodes/op':>9s}",
    ]
    table = {}

    def run_all():
        rng = np.random.default_rng(3)
        for ds_name in DATASETS:
            ds = build_dataset(ds_name, n=N, seed=7)
            pairs = ds.pairs()
            probes = rng.choice(ds.keys, PROBES)
            for index_name, factory in _factories().items():
                index = factory()
                index.bulk_load(pairs)
                before = index.stats.snapshot()
                t0 = time.perf_counter()
                for key in probes:
                    index.get(float(key))
                wall = (time.perf_counter() - t0) / PROBES * 1e6
                delta = index.stats.snapshot().diff(before)
                per_op = model.service_time(delta) / PROBES * 1e6
                table[(ds_name, index_name)] = (
                    per_op,
                    wall,
                    delta.node_accesses / PROBES,
                )

    bench_once(benchmark, run_all)

    for (ds_name, index_name), (per_op, wall, nodes) in table.items():
        rows.append(
            f"{ds_name:<12s} {index_name:<13s} {per_op:12.1f} {wall:11.1f} "
            f"{nodes:9.2f}"
        )

    # Shape checks (SOSD's qualitative findings):
    # learned indexes beat the B+ tree on learnable data...
    for ds_name in ("uniform", "books", "fb"):
        assert table[(ds_name, "rmi")][0] < table[(ds_name, "btree")][0]
        assert table[(ds_name, "pgm")][0] < table[(ds_name, "btree")][0]
    # ...and the advantage shrinks or flips on the hard datasets.
    easy_ratio = table[("uniform", "rmi")][0] / table[("uniform", "btree")][0]
    hard_ratio = table[("adversarial", "rmi")][0] / table[("adversarial", "btree")][0]
    assert hard_ratio > easy_ratio

    figure_sink("ablation_indexes", "\n".join(rows))
