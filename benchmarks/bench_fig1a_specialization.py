"""F1a — Fig 1a: throughput per workload/data distribution, ordered by Φ.

Runs the specialization ladder (hotspots at increasing distance from the
trained baseline, plus a hold-out) against the static learned store, the
adaptive learned store, and the B+ tree, and prints the box-plot rows of
Fig 1a. Expected shape: the static learned store's throughput median
drops (and dispersion grows) as Φ increases; the hold-out sits below the
in-sample segments; the traditional store is flat across Φ.
"""

from __future__ import annotations

from functools import partial

from bench_common import (
    RATE,
    bench_once,
    dataset,
    make_learned,
    make_static,
    make_traditional,
    matrix_run,
)
from repro.metrics.specialization import specialization_report
from repro.reporting.figures import render_fig1a
from repro.scenarios import expected_access_sample, specialization_ladder


def test_fig1a_specialization(benchmark, figure_sink):
    ds = dataset()
    scenario, holdout = specialization_ladder(
        ds, rate=RATE, segment_duration=20.0, train_budget=1e9
    )
    sample = expected_access_sample(scenario)

    runs = {}

    def run_all():
        runs.update(matrix_run(
            {
                "static-learned-kv": partial(make_static, sample),
                "learned-kv": partial(make_learned, sample),
                "btree-kv": make_traditional,
            },
            scenario,
        ))

    bench_once(benchmark, run_all)

    reports = [
        specialization_report(result, scenario, holdout_labels=(holdout,))
        for result in runs.values()
    ]
    text = render_fig1a(reports)

    # Shape checks (the paper's expected qualitative result).
    static = next(r for r in reports if r.sut_name == "static-learned-kv")
    near, far = static.segments[0], static.segments[-1]
    assert near.phi < far.phi
    assert far.mean_latency > near.mean_latency  # specialization decays with Φ
    traditional = next(r for r in reports if r.sut_name == "btree-kv")
    trad_medians = [s.throughput.median for s in traditional.segments]
    spread = (max(trad_medians) - min(trad_medians)) / max(trad_medians)
    assert spread < 0.25  # traditional is (near-)flat across Φ

    figure_sink("fig1a_specialization", text)
