"""L2 — Lesson 2: "Average metrics do not capture adaptability."

Demonstration: two systems with (near-)identical *average* throughput
over the run whose behaviour is completely different — one is steady,
one stalls through the transition and catches up. The averages table
says "tie"; the descriptive statistics, throughput CV, and adjustment
speed say otherwise.
"""

from __future__ import annotations

import numpy as np

from bench_common import (
    SEG_DURATION,
    bench_once,
    dataset,
    make_learned,
    make_traditional,
)
from repro.core.benchmark import Benchmark
from repro.metrics.adaptability import adaptability_report
from repro.metrics.descriptive import box_stats
from repro.metrics.sla import adjustment_speed, calibrate_sla
from repro.scenarios import abrupt_shift, expected_access_sample

# Offered rate below BOTH systems' sustained capacity, so both complete
# every query and post the same average throughput.
RATE = 2000.0


def test_lesson2_averages_hide_adaptability(benchmark, figure_sink):
    ds = dataset()
    scenario = abrupt_shift(ds, rate=RATE, segment_duration=SEG_DURATION,
                            train_budget=1e9)
    sample = expected_access_sample(scenario)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["learned-kv"] = bench.run(make_learned(sample), scenario)
        runs["btree-kv"] = bench.run(make_traditional(), scenario)

    bench_once(benchmark, run_all)

    learned, traditional = runs["learned-kv"], runs["btree-kv"]
    sla = calibrate_sla(traditional, percentile=99.0, headroom=1.5)
    change = scenario.segments[0].duration

    rows = ["Lesson 2 — identical averages, different systems",
            f"{'metric':<28s} {'learned-kv':>14s} {'btree-kv':>14s}"]

    def add(metric, a, b, fmt="{:14.2f}"):
        rows.append(f"{metric:<28s} {fmt.format(a):>14s} {fmt.format(b):>14s}"
                    if isinstance(fmt, str) else f"{metric:<28s} {a:>14} {b:>14}")

    avg_l = learned.mean_throughput()
    avg_t = traditional.mean_throughput()
    add("mean throughput (q/s)", avg_l, avg_t)
    _, counts_l = learned.throughput_series()
    _, counts_t = traditional.throughput_series()
    stats_l, stats_t = box_stats(counts_l[:-1]), box_stats(counts_t[:-1])
    add("throughput q1", stats_l.q1, stats_t.q1)
    add("throughput min", stats_l.minimum, stats_t.minimum)
    report_l = adaptability_report(learned)
    report_t = adaptability_report(traditional)
    add("throughput CV", report_l.throughput_cv, report_t.throughput_cv,
        "{:14.3f}")
    n_after = int(RATE * 10)
    adj_l = adjustment_speed(learned, change, n_after, sla)
    adj_t = adjustment_speed(traditional, change, n_after, sla)
    add("adjustment speed (s)", adj_l, adj_t)
    p999_l = float(np.percentile(learned.latencies(), 99.9))
    p999_t = float(np.percentile(traditional.latencies(), 99.9))
    add("p99.9 latency (ms)", p999_l * 1000, p999_t * 1000)

    # Shape checks: averages tie; dynamics do not.
    assert abs(avg_l - avg_t) / avg_t < 0.02  # "the same system" by averages
    assert stats_l.minimum < stats_t.minimum * 0.7  # the stall is visible
    assert report_l.throughput_cv > report_t.throughput_cv * 1.5
    assert adj_l > adj_t  # the learned system pays a transition cost

    figure_sink("lesson2_averages", "\n".join(rows))
