"""A4 — §V-B: abrupt vs gradual workload transitions.

"A workload can slowly transition to another or transition abruptly.
The type of transition can impact performance and adaptability in
non-obvious ways." This bench runs the same A→B hotspot move as one
abrupt switch and as a linear mixing ramp, against the adaptive learned
store, and compares the Fig 1b/1c metrics.

Measured result (a genuinely non-obvious one, as §V-B warns): the
abrupt switch needs ONE retrain and a few stalled seconds; the gradual
ramp keeps the distribution moving, so every retrain goes stale and the
store retrains repeatedly — more total stall, worse tail latency. The
transition *type* changes the optimal adaptation policy, which is
precisely why the benchmark must make it configurable.
"""

from __future__ import annotations

import numpy as np

from bench_common import RATE, bench_once, dataset, make_learned
from repro.core.benchmark import Benchmark
from repro.metrics.adaptability import area_vs_ideal
from repro.scenarios import abrupt_shift, expected_access_sample, gradual_shift

SEG = 30.0


def test_transition_types(benchmark, figure_sink):
    ds = dataset()
    abrupt = abrupt_shift(ds, rate=RATE, segment_duration=SEG, train_budget=1e9)
    gradual = gradual_shift(
        ds, rate=RATE, total_duration=2 * SEG, transition_fraction=0.4,
        train_budget=1e9,
    )
    sample = expected_access_sample(abrupt)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["abrupt"] = bench.run(make_learned(sample), abrupt)
        runs["gradual"] = bench.run(make_learned(sample), gradual)

    bench_once(benchmark, run_all)

    rows = [
        "A4 — transition-type comparison (adaptive learned store)",
        f"{'transition':<10s} {'stalled s':>10s} {'area vs ideal':>14s} "
        f"{'p99 lat ms':>11s} {'online retrains':>16s}",
    ]
    stats = {}
    for name, result in runs.items():
        _, counts = result.throughput_series(interval=1.0)
        # Seconds in which the system delivered < half the offered rate
        # (excluding the final partial bucket).
        stalled = int((counts[:-1] < 0.5 * RATE).sum())
        p99 = float(np.percentile(result.latencies(), 99)) * 1000
        online = sum(1 for e in result.training_events if e.online)
        stats[name] = (stalled, area_vs_ideal(result), p99, online)
        rows.append(
            f"{name:<10s} {stalled:10d} {stats[name][1]:14,.0f} "
            f"{p99:11.1f} {online:16d}"
        )

    # Shape checks: the abrupt switch is handled with a single retrain;
    # the moving target of the gradual ramp forces repeated retraining
    # and at least as much total stall.
    assert stats["abrupt"][3] == 1
    assert stats["gradual"][3] > stats["abrupt"][3]
    assert stats["gradual"][0] >= stats["abrupt"][0]

    figure_sink("transition_types", "\n".join(rows))
