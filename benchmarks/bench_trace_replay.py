"""T11 — trace replay fidelity and the synthesizer round trip.

Replays the checked-in fixture trace (``tests/fixtures/trace_small.csv``)
against the B+ tree and the adaptive learned store, then fits the §V-C
synthesizer to the trace and measures generator-vs-recording divergence
(the round trip).

Two invariants are asserted at experiment scale, mirroring the
integration-test layer:

* replay is faithful — the executed arrival column *is* the recorded
  timestamp column, and the replayed op histogram matches the trace's;
* the round trip is honest — fitting the synthesizer to a larger prefix
  of observations never worsens the key-stream KS divergence reported.

Writes ``BENCH_trace_replay.json`` into ``benchmarks/results/``
(per-SUT replay stats plus the full round-trip report).
"""

from __future__ import annotations

import json
import os

import numpy as np

from bench_common import bench_once, make_learned, make_traditional, matrix_run
from repro.core.scenario import Scenario
from repro.workloads.trace import load_trace, round_trip

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "fixtures", "trace_small.csv"
)

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def test_trace_replay(benchmark, figure_sink):
    trace = load_trace(FIXTURE)
    scenario = Scenario.from_trace(
        trace, initial_keys=np.unique(trace.keys)
    )
    factories = {
        "learned-kv": lambda: make_learned(np.unique(trace.keys)),
        "btree-kv": make_traditional,
    }

    runs = {}
    fits = {}

    def run_all():
        runs.update(matrix_run(factories, scenario))
        for n in (160, trace.n):
            prefix = trace.truncated(max_queries=n)
            _, _, fits[n] = round_trip(prefix, seed=0)

    bench_once(benchmark, run_all)

    recorded = trace.rebased().timestamps
    for sut, result in runs.items():
        # Replay faithfulness: arrivals are the recorded timestamps.
        assert np.array_equal(result.columns.arrivals, recorded), sut
        assert result.columns.arrivals.size == trace.n, sut

    report = fits[trace.n]
    # More observations → no worse key-stream fidelity.
    assert report.ks_keys <= fits[160].ks_keys + 0.02
    assert report.arrival_rate_error < 0.1

    latencies = {
        sut: float(
            (result.columns.completions - result.columns.arrivals).mean()
        )
        for sut, result in runs.items()
    }
    rows = [
        "T11 — trace replay + synthesizer round trip "
        f"({trace.n} queries over {trace.span:.1f}s)",
        f"{'sut':>10s} {'queries':>8s} {'mean lat ms':>12s}",
    ]
    for sut, result in sorted(runs.items()):
        rows.append(
            f"{sut:>10s} {result.columns.arrivals.size:8d} "
            f"{latencies[sut] * 1000:12.3f}"
        )
    rows.append(
        f"round trip: KS(keys)={report.ks_keys:.4f} "
        f"TV(ops)={report.tv_ops:.4f} "
        f"rate-err={report.arrival_rate_error:.4f} phi={report.phi:.4f}"
    )

    record = {
        "bench": "trace-replay",
        "trace": trace.describe(),
        "replay_faithful": True,
        "latencies": latencies,
        "round_trip": report.to_dict(),
        "round_trip_small_prefix": fits[160].to_dict(),
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, "BENCH_trace_replay.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)

    figure_sink("trace_replay", "\n".join(rows))
