"""DB — driver batching: the vectorized query pipeline vs the scalar loop.

Runs the same 500k-query scenario (B+ tree store, steady read-only
uniform workload) through both driver paths: the retained scalar/heap
reference (``use_batching=False``) and the batched pipeline
(``use_batching=True`` — vectorized generation, ``execute_batch`` with
bulk index lookups, the FIFO prefix-sum kernel, and block appends into
the columnar recorder).

Both paths consume the same :class:`QueryBatch` per segment, so the
asserts demand *bit-identical* result columns — any divergence in the
queueing kernel, the op-code interning order, or the bulk index
counters fails the equality checks before the ≥ 5x speedup bar is even
consulted.

A third timed run repeats the batched path with a live
:class:`~repro.observability.Tracer` attached, pinning the tracing
overhead: the NullTracer default must cost nothing measurable (the
default batched run IS the NullTracer run), and even full tracing must
keep the pipeline >= 5x faster than the scalar loop — per-segment spans,
never per-query, is what makes that hold.

Writes a ``BENCH_driver.json`` perf record into ``benchmarks/results/``
(per-path seconds, per-query microseconds, speedup, tracing overhead)
alongside the usual figure text.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from bench_common import bench_once
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.observability import Tracer
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

#: 2500 q/s × 200 s = 500k queries.
RATE = 2500.0
DURATION = 200.0
N_KEYS = 50_000
KEY_DOMAIN = 100_000.0

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_scenario() -> Scenario:
    """Steady read-only scenario sized for 500k queries."""
    spec = simple_spec(
        "steady", UniformDistribution(0, KEY_DOMAIN), rate=RATE
    )
    return Scenario(
        name="driver-batching-500k",
        segments=[Segment(spec=spec, duration=DURATION)],
        seed=42,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def _run(use_batching: bool, tracer=None):
    driver = VirtualClockDriver(
        DriverConfig(use_batching=use_batching), tracer=tracer
    )
    sut = TraditionalKVStore()
    t0 = time.perf_counter()
    result = driver.run(sut, build_scenario())
    return result, time.perf_counter() - t0


def test_driver_batching_speedup(benchmark, figure_sink):
    ref_result, ref_s = _run(use_batching=False)

    state = {}

    def batched_run():
        state["result"], state["seconds"] = _run(use_batching=True)

    bench_once(benchmark, batched_run)
    vec_result, vec_s = state["result"], state["seconds"]

    # Bit-identical columns, not merely statistically equivalent ones.
    ref_cols, vec_cols = ref_result.columns, vec_result.columns
    n = ref_cols.arrivals.size
    assert n == int(RATE * DURATION)
    for name in ("arrivals", "starts", "completions", "op_codes", "segment_codes"):
        assert np.array_equal(getattr(ref_cols, name), getattr(vec_cols, name)), (
            f"column {name!r} diverged between scalar and batched paths"
        )
    assert ref_cols.op_vocab == vec_cols.op_vocab
    assert ref_cols.segment_vocab == vec_cols.segment_vocab
    # The SUT did the same genuine work either way (index counters match).
    assert ref_result.sut_description == vec_result.sut_description

    speedup = ref_s / max(vec_s, 1e-9)
    assert speedup >= 5.0, (
        f"batched driver only {speedup:.1f}x faster "
        f"(scalar {ref_s:.2f}s, batched {vec_s:.2f}s)"
    )

    # Same batched pipeline with a live tracer: results stay identical
    # and the per-segment instrumentation must not erase the speedup.
    tracer = Tracer()
    traced_result, traced_s = _run(use_batching=True, tracer=tracer)
    trace = tracer.finish()
    for name in ("arrivals", "starts", "completions", "op_codes", "segment_codes"):
        assert np.array_equal(
            getattr(traced_result.columns, name), getattr(vec_cols, name)
        ), f"column {name!r} diverged when tracing was enabled"
    assert trace.counter("driver.queries") == n
    traced_speedup = ref_s / max(traced_s, 1e-9)
    assert traced_speedup >= 5.0, (
        f"full tracing drags the batched driver to {traced_speedup:.1f}x "
        f"vs scalar (traced {traced_s:.2f}s, scalar {ref_s:.2f}s)"
    )
    overhead_pct = (traced_s - vec_s) / max(vec_s, 1e-9) * 100.0

    record = {
        "bench": "driver_batching",
        "n_queries": int(n),
        "scenario": "steady read-only uniform, B+ tree store",
        "scalar_s": round(ref_s, 4),
        "batched_s": round(vec_s, 4),
        "traced_s": round(traced_s, 4),
        "scalar_us_per_query": round(ref_s / n * 1e6, 3),
        "batched_us_per_query": round(vec_s / n * 1e6, 3),
        "speedup": round(speedup, 2),
        "traced_speedup": round(traced_speedup, 2),
        "tracing_overhead_pct": round(overhead_pct, 2),
        "identical_columns": True,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, "BENCH_driver.json"), "w") as handle:
        json.dump(record, handle, indent=2)

    figure_sink(
        "driver_batching",
        "\n".join(
            [
                f"batched driver pipeline on {n:,} queries (identical columns)",
                f"  scalar : {ref_s:6.2f}s ({ref_s / n * 1e6:6.2f} us/query)",
                f"  batched: {vec_s:6.2f}s ({vec_s / n * 1e6:6.2f} us/query)",
                f"  traced : {traced_s:6.2f}s "
                f"({overhead_pct:+5.1f}% vs NullTracer)",
                f"  speedup: {speedup:5.1f}x (bar: >= 5x; "
                f"traced {traced_speedup:5.1f}x)",
            ]
        ),
    )
