"""SM — streaming pipeline: bounded-memory runs, bit-identical metrics.

Two claims are pinned here. First, *equivalence*: a 500k-query run
through the streaming path (fixed-size blocks, online accumulators,
raw columns spilled to sharded ``.npz``) must reproduce the in-memory
path exactly — reloaded spill columns bit-for-bit equal to
``RunResult.columns``, and every grid-metric payload byte-identical to
folding the same columns as one giant block (block size must be
unobservable). Second, *bounded memory*: a 10M-query multi-segment run
— 5x the in-memory driver's default safety valve — must finish with the
process high-water RSS (``resource.getrusage``) under a declared budget
that the in-memory path could not meet, because only per-segment
batches and fixed-size scratch ever exist at once.

The memory gate runs this file alone in its own CI job (``ru_maxrss``
is a lifetime high-water mark, so co-resident tests would pollute it).
Scale knob: ``REPRO_BENCH_STREAM_QUERIES=100000000`` locally pushes the
same test to 100M queries, which must stay under 2 GB.

Writes ``BENCH_streaming.json`` into ``benchmarks/results/`` (query
counts, wall seconds, queries/second, peak RSS vs budget).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time

import numpy as np

from bench_common import bench_once
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import StreamBlock, load_spilled_columns
from repro.metrics import streaming_accumulators
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import HotspotDistribution, UniformDistribution
from repro.workloads.generators import simple_spec

#: 2500 q/s x 200 s = 500k queries for the equivalence run.
RATE = 2500.0
OVERLAP_QUERIES = 500_000
#: Queries per segment in the memory-gate run (bounds the generator's
#: per-segment working set regardless of total run size).
SEGMENT_QUERIES = 500_000
#: CI-scale memory-gate run: 10M queries (5x the driver's default
#: ``max_queries`` valve), override with REPRO_BENCH_STREAM_QUERIES.
GATE_QUERIES = int(os.environ.get("REPRO_BENCH_STREAM_QUERIES", 10_000_000))
#: Peak-RSS budgets (MB). The in-memory path stores five columns plus
#: sorted/latency views for every query (~50 bytes/query before metric
#: scratch), so 10M queries cannot fit the CI budget; streaming must.
RSS_BUDGET_MB = 1200 if GATE_QUERIES <= 20_000_000 else 2048

N_KEYS = 50_000
KEY_DOMAIN = 100_000.0
BLOCK_SIZE = 65_536

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _maxrss_mb() -> float:
    """Process lifetime high-water RSS in MB (KB on Linux, B on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform != "darwin" else peak / (1024.0**2)


def _overlap_scenario() -> Scenario:
    """Steady read-only scenario sized for 500k queries."""
    spec = simple_spec("steady", UniformDistribution(0, KEY_DOMAIN), rate=RATE)
    return Scenario(
        name="streaming-overlap-500k",
        segments=[Segment(spec=spec, duration=OVERLAP_QUERIES / RATE)],
        seed=42,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def _gate_scenario(total_queries: int) -> Scenario:
    """Multi-segment scenario totalling ``total_queries`` arrivals.

    Segments alternate between a uniform and a hotspot key pattern so
    the run exercises drift across many boundaries while each segment's
    batch — the generator's working set — stays at ``SEGMENT_QUERIES``.
    """
    n_segments = max(1, total_queries // SEGMENT_QUERIES)
    duration = SEGMENT_QUERIES / RATE
    uniform = UniformDistribution(0, KEY_DOMAIN)
    hotspot = HotspotDistribution(
        0, KEY_DOMAIN, hot_start=0.1 * KEY_DOMAIN,
        hot_width=0.05 * KEY_DOMAIN, hot_fraction=0.9,
    )
    segments = [
        Segment(
            spec=simple_spec(
                f"seg-{i:03d}", uniform if i % 2 == 0 else hotspot, rate=RATE
            ),
            duration=duration,
            label=f"seg-{i:03d}",
        )
        for i in range(n_segments)
    ]
    return Scenario(
        name=f"streaming-gate-{total_queries}",
        segments=segments,
        seed=7,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def _one_block_metrics(columns, scenario, sla, horizon):
    """Fold a full column set as ONE block through fresh accumulators."""
    accumulators = streaming_accumulators(scenario, sla=sla)
    block = StreamBlock(
        arrivals=columns.arrivals,
        starts=columns.starts,
        completions=columns.completions,
        op_codes=columns.op_codes,
        segment_codes=columns.segment_codes,
    )
    for acc in accumulators:
        acc.fold(block)
    return {acc.name: acc.finalize(horizon) for acc in accumulators}


#: Metrics whose payloads are integer/grid-derived and therefore
#: byte-identical regardless of block boundaries. Float *summations*
#: (latency mean/std, per-segment mean latency) use per-block partials,
#: so their summation tree legitimately depends on the block size and
#: they are compared to last-few-ULP tolerance instead — the scoping
#: DESIGN.md section 9 documents.
EXACT_METRICS = {"throughput", "adaptability", "sla", "recovery", "adjustment_speed"}


def _assert_close_payload(name, got, want, path=""):
    """Recursively compare payloads; float leaves to 1e-9 rtol."""
    where = f"{name}{path}"
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), where
        for key in want:
            _assert_close_payload(name, got[key], want[key], f"{path}.{key}")
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want), where
        for i, item in enumerate(want):
            _assert_close_payload(name, got[i], item, f"{path}[{i}]")
    elif isinstance(want, float):
        assert np.isclose(got, want, rtol=1e-9, atol=0.0, equal_nan=True), (
            f"{where}: {got!r} != {want!r}"
        )
    else:
        assert got == want, f"{where}: {got!r} != {want!r}"


def test_streaming_matches_in_memory_bit_for_bit(tmp_path, figure_sink):
    """500k-query overlap: spill + online metrics == in-memory path."""
    sla = 0.050

    in_memory = VirtualClockDriver(DriverConfig())
    result = in_memory.run(TraditionalKVStore(), _overlap_scenario())

    streaming = VirtualClockDriver(DriverConfig(block_size=BLOCK_SIZE))
    t0 = time.perf_counter()
    summary = streaming.run_streaming(
        TraditionalKVStore(),
        _overlap_scenario(),
        sla=sla,
        spill_dir=str(tmp_path / "spill"),
    )
    stream_s = time.perf_counter() - t0

    # Raw data path: spilled shards reassemble the exact column set.
    spilled = load_spilled_columns(summary.spill["directory"])
    cols = result.columns
    assert spilled.size == cols.size == OVERLAP_QUERIES
    for name in ("arrivals", "starts", "completions", "op_codes", "segment_codes"):
        assert np.array_equal(getattr(spilled, name), getattr(cols, name)), (
            f"spilled column {name!r} diverged from the in-memory run"
        )
    assert spilled.op_vocab == cols.op_vocab
    assert spilled.segment_vocab == cols.segment_vocab

    # Metric path: many small blocks == one giant block, byte for byte.
    reference = _one_block_metrics(cols, _overlap_scenario(), sla, summary.horizon)
    assert set(summary.metrics) == set(reference)
    for name, payload in summary.metrics.items():
        if name in EXACT_METRICS:
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                reference[name], sort_keys=True
            ), f"grid metric {name!r} depends on the block size"
        else:
            _assert_close_payload(name, payload, reference[name])

    # Anchors into the offline kernels the rest of the suite pins.
    _, offline_counts = result.throughput_series(interval=1.0)
    assert summary.metrics["throughput"]["counts"] == offline_counts.tolist()
    assert summary.num_queries == cols.size
    assert summary.mean_throughput() == result.mean_throughput()

    figure_sink(
        "streaming_overlap",
        "\n".join(
            [
                f"streaming vs in-memory on {cols.size:,} queries",
                "  spilled columns : bit-identical (5 columns + vocabs)",
                f"  metric payloads : byte-identical ({len(summary.metrics)} "
                "accumulators, block size unobservable)",
                f"  streaming wall  : {stream_s:6.2f}s",
            ]
        ),
    )


def test_streaming_memory_gate(benchmark, figure_sink):
    """>= 10M queries end to end under the declared peak-RSS budget."""
    scenario = _gate_scenario(GATE_QUERIES)
    driver = VirtualClockDriver(
        DriverConfig(block_size=BLOCK_SIZE, max_queries=GATE_QUERIES + 1)
    )

    state = {}

    def gated_run():
        t0 = time.perf_counter()
        state["summary"] = driver.run_streaming(TraditionalKVStore(), scenario)
        state["seconds"] = time.perf_counter() - t0

    bench_once(benchmark, gated_run)
    summary, seconds = state["summary"], state["seconds"]
    peak_mb = _maxrss_mb()

    assert summary.num_queries >= GATE_QUERIES, (
        f"run produced {summary.num_queries:,} queries, wanted {GATE_QUERIES:,}"
    )
    assert len(summary.segments) == GATE_QUERIES // SEGMENT_QUERIES
    assert summary.metrics["throughput"]["mean_throughput"] > 0
    assert peak_mb <= RSS_BUDGET_MB, (
        f"peak RSS {peak_mb:.0f} MB exceeds the {RSS_BUDGET_MB} MB budget "
        f"for {GATE_QUERIES:,} streamed queries"
    )

    record = {
        "bench": "streaming",
        "n_queries": int(summary.num_queries),
        "n_segments": len(summary.segments),
        "block_size": BLOCK_SIZE,
        "wall_s": round(seconds, 2),
        "queries_per_s": round(summary.num_queries / max(seconds, 1e-9)),
        "peak_rss_mb": round(peak_mb, 1),
        "rss_budget_mb": RSS_BUDGET_MB,
        "overlap_queries": OVERLAP_QUERIES,
        "identical_overlap": True,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, "BENCH_streaming.json"), "w") as handle:
        json.dump(record, handle, indent=2)

    figure_sink(
        "streaming_memory_gate",
        "\n".join(
            [
                f"streaming memory gate: {summary.num_queries:,} queries, "
                f"{len(summary.segments)} segments",
                f"  wall     : {seconds:6.1f}s "
                f"({summary.num_queries / max(seconds, 1e-9):,.0f} q/s)",
                f"  peak RSS : {peak_mb:6.0f} MB (budget {RSS_BUDGET_MB} MB)",
            ]
        ),
    )
