"""Shared experiment configuration for the benchmark harness.

One place for the scale knobs so every figure runs on the same substrate:
the `osm`-shaped dataset (the hard, lumpy one — mirroring SOSD), offered
rates chosen so the learned store's *specialized* capacity exceeds the
offered load while its *mis-specialized* capacity does not, which is the
regime where the paper's dynamic metrics have signal.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.benchmark import Benchmark
from repro.data.datasets import Dataset, build_dataset
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore

#: Dataset size for all KV experiments.
N_KEYS = 50_000
#: Leaf-model budget matched to N_KEYS (see tests/integration notes).
FANOUT = 160
#: Offered load for the shift experiments (queries/second).
RATE = 3200.0
#: Segment length (virtual seconds).
SEG_DURATION = 30.0


@lru_cache(maxsize=1)
def dataset() -> Dataset:
    """The shared experiment dataset."""
    return build_dataset("osm", n=N_KEYS, seed=7)


def make_learned(sample=None, **kwargs) -> LearnedKVStore:
    """Adaptive learned store at experiment scale."""
    return LearnedKVStore(
        max_fanout=FANOUT,
        retrain_cooldown=2.0,
        expected_access_sample=sample,
        **kwargs,
    )


def make_static(sample=None) -> StaticLearnedKVStore:
    """Non-adaptive learned store at experiment scale."""
    return StaticLearnedKVStore(max_fanout=FANOUT, expected_access_sample=sample)


def make_traditional(level: int = 0) -> TraditionalKVStore:
    """B+ tree store at the given DBA tuning level."""
    return TraditionalKVStore(tuning_level=level)


def bench_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic virtual-clock simulations, so one
    round measures the harness cost without re-running minutes of
    simulation per statistical round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
