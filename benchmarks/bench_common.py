"""Shared experiment configuration for the benchmark harness.

One place for the scale knobs so every figure runs on the same substrate:
the `osm`-shaped dataset (the hard, lumpy one — mirroring SOSD), offered
rates chosen so the learned store's *specialized* capacity exceeds the
offered load while its *mis-specialized* capacity does not, which is the
regime where the paper's dynamic metrics have signal.

Figure scripts go through :func:`matrix_run`, which fans their (SUT ×
scenario) jobs across the process-pool matrix runner and caches results
under ``benchmarks/results/cache/`` — re-running a figure only executes
jobs whose inputs changed. Environment knobs:

* ``REPRO_BENCH_WORKERS`` — pool size (default: one per job, capped at
  the CPU count; ``1`` forces serial).
* ``REPRO_CACHE_DIR`` — cache location override.
* ``REPRO_BENCH_NO_CACHE=1`` — disable the result cache.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Dict

from repro.core.driver import DriverConfig
from repro.core.results import RunResult
from repro.core.runner import MatrixJob, MatrixRunner
from repro.data.datasets import Dataset, build_dataset
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore

#: Dataset size for all KV experiments.
N_KEYS = 50_000
#: Leaf-model budget matched to N_KEYS (see tests/integration notes).
FANOUT = 160
#: Offered load for the shift experiments (queries/second).
RATE = 3200.0
#: Segment length (virtual seconds).
SEG_DURATION = 30.0


@lru_cache(maxsize=1)
def dataset() -> Dataset:
    """The shared experiment dataset."""
    return build_dataset("osm", n=N_KEYS, seed=7)


def make_learned(sample=None, **kwargs) -> LearnedKVStore:
    """Adaptive learned store at experiment scale."""
    return LearnedKVStore(
        max_fanout=FANOUT,
        retrain_cooldown=2.0,
        expected_access_sample=sample,
        **kwargs,
    )


def make_static(sample=None) -> StaticLearnedKVStore:
    """Non-adaptive learned store at experiment scale."""
    return StaticLearnedKVStore(max_fanout=FANOUT, expected_access_sample=sample)


def make_traditional(level: int = 0) -> TraditionalKVStore:
    """B+ tree store at the given DBA tuning level."""
    return TraditionalKVStore(tuning_level=level)


def bench_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic virtual-clock simulations, so one
    round measures the harness cost without re-running minutes of
    simulation per statistical round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: Result-cache directory shared by every figure script.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
    os.path.dirname(__file__), "results", "cache"
)
#: Process-pool size for figure matrices (None → one worker per job,
#: capped at the CPU count).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None
#: Master cache switch (REPRO_BENCH_NO_CACHE=1 forces re-execution).
USE_CACHE = not os.environ.get("REPRO_BENCH_NO_CACHE")


def matrix_run(
    factories: Dict[str, Callable], scenario, servers: int = 1
) -> Dict[str, RunResult]:
    """Run ``{name: SUT factory}`` against ``scenario`` via the runner.

    Jobs fan out across the process pool and hit the shared result cache;
    parallel results are identical to serial ones (the driver seeds every
    RNG from the scenario), so figures are reproducible either way. Any
    failed job raises — a figure must never render from partial data.
    """
    jobs = [
        MatrixJob(sut_factory=factory, scenario=scenario, label=name)
        for name, factory in factories.items()
    ]
    runner = MatrixRunner(
        driver_config=DriverConfig(servers=servers),
        workers=WORKERS,
        cache_dir=CACHE_DIR if USE_CACHE else None,
    )
    return runner.run(jobs).raise_on_failure().named()
