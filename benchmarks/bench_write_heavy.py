"""A5 — learned-index design points under a write-heavy workload.

YCSB-A-shaped stream (50% reads / 30% updates / 20% inserts) with keys
drawn from the live distribution, so the dataset grows throughout the
run. Compares the three learned design points the literature offers —
RMI + delta buffer (rebuild on threshold), ALEX-style in-place gapped
arrays, ε-bounded PGM + delta — against the B+ tree.

Expected: the B+ tree and ALEX absorb writes smoothly; the delta-based
learned stores pay periodic merge/rebuild costs; everyone stays correct.
"""

from __future__ import annotations

import numpy as np

from bench_common import FANOUT, bench_once, dataset, make_traditional
from repro.core.benchmark import Benchmark
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.metrics.descriptive import box_stats
from repro.suts.kv_learned import LearnedKVStore
from repro.suts.kv_variants import AlexKVStore, PGMKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import KVOperation, OperationMix, WorkloadSpec
from repro.workloads.patterns import ConstantArrivals

RATE = 1500.0
DURATION = 40.0


def _write_heavy_scenario(ds) -> Scenario:
    spec = WorkloadSpec(
        name="write-heavy",
        mix=OperationMix(
            {
                KVOperation.READ: 0.5,
                KVOperation.UPDATE: 0.3,
                KVOperation.INSERT: 0.2,
            }
        ),
        key_drift=NoDrift(UniformDistribution(ds.low, ds.high)),
        arrivals=ConstantArrivals(RATE),
    )
    return Scenario(
        name="write-heavy",
        segments=[Segment(spec=spec, duration=DURATION)],
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=ds.keys,
        seed=53,
    )


def test_write_heavy_design_points(benchmark, figure_sink):
    ds = dataset()
    scenario = _write_heavy_scenario(ds)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["btree-kv"] = bench.run(make_traditional(), scenario)
        runs["rmi-delta-kv"] = bench.run(
            LearnedKVStore(name="rmi-delta-kv", max_fanout=FANOUT,
                           retrain_cooldown=2.0),
            scenario,
        )
        runs["alex-kv"] = bench.run(AlexKVStore(), scenario)
        runs["pgm-kv"] = bench.run(PGMKVStore(epsilon=32, max_delta=8192), scenario)

    bench_once(benchmark, run_all)

    rows = [
        "A5 — write-heavy workload (50r/30u/20i, growing dataset)",
        f"{'store':<14s} {'median lat ms':>14s} {'p99 lat ms':>11s} "
        f"{'max lat ms':>11s} {'final keys':>11s}",
    ]
    stats = {}
    for name, result in runs.items():
        latencies = result.latencies() * 1000
        summary = box_stats(latencies)
        p99 = float(np.percentile(latencies, 99))
        stats[name] = (summary.median, p99, summary.maximum)
        final_keys = len(ds) + sum(1 for q in result.queries if q.op == "insert")
        rows.append(
            f"{name:<14s} {summary.median:14.3f} {p99:11.1f} "
            f"{summary.maximum:11.1f} {final_keys:11d}"
        )

    # Shape checks: all four sustain the load (median latency in the
    # service-time regime, not the queueing-collapse regime); ALEX's tail
    # is tighter than the delta-rebuild stores' (no bulk retrain stalls).
    for name, (median, _, _) in stats.items():
        assert median < 50.0, name
    assert stats["alex-kv"][2] < stats["rmi-delta-kv"][2]
    assert stats["alex-kv"][2] < stats["pgm-kv"][2]

    figure_sink("write_heavy", "\n".join(rows))
