"""A10 — continuous drift: the rotating hotspot.

The shift experiments (F1b/F1c) have a *final* distribution the learned
store can converge to. Real diurnal locality never converges: the hot
region sweeps the key space continuously. This bench runs one full
rotation against four policies — aggressive adaptation (2 s retrain
cooldown), conservative adaptation (10 s), no adaptation (generic
data-linear model), and the B+ tree.

Measured result (and the reason a benchmark must include continuous
drift, not just step changes): under continuous rotation,
**workload-specialization is a liability**. Every retrain specializes to
a hotspot position that is already moving away, so the adaptive
policies churn — paying stop-the-world retrains for models that are
stale on arrival — while the *generic* (never-specialized) learned model
and the B+ tree sail through. Adaptation policies tuned on step-change
benchmarks can be pathological in production-shaped drift; Lesson 1
cuts both ways.
"""

from __future__ import annotations

import numpy as np

from bench_common import FANOUT, bench_once, dataset, make_traditional
from repro.core.benchmark import Benchmark
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.workloads.drift import RotatingHotspotDrift
from repro.workloads.generators import OperationMix, WorkloadSpec
from repro.workloads.patterns import ConstantArrivals

RATE = 2500.0
DURATION = 60.0
PERIOD = 60.0


def _scenario(ds) -> Scenario:
    span = ds.high - ds.low
    drift = RotatingHotspotDrift(
        ds.low, ds.high, hot_width=span * 0.05, period=PERIOD, hot_fraction=0.9
    )
    spec = WorkloadSpec(
        name="rotating",
        mix=OperationMix.read_only(),
        key_drift=drift,
        arrivals=ConstantArrivals(RATE),
    )
    return Scenario(
        name="rotating-hotspot",
        segments=[Segment(spec=spec, duration=DURATION)],
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=ds.keys,
        seed=71,
    )


def test_rotating_hotspot(benchmark, figure_sink):
    ds = dataset()
    scenario = _scenario(ds)
    bench = Benchmark()
    outcomes = {}

    def run_all():
        policies = {
            "adapt-2s": lambda: LearnedKVStore(
                max_fanout=FANOUT, retrain_cooldown=2.0
            ),
            "adapt-10s": lambda: LearnedKVStore(
                max_fanout=FANOUT, retrain_cooldown=10.0
            ),
            "generic-model": lambda: StaticLearnedKVStore(max_fanout=FANOUT),
            "btree-kv": make_traditional,
        }
        for name, factory in policies.items():
            outcomes[name] = bench.run(factory(), scenario)

    bench_once(benchmark, run_all)

    rows = [
        "A10 — rotating hotspot (one full sweep in 60 s): adaptation churn",
        f"{'policy':<14s} {'eff q/s':>8s} {'p99 ms':>10s} {'retrains':>9s} "
        f"{'train s':>8s}",
    ]
    stats = {}
    for name, result in outcomes.items():
        eff = float((result.completions() <= DURATION).sum()) / DURATION
        p99 = float(np.percentile(result.latencies(), 99)) * 1000
        retrains = sum(1 for e in result.training_events if e.online)
        stats[name] = (eff, retrains)
        rows.append(
            f"{name:<14s} {eff:8.1f} {p99:10.1f} {retrains:9d} "
            f"{result.total_training_nominal_seconds():8.1f}"
        )

    # Shape checks: the aggressive adapter churns (many retrains, big
    # throughput loss); the generic model keeps up with the offered rate;
    # non-adaptive policies do no online training at all.
    assert stats["adapt-2s"][1] >= 10
    assert stats["adapt-2s"][0] < 0.6 * stats["generic-model"][0]
    assert stats["generic-model"][0] >= 0.95 * RATE
    assert stats["generic-model"][1] == 0 and stats["btree-kv"][1] == 0
    # Fewer retrains under the longer cooldown.
    assert stats["adapt-10s"][1] < stats["adapt-2s"][1]

    figure_sink("rotating_hotspot", "\n".join(rows))
