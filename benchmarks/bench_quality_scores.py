"""T2 — §V-C: the dataset/workload quality scorer.

Scores every built-in dataset and a ladder of workloads, verifying the
tool "attributes low marks to uniform data distributions and workloads
while favoring datasets exhibiting skew or varying query load".
"""

from __future__ import annotations


from bench_common import bench_once
from repro.data.datasets import build_dataset, dataset_names
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import GradualDrift, RotatingHotspotDrift
from repro.workloads.generators import OperationMix, WorkloadSpec, simple_spec
from repro.workloads.patterns import BurstyArrivals, DiurnalArrivals
from repro.workloads.quality import score_dataset, score_workload


def _workload_ladder():
    low, high = 0.0, 1e6
    uniform_static = simple_spec("uniform-static", UniformDistribution(low, high),
                                 rate=100.0)
    zipf_static = simple_spec(
        "zipf-static", ZipfDistribution(low, high, theta=1.1, n_items=5000),
        rate=100.0,
    )
    drifting = WorkloadSpec(
        "zipf-drifting",
        OperationMix.read_write(0.9),
        GradualDrift(
            UniformDistribution(low, high),
            ZipfDistribution(low, high, theta=1.2, n_items=5000),
            start=0.0,
            duration=600.0,
        ),
        DiurnalArrivals(100.0, amplitude=0.7, period=600.0),
    )
    everything = WorkloadSpec(
        "rotating-bursty",
        OperationMix.read_write(0.8),
        RotatingHotspotDrift(low, high, hot_width=(high - low) * 0.05, period=300.0),
        BurstyArrivals(100.0, [(100.0, 30.0, 4.0), (400.0, 30.0, 4.0)]),
    )
    return [uniform_static, zipf_static, drifting, everything]


def test_quality_scores(benchmark, figure_sink):
    dataset_reports = {}
    workload_reports = {}

    def score_all():
        for name in dataset_names():
            ds = build_dataset(name, n=20_000, seed=11)
            dataset_reports[name] = score_dataset(ds.keys)
        for spec in _workload_ladder():
            workload_reports[spec.name] = score_workload(spec)

    bench_once(benchmark, score_all)

    rows = [
        "T2 — dataset quality scores (§V-C tool)",
        f"{'dataset':<14s} {'non-unif':>9s} {'multimodal':>11s} "
        f"{'tail':>7s} {'overall':>8s} {'grade':>6s}",
    ]
    for name, report in dataset_reports.items():
        rows.append(
            f"{name:<14s} {report.non_uniformity:9.3f} "
            f"{report.multimodality:11.3f} {report.tail_weight:7.3f} "
            f"{report.overall:8.3f} {report.grade():>6s}"
        )
    rows += [
        "",
        "workload quality scores:",
        f"{'workload':<16s} {'skew':>7s} {'drift':>7s} {'load-var':>9s} "
        f"{'overall':>8s} {'grade':>6s}",
    ]
    for name, report in workload_reports.items():
        rows.append(
            f"{name:<16s} {report.skew:7.3f} {report.drift:7.3f} "
            f"{report.load_variation:9.3f} {report.overall:8.3f} "
            f"{report.grade():>6s}"
        )

    # Shape checks: the two trivially-learnable datasets (uniform and
    # sequential ids) occupy the bottom of the ranking; the lumpy ones
    # score clearly higher.
    ranked = sorted(dataset_reports, key=lambda n: dataset_reports[n].overall)
    assert set(ranked[:2]) == {"uniform", "sequential"}
    assert dataset_reports["osm"].overall > 5 * dataset_reports["uniform"].overall
    ladder = [workload_reports[s.name].overall for s in _workload_ladder()]
    assert ladder[0] == min(ladder)
    assert ladder[3] > ladder[0]

    figure_sink("quality_scores", "\n".join(rows))
