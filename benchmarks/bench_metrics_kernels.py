"""MK — metric kernels: vectorized columnar analysis vs reference loops.

Builds a 500k-query synthetic :class:`RunResult` directly in columnar
form, evaluates the three formerly per-interval-loop metric kernels
(``latency_bands``, ``multi_latency_bands``, ``latency_timeline``) both
ways, asserts the vectorized outputs are identical to the reference
loop implementations (the pre-refactor code, kept below), and asserts
the aggregate speedup is ≥ 10x — the analysis-layer acceptance bar.

All synthetic timestamps are dyadic rationals (multiples of 1/64), so
"identical" means *exactly equal*, not approximately: any drift between
the shared ``np.arange`` edge grid and the reference accumulation would
fail the equality assertions before it failed the speedup one.

Writes a ``BENCH_metrics.json`` perf record into ``benchmarks/results/``
(per-kernel reference/vectorized seconds and speedups) alongside the
usual figure text.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from bench_common import bench_once
from repro.core.results import QueryColumns, RunResult
from repro.metrics.adaptability import cumulative_curve, latency_timeline
from repro.metrics.sla import adjustment_speed, latency_bands, multi_latency_bands

N_QUERIES = 500_000
HORIZON = 600.0
INTERVAL = 0.25
SLA = 0.5
THRESHOLDS = [0.25, 0.5, 1.0]

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# -- reference implementations (pre-refactor per-interval loops) ---------------------


def ref_latency_bands(result, sla, interval=1.0):
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    bands = []
    t = 0.0
    while t < horizon:
        mask = (completions >= t) & (completions < t + interval)
        over = int((latencies[mask] > sla).sum())
        total = int(mask.sum())
        bands.append((t, total - over, over))
        t += interval
    return bands


def ref_multi_latency_bands(result, thresholds, interval=1.0):
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    edges = np.asarray([0.0] + list(thresholds) + [np.inf])
    out = []
    t = 0.0
    while t < horizon:
        mask = (completions >= t) & (completions < t + interval)
        counts, _ = np.histogram(latencies[mask], bins=edges)
        out.append((t, counts.astype(int).tolist()))
        t += interval
    return out


def ref_latency_timeline(result, interval=1.0, percentiles=(50.0, 99.0)):
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    edges = np.arange(0.0, horizon + interval, interval)
    times = edges[:-1]
    out = {p: np.full(times.size, np.nan) for p in percentiles}
    if completions.size:
        buckets = np.clip(
            (completions / interval).astype(np.int64), 0, times.size - 1
        )
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_latencies = latencies[order]
        boundaries = np.searchsorted(sorted_buckets, np.arange(times.size + 1))
        for i in range(times.size):
            chunk = sorted_latencies[boundaries[i] : boundaries[i + 1]]
            if chunk.size:
                for p in percentiles:
                    out[p][i] = float(np.percentile(chunk, p))
    return times, out


# -- synthetic columnar run ----------------------------------------------------------


def build_synthetic_result(n: int = N_QUERIES) -> RunResult:
    """500k dyadic-timestamp queries appended straight into columns."""
    rng = np.random.default_rng(42)
    arrivals = np.sort(rng.integers(0, int((HORIZON - 3.0) * 64), n)) / 64.0
    starts = arrivals + rng.integers(0, 64, n) / 64.0
    completions = starts + rng.integers(1, 64, n) / 64.0
    half = int(np.searchsorted(arrivals, HORIZON / 2.0))
    segment_codes = np.zeros(n, dtype=np.int32)
    segment_codes[half:] = 1
    columns = QueryColumns(
        arrivals=arrivals,
        starts=starts,
        completions=completions,
        op_codes=(np.arange(n) % 3 == 0).astype(np.int32),
        op_vocab=("read", "scan"),
        segment_codes=segment_codes,
        segment_vocab=("a", "b"),
    )
    return RunResult(
        sut_name="synthetic-500k",
        scenario_name="metric-kernels",
        columns=columns,
        segments=[("a", 0.0, HORIZON / 2.0), ("b", HORIZON / 2.0, HORIZON)],
    )


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_metric_kernels_speedup(benchmark, figure_sink):
    result = build_synthetic_result()
    # Materialize the compatibility view up front: the reference loops
    # consume `result.queries`, and building that list once is not part
    # of the per-metric cost being compared.
    _ = result.queries

    ref, vec = {}, {}
    ref_out, ref["latency_bands"] = _timed(
        lambda: ref_latency_bands(result, SLA, INTERVAL)
    )
    ref_multi, ref["multi_latency_bands"] = _timed(
        lambda: ref_multi_latency_bands(result, THRESHOLDS, INTERVAL)
    )
    ref_timeline, ref["latency_timeline"] = _timed(
        lambda: ref_latency_timeline(result, INTERVAL)
    )

    state = {}

    def vectorized_suite():
        vec_out, vec["latency_bands"] = _timed(
            lambda: latency_bands(result, SLA, INTERVAL)
        )
        vec_multi, vec["multi_latency_bands"] = _timed(
            lambda: multi_latency_bands(result, THRESHOLDS, INTERVAL)
        )
        vec_timeline, vec["latency_timeline"] = _timed(
            lambda: latency_timeline(result, INTERVAL)
        )
        state.update(bands=vec_out, multi=vec_multi, timeline=vec_timeline)

    bench_once(benchmark, vectorized_suite)

    # Identical outputs, not just close ones.
    assert [
        (b.start, b.within_sla, b.violated) for b in state["bands"]
    ] == ref_out
    assert state["multi"] == ref_multi
    ref_times, ref_series = ref_timeline
    got_times, got_series = state["timeline"]
    assert np.array_equal(ref_times, got_times)
    for p in ref_series:
        assert np.array_equal(ref_series[p], got_series[p], equal_nan=True)

    # Sanity: the single-value kernels still agree with first principles.
    times, cum = cumulative_curve(result, resolution=INTERVAL)
    assert cum[-1] == result.num_queries
    assert adjustment_speed(result, HORIZON / 2.0, 1000, SLA) >= 0.0

    ref_total = sum(ref.values())
    vec_total = sum(vec.values())
    speedup = ref_total / max(vec_total, 1e-9)
    assert speedup >= 10.0, (
        f"vectorized kernels only {speedup:.1f}x faster "
        f"(reference {ref_total:.3f}s, vectorized {vec_total:.3f}s)"
    )

    record = {
        "bench": "metrics_kernels",
        "n_queries": result.num_queries,
        "n_intervals": int(times.size) - 1,
        "interval": INTERVAL,
        "kernels": {
            name: {
                "reference_s": round(ref[name], 6),
                "vectorized_s": round(vec[name], 6),
                "speedup": round(ref[name] / max(vec[name], 1e-9), 2),
            }
            for name in ref
        },
        "total_reference_s": round(ref_total, 6),
        "total_vectorized_s": round(vec_total, 6),
        "total_speedup": round(speedup, 2),
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, "BENCH_metrics.json"), "w") as handle:
        json.dump(record, handle, indent=2)

    lines = [
        f"metric kernels on {result.num_queries:,} queries × "
        f"{int(times.size) - 1} intervals (identical outputs)",
    ]
    for name in ref:
        lines.append(
            f"{name:>20}: {ref[name]*1000:8.1f}ms -> {vec[name]*1000:7.1f}ms "
            f"({ref[name] / max(vec[name], 1e-9):6.1f}x)"
        )
    lines.append(f"{'total':>20}: {speedup:6.1f}x (bar: >= 10x)")
    figure_sink("metrics_kernels", "\n".join(lines))
