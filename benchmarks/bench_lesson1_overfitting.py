"""L1 — Lesson 1: "Abstain from fixed workloads and databases as their
characteristics are easy to learn."

Demonstration: a learned store trained on the benchmark's published
(fixed) distribution posts excellent numbers on that distribution and
collapses when the distribution moves; the sealed hold-out evaluation
catches the overfit system that a fixed benchmark would certify.
"""

from __future__ import annotations

import numpy as np

from bench_common import bench_once, dataset, make_static, make_traditional
from repro.core.benchmark import Benchmark
from repro.core.scenario import Scenario, Segment
from repro.core.service import BenchmarkService
from repro.scenarios import expected_access_sample, hotspot
from repro.workloads.generators import simple_spec

RATE = 3200.0
DURATION = 25.0


def _fixed_scenario(ds, position: float, name: str) -> Scenario:
    from repro.core.phases import TrainingPhase

    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec(name, hotspot(ds, position), rate=RATE,
                                 read_fraction=1.0),
                duration=DURATION,
            )
        ],
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=ds.keys,
        seed=31,
    )


def _effective_throughput(result) -> float:
    horizon = result.duration
    return float((result.completions() <= horizon).sum()) / horizon


def test_lesson1_overfitting(benchmark, figure_sink):
    ds = dataset()
    fixed = _fixed_scenario(ds, 0.1, "fixed-benchmark")
    shifted = _fixed_scenario(ds, 0.7, "shifted-distribution")
    sample = expected_access_sample(fixed)
    bench = Benchmark()
    numbers = {}

    def run_all():
        # The vendor "trains to the benchmark": on the fixed workload the
        # overfit store shines.
        numbers["overfit@fixed"] = bench.run(make_static(sample), fixed)
        numbers["btree@fixed"] = bench.run(make_traditional(), fixed)
        # The same systems when the distribution moves.
        numbers["overfit@shifted"] = bench.run(make_static(sample), shifted)
        numbers["btree@shifted"] = bench.run(make_traditional(), shifted)

    bench_once(benchmark, run_all)

    # Hold-out service: the overfit store gets one shot at a sealed
    # scenario it has never seen — its out-of-sample numbers are honest.
    service = BenchmarkService()
    service.publish_holdout(_fixed_scenario(ds, 0.85, "sealed-holdout"))
    (holdout_report,) = service.submit(lambda: make_static(sample))

    rows = [
        "Lesson 1 — overfitting to a fixed benchmark",
        f"{'system@scenario':<24s} {'eff q/s':>9s} {'mean lat':>12s}",
    ]
    stats = {}
    for name, result in numbers.items():
        tp = _effective_throughput(result)
        latency = float(np.mean(result.latencies()))
        stats[name] = (tp, latency)
        rows.append(f"{name:<24s} {tp:9.1f} {latency*1000:10.3f}ms")
    rows.append(
        f"{'overfit@sealed-holdout':<24s} {holdout_report.mean_throughput:9.1f} "
        f"{holdout_report.p99_latency*1000:10.3f}ms (p99)"
    )

    # Shape checks: hero numbers on the fixed benchmark, collapse off it.
    assert stats["overfit@fixed"][1] < stats["btree@fixed"][1]  # wins when fixed
    assert stats["overfit@shifted"][1] > stats["overfit@fixed"][1] * 10
    assert stats["overfit@shifted"][0] < stats["overfit@fixed"][0] * 0.8
    # The traditional system is insensitive to the shift.
    assert abs(stats["btree@shifted"][1] - stats["btree@fixed"][1]) < (
        stats["btree@fixed"][1] * 0.5
    )

    figure_sink("lesson1_overfitting", "\n".join(rows))
