"""F1b — Fig 1b: cumulative queries completed over time.

Abrupt hotspot shift mid-run. Expected shape (paper's sketch): the
adaptive learned system's curve flattens right after the change ("starts
slow") and then steepens past the static system's ("later catches up");
the area-difference single-value metrics quantify it.
"""

from __future__ import annotations

from functools import partial

from bench_common import (
    RATE,
    SEG_DURATION,
    bench_once,
    dataset,
    make_learned,
    make_static,
    make_traditional,
    matrix_run,
)
from repro.metrics.adaptability import area_between_systems, area_vs_ideal
from repro.reporting.figures import render_fig1b
from repro.scenarios import abrupt_shift, expected_access_sample


def test_fig1b_adaptability(benchmark, figure_sink):
    ds = dataset()
    scenario = abrupt_shift(
        ds, rate=RATE, segment_duration=SEG_DURATION, train_budget=1e9
    )
    sample = expected_access_sample(scenario)
    runs = {}

    def run_all():
        runs.update(matrix_run(
            {
                "learned-kv": partial(make_learned, sample),
                "static-learned-kv": partial(make_static, sample),
                "btree-kv": make_traditional,
            },
            scenario,
        ))

    bench_once(benchmark, run_all)

    areas = {name: area_vs_ideal(result) for name, result in runs.items()}
    text = render_fig1b(list(runs.values()), areas_vs_ideal=areas)
    text += (
        f"\narea(learned - static)      = "
        f"{area_between_systems(runs['learned-kv'], runs['static-learned-kv']):,.0f} q·s"
        f"\narea(learned - traditional) = "
        f"{area_between_systems(runs['learned-kv'], runs['btree-kv']):,.0f} q·s"
    )

    # Shape checks: adaptive completes more work than the overfit store
    # within the scenario horizon, and finishes ~the full offered volume.
    assert area_between_systems(runs["learned-kv"], runs["static-learned-kv"]) > 0
    horizon = scenario.total_duration
    done_learned = int((runs["learned-kv"].completions() <= horizon).sum())
    done_static = int((runs["static-learned-kv"].completions() <= horizon).sum())
    assert done_learned >= 0.95 * RATE * 2 * SEG_DURATION
    assert done_static < done_learned

    figure_sink("fig1b_adaptability", text)
