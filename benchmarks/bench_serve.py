"""SV — multi-tenant serving: zero drops, accounted admissions, scaling.

Two claims pinned here. First, the *serve-smoke contract*: offering 10
tenants to ``repro serve`` with a burst-8 token bucket must admit
exactly 8, reject exactly 2 (with the rejection recorded on each
tenant's report), complete every admitted tenant, and drop none — the
ledger reconciles (``offered == admitted + rejected``,
``admitted == completed + failed + violations``) and the CLI exits 0.
The smoke drives the real CLI entry point in-process, so argument
parsing, the shared worker pool, per-tenant SLA accounting, and the
JSON export are all on the hook. Second, *tenants-vs-throughput
scaling*: serving windows of 1/2/4/8 tenants records aggregate service
throughput (completed queries per wall second) per window size — the
EXPERIMENTS.md T9 curve. Per-tenant summaries must be identical whether
the window runs serially or concurrently (the determinism contract).

Writes ``BENCH_serve.json`` into ``benchmarks/results/`` (ledger,
per-window scaling rows, determinism verdict). Scale knob:
``REPRO_BENCH_SERVE_QUERIES`` overrides the 8000 queries/tenant
default.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from bench_common import bench_once
from repro.cli import main as cli_main
from repro.core.scenario import Scenario, Segment
from repro.core.tenancy import BenchmarkServer, TenantSpec
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

RATE = 1500.0
QUERIES_PER_TENANT = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", 8_000))
N_KEYS = 20_000
KEY_DOMAIN = 100_000.0
OFFERED = 10
BURST = 8
SLA = 0.050

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_RECORD_PATH = os.path.join(_RESULTS_DIR, "BENCH_serve.json")


def _scenario(seed: int) -> Scenario:
    """One tenant's stream: a single uniform segment at RATE."""
    duration = QUERIES_PER_TENANT / RATE
    return Scenario(
        name="serve-tenant",
        segments=[
            Segment(
                spec=simple_spec(
                    "w", UniformDistribution(0, KEY_DOMAIN), rate=RATE
                ),
                duration=duration,
            )
        ],
        seed=seed,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def _tenants(n: int) -> list:
    return [
        TenantSpec(
            name=f"tenant-{i:02d}",
            sut_factory=TraditionalKVStore,
            scenario=_scenario(seed=100 + i),
        )
        for i in range(n)
    ]


def _update_record(**fields):
    """Merge fields into ``BENCH_serve.json`` (tests run separately)."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    record = {}
    if os.path.exists(_RECORD_PATH):
        with open(_RECORD_PATH) as handle:
            record = json.load(handle)
    record.update(fields)
    with open(_RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2)


def test_serve_smoke_cli(tmp_path, figure_sink):
    """10 offered through ``repro serve``: 8 admitted, 2 rejected, 0 dropped."""
    export = tmp_path / "serve-report.json"
    rc = cli_main([
        "serve",
        "--tenants", str(OFFERED),
        "--sut", "btree-kv", "hash-kv",
        "--admit-burst", str(BURST),
        "--admit-rate", "0",
        "--workers", "2",
        "--keys", "5000",
        "--rate", "800",
        "--duration", str(QUERIES_PER_TENANT / 800),
        "--sla", str(SLA),
        "--export", str(export),
    ])
    assert rc == 0, "serve CLI reported dropped or failed tenants"
    with open(export) as handle:
        report = json.load(handle)

    assert report["offered"] == OFFERED
    assert report["admitted"] == BURST
    assert report["rejected"] == OFFERED - BURST
    assert report["completed"] == BURST
    assert report["failed"] == 0
    assert report["dropped"] == 0, "an admitted tenant vanished"
    assert report["offered"] == report["admitted"] + report["rejected"]
    assert report["admitted"] == (
        report["completed"] + report["failed"] + report["violations"]
    )
    statuses = [t["status"] for t in report["tenants"]]
    assert statuses.count("rejected") == OFFERED - BURST
    for tenant in report["tenants"]:
        if tenant["status"] == "completed":
            assert tenant["summary"]["num_queries"] > 0
            assert tenant["sla_report"]["mean_throughput"] > 0
        else:
            assert "token bucket empty" in tenant["error"]

    _update_record(
        bench="serve",
        smoke={
            "offered": report["offered"],
            "admitted": report["admitted"],
            "rejected": report["rejected"],
            "completed": report["completed"],
            "dropped": report["dropped"],
            "workers": report["workers"],
            "wall_s": round(report["wall_seconds"], 2),
        },
    )
    figure_sink(
        "serve_smoke",
        "\n".join(
            [
                f"serve smoke: {report['offered']} offered -> "
                f"{report['admitted']} admitted + "
                f"{report['rejected']} rejected (burst {BURST})",
                f"  completed : {report['completed']}  "
                f"failed: {report['failed']}  dropped: {report['dropped']}",
                f"  pool      : {report['workers']} workers, "
                f"{report['wall_seconds']:.2f}s wall",
            ]
        ),
    )


def test_tenants_vs_throughput_scaling(benchmark, figure_sink):
    """Windows of 1/2/4/8 tenants: the T9 service-throughput curve."""
    cpus = os.cpu_count() or 1
    rows = []

    def sweep():
        for n in (1, 2, 4, 8):
            server = BenchmarkServer(workers=min(4, max(1, cpus)))
            t0 = time.perf_counter()
            report = server.serve(_tenants(n), sla=SLA)
            wall = time.perf_counter() - t0
            assert report.completed == n and report.dropped == 0
            queries = sum(t.summary.num_queries for t in report.tenants)
            rows.append(
                {
                    "tenants": n,
                    "queries": queries,
                    "wall_s": round(wall, 2),
                    "service_qps": round(queries / wall, 1),
                    "workers": report.workers,
                }
            )

    bench_once(benchmark, sweep)

    # Determinism across concurrency: the 4-tenant window re-run
    # serially must reproduce every per-tenant summary exactly.
    concurrent = BenchmarkServer(workers=min(4, max(1, cpus))).serve(
        _tenants(4), sla=SLA
    )
    serial = BenchmarkServer(workers=1).serve(_tenants(4), sla=SLA)
    identical = all(
        a.summary.to_dict() == b.summary.to_dict()
        for a, b in zip(serial.tenants, concurrent.tenants)
    )
    assert identical, "per-tenant summaries depend on the concurrency level"

    _update_record(
        queries_per_tenant=QUERIES_PER_TENANT,
        cpu_count=cpus,
        scaling=rows,
        deterministic_across_workers=True,
    )
    figure_sink(
        "serve_scaling",
        "\n".join(
            [
                f"tenants vs service throughput "
                f"({QUERIES_PER_TENANT:,} queries/tenant, {cpus} CPUs)",
            ]
            + [
                f"  {row['tenants']} tenant(s): {row['wall_s']:6.2f}s wall, "
                f"{row['service_qps']:10,.1f} q/s aggregate "
                f"({row['workers']} workers)"
                for row in rows
            ]
            + ["  determinism  : serial == concurrent, bit-identical"]
        ),
    )
