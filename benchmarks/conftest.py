"""Shared infrastructure for the benchmark harness.

Each bench regenerates one paper artifact (a Fig 1 panel or a Lesson
demonstration), renders its rows/series as text, and registers the text
with the ``figure_sink`` fixture. A terminal-summary hook replays all
registered figures at the end of the run, so
``pytest benchmarks/ --benchmark-only`` produces both the timing table
and every regenerated figure in one transcript. Each figure is also
written to ``benchmarks/results/<id>.txt``.
"""

from __future__ import annotations

import os
from typing import Callable, List, Tuple

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_FIGURES: List[Tuple[str, str]] = []


@pytest.fixture
def figure_sink() -> Callable[[str, str], None]:
    """Register a rendered figure: ``figure_sink(figure_id, text)``."""

    def _sink(figure_id: str, text: str) -> None:
        _FIGURES.append((figure_id, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{figure_id}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

    return _sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _FIGURES:
        return
    terminalreporter.write_sep("=", "regenerated paper artifacts")
    for figure_id, text in _FIGURES:
        terminalreporter.write_sep("-", figure_id)
        for line in text.splitlines():
            terminalreporter.write_line(line)
