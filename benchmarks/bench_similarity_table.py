"""T1 — §V-D similarity machinery: the Φ table backing Fig 1a's x-axis.

Computes all three proposed similarity estimators (Jaccard over query
subtrees for workloads; KS and MMD for data) across the distribution
ladder used by F1a and verifies they order the ladder consistently —
the paper's requirement that Φ "need not be precise; it should be
sufficient to sort the results by Φ value".
"""

from __future__ import annotations

import numpy as np

from bench_common import bench_once, dataset
from repro.engine.expressions import col
from repro.engine.plans import Aggregate, Filter, Join, Scan, plan_subtrees
from repro.metrics.similarity import jaccard_similarity, ks_statistic, mmd_rbf
from repro.scenarios import hotspot


def test_similarity_table(benchmark, figure_sink):
    ds = dataset()
    rng = np.random.default_rng(5)
    positions = [0.1, 0.15, 0.3, 0.5, 0.8]
    base = hotspot(ds, positions[0]).sample(rng, 3000)
    rows = [
        "T1 — data-distribution Φ ladder (baseline = hotspot@0.1)",
        f"{'hotspot':>8s} {'KS':>8s} {'MMD²':>10s}",
    ]
    ks_values, mmd_values = [], []

    def compute():
        ks_values.clear()
        mmd_values.clear()
        for position in positions:
            sample = hotspot(ds, position).sample(rng, 3000)
            ks_values.append(ks_statistic(base, sample))
            mmd_values.append(mmd_rbf(base, sample, max_points=500))

    bench_once(benchmark, compute)

    for position, ks, mmd in zip(positions, ks_values, mmd_values):
        rows.append(f"{position:8.2f} {ks:8.4f} {mmd:10.6f}")

    # Workload similarity via Jaccard over plan subtrees.
    point_query = Aggregate(Filter(Scan("orders"), col("amount") > 100.0), "count")
    similar_query = Aggregate(Filter(Scan("orders"), col("amount") > 999.0), "count")
    join_query = Aggregate(
        Join(Filter(Scan("orders"), col("amount") > 100.0), Scan("customers"),
             "cid", "cid"),
        "count",
    )
    j_same = jaccard_similarity(plan_subtrees(point_query), plan_subtrees(point_query))
    j_similar = jaccard_similarity(
        plan_subtrees(point_query), plan_subtrees(similar_query)
    )
    j_join = jaccard_similarity(plan_subtrees(point_query), plan_subtrees(join_query))
    rows += [
        "",
        "workload Φ via Jaccard over plan subtrees:",
        f"  identical queries:        similarity={j_same:.3f}  phi={1-j_same:.3f}",
        f"  same template, new const: similarity={j_similar:.3f}  phi={1-j_similar:.3f}",
        f"  filter-only vs join:      similarity={j_join:.3f}  phi={1-j_join:.3f}",
    ]

    # Shape checks: the ladder is monotone (up to sampling noise; the KS
    # saturates near 0.9 once the hotspots stop overlapping) for both
    # estimators, and both clearly separate the baseline from the rest.
    assert ks_values[0] < 0.1
    assert all(b >= a - 0.02 for a, b in zip(ks_values, ks_values[1:]))
    assert all(b >= a - 1e-4 for a, b in zip(mmd_values, mmd_values[1:]))
    assert min(ks_values[1:]) > 5 * ks_values[0]
    assert min(mmd_values[1:]) > 5 * mmd_values[0]
    assert j_same == 1.0 and j_similar == 1.0 and j_join < 1.0

    figure_sink("similarity_table", "\n".join(rows))
