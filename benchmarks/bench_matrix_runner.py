"""MR — matrix runner: parallel fan-out and content-addressed caching.

Runs a small (SUT × seed) matrix twice against a fresh cache. The first
pass executes every job across the process pool; the second is served
entirely from the cache. Asserts that cached results are byte-identical
to executed ones and that the warm pass is ≥ 3× faster — the runner's
acceptance bar — and logs both manifests. Deliberately tiny (a few
thousand queries per job) so it doubles as the CI smoke benchmark.

The bar was 5× when executing a job cost ~20 µs/query; the batched
driver pipeline cut that ~16×, so a cache hit now saves mostly the
serialize-side work and the ratio is bounded by JSON write vs read
cost. 3× keeps the assertion meaningful (a broken cache shows up as
~1×) without pretending execution is still the dominant cost.
"""

from __future__ import annotations

import time
from functools import partial

from bench_common import bench_once
from repro.core.runner import MatrixRunner, matrix_jobs
from repro.data.datasets import build_dataset
from repro.scenarios import abrupt_shift, expected_access_sample
from repro.suts.kv_learned import StaticLearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore

#: Small-scale knobs: enough work for the cold pass to clearly
#: out-cost a cache read, small enough for a CI smoke lane.
N_KEYS = 8_000
RATE = 400.0
SEG_DURATION = 6.0
SEEDS = (1, 2)


def test_matrix_runner_cache_speedup(benchmark, figure_sink, tmp_path):
    ds = build_dataset("uniform", n=N_KEYS, seed=7)
    scenario = abrupt_shift(
        ds, rate=RATE, segment_duration=SEG_DURATION, train_budget=1e9
    )
    sample = expected_access_sample(scenario)
    jobs = matrix_jobs(
        {
            "static-learned-kv": partial(
                StaticLearnedKVStore, max_fanout=64, expected_access_sample=sample
            ),
            "btree-kv": TraditionalKVStore,
        },
        [scenario],
        seeds=SEEDS,
    )
    cache_dir = str(tmp_path / "cache")
    runner = MatrixRunner(cache_dir=cache_dir)
    state = {}

    def cold_run():
        t0 = time.perf_counter()
        state["cold"] = runner.run(jobs).raise_on_failure()
        state["cold_wall"] = time.perf_counter() - t0

    bench_once(benchmark, cold_run)

    t0 = time.perf_counter()
    warm = runner.run(jobs).raise_on_failure()
    warm_wall = time.perf_counter() - t0
    cold = state["cold"]

    assert cold.manifest.executed == len(jobs)
    assert warm.manifest.hits == len(jobs)
    identical = all(
        a.to_json() == b.to_json() for a, b in zip(cold.results, warm.results)
    )
    assert identical, "cached results must be byte-identical to executed ones"
    speedup = state["cold_wall"] / max(warm_wall, 1e-9)
    assert speedup >= 3.0, (
        f"warm pass only {speedup:.1f}x faster "
        f"(cold {state['cold_wall']:.3f}s, warm {warm_wall:.3f}s)"
    )

    lines = [
        f"matrix: {len(jobs)} jobs "
        f"(2 SUTs × seeds {SEEDS}) — {len(cold.results[0].queries)} queries/job",
        f"cold: {cold.manifest.summary()}",
        f"warm: {warm.manifest.summary()}",
        f"cache speedup: {speedup:.1f}x (identical results: {identical})",
    ]
    figure_sink("matrix_runner_cache", "\n".join(lines))
