"""FR — fault recovery: chaos injection through the batched pipeline.

Runs one 80k-query scenario (B+ tree store, steady uniform reads) four
ways:

* fault-free batched (the baseline twin),
* faulted batched — a latency window, a full stall, and a crash with a
  recovery outage,
* faulted scalar — same plan through the scalar/heap reference path,
* fault-free batched with an *out-of-horizon* plan — every fault lands
  after the run ends, so the fault machinery is armed but never fires.

The asserts pin the three contracts the fault subsystem guarantees:

1. **Bit-identity**: faulted scalar and faulted batched produce
   identical result columns (same ``FaultClock`` kernel, same interrupt
   ordering).
2. **Determinism**: re-running the faulted scenario reproduces the
   exact columns.
3. **Zero cost when dormant**: the out-of-horizon run's columns equal
   the no-plan run's bit for bit, and its wall time stays within noise
   of the no-plan run.

Then the resilience kernels score the faulted run against its twin
(recovery per fault, degraded-window SLA mass, area lost) and the
figure renders a Fig 1c-style view of the outage. Writes
``BENCH_faults.json`` into ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace

import numpy as np

from bench_common import bench_once
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.faults import CrashFault, FaultPlan, LatencyFault, StallFault
from repro.metrics.resilience import resilience_report
from repro.metrics.sla import calibrate_sla
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

RATE = 800.0
DURATION = 100.0
N_KEYS = 50_000
KEY_DOMAIN = 100_000.0

PLAN = FaultPlan([
    LatencyFault(start=20.0, end=30.0, multiplier=8.0),
    StallFault(at=45.0, duration=3.0),
    CrashFault(at=70.0, recovery_seconds=2.0),
])

#: Same shape, entirely after the horizon: armed but never firing.
DORMANT_PLAN = FaultPlan([
    LatencyFault(start=DURATION * 10, end=DURATION * 11, multiplier=8.0),
    StallFault(at=DURATION * 12, duration=3.0),
])

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_scenario(plan=None) -> Scenario:
    spec = simple_spec(
        "steady", UniformDistribution(0, KEY_DOMAIN), rate=RATE
    )
    return Scenario(
        name="fault-recovery-80k",
        segments=[Segment(spec=spec, duration=DURATION)],
        seed=42,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
        fault_plan=plan,
    )


def _run(plan=None, use_batching=True):
    driver = VirtualClockDriver(DriverConfig(use_batching=use_batching))
    t0 = time.perf_counter()
    result = driver.run(TraditionalKVStore(), build_scenario(plan))
    return result, time.perf_counter() - t0


def _assert_identical(a, b, context):
    for name in ("arrivals", "starts", "completions", "op_codes",
                 "segment_codes"):
        assert np.array_equal(
            getattr(a.columns, name), getattr(b.columns, name)
        ), f"column {name!r} diverged: {context}"


def test_fault_recovery(benchmark, figure_sink):
    baseline, baseline_s = _run(plan=None)

    state = {}

    def faulted_run():
        state["result"], state["seconds"] = _run(plan=PLAN)

    bench_once(benchmark, faulted_run)
    faulted, faulted_s = state["result"], state["seconds"]
    n = faulted.columns.arrivals.size
    assert n == int(RATE * DURATION)

    # 1. Bit-identity: the scalar reference path under the same plan.
    scalar_faulted, scalar_s = _run(plan=PLAN, use_batching=False)
    _assert_identical(faulted, scalar_faulted, "faulted scalar vs batched")

    # 2. Determinism: same seed, same plan, same bits.
    replay, _ = _run(plan=PLAN)
    _assert_identical(faulted, replay, "faulted replay")

    # 3. Dormant plan == no plan, bit for bit and (loosely) in time.
    dormant, dormant_s = _run(plan=DORMANT_PLAN)
    _assert_identical(baseline, dormant, "dormant plan vs no plan")
    assert dormant_s < baseline_s * 1.5 + 0.5, (
        f"dormant fault plan cost wall time: {dormant_s:.2f}s vs "
        f"no-plan {baseline_s:.2f}s"
    )

    # Score the outage against the fault-free twin.
    sla = calibrate_sla(baseline, percentile=99.0, headroom=1.5)
    report = resilience_report(
        faulted, plan=PLAN, sla=sla, baseline=baseline, window=2.0
    )
    assert len(report.impacts) == 3
    assert report.area_lost > 0.0
    assert report.degraded_sla_mass > 0.0

    record = {
        "bench": "fault_recovery",
        "n_queries": int(n),
        "plan": PLAN.describe(),
        "baseline_s": round(baseline_s, 4),
        "faulted_batched_s": round(faulted_s, 4),
        "faulted_scalar_s": round(scalar_s, 4),
        "dormant_s": round(dormant_s, 4),
        "sla_ms": round(sla * 1000, 4),
        "degraded_sla_mass_s": round(report.degraded_sla_mass, 4),
        "area_lost_query_seconds": round(report.area_lost, 2),
        "recovered_faults": report.recovered_faults,
        "worst_recovery_s": (
            round(report.worst_recovery_seconds, 3)
            if report.worst_recovery_seconds is not None else None
        ),
        "identical_columns": True,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, "BENCH_faults.json"), "w") as handle:
        json.dump(record, handle, indent=2)

    lines = [
        f"chaos benchmark on {n:,} queries "
        f"(B+ tree store, SLA {sla * 1000:.2f} ms)",
        f"  baseline : {baseline_s:6.2f}s wall   "
        f"dormant plan: {dormant_s:6.2f}s (bit-identical)",
        f"  faulted  : {faulted_s:6.2f}s batched / {scalar_s:6.2f}s scalar "
        f"(bit-identical)",
        "  per-fault recovery:",
    ]
    for impact in report.impacts:
        recovered = ("not recovered" if impact.recovery_seconds is None
                     else f"{impact.recovery_seconds:6.2f}s")
        lines.append(
            f"    {impact.kind:<12} at {impact.at:6.1f}s  ->  {recovered}"
        )
    lines.append(
        f"  degraded SLA mass: {report.degraded_sla_mass:8.2f}s over SLA"
    )
    lines.append(
        f"  area lost:         {report.area_lost:8.1f} query-seconds"
    )
    figure_sink("fault_recovery", "\n".join(lines))
