"""A9 — size vs lookup-latency Pareto (SOSD's headline comparison).

For each structure, sweep its capacity knob (B+ order, RMI fanout, PGM
ε) and record (index overhead bytes, model lookup cost). Learned
structures should dominate the B+ tree on learnable data — orders of
magnitude less auxiliary memory at equal-or-better lookup cost — which
is the size argument of "The Case for Learned Index Structures".
"""

from __future__ import annotations

import numpy as np

from bench_common import bench_once
from repro.data.datasets import build_dataset
from repro.indexes import BPlusTree, PGMIndex, RecursiveModelIndex
from repro.suts.cost_models import KVCostModel

N = 50_000
PROBES = 1_000


def _variants():
    return [
        ("btree", "order", [8, 32, 128], lambda v: BPlusTree(order=v)),
        (
            "rmi",
            "fanout",
            [64, 512, 4096],
            lambda v: RecursiveModelIndex(fanout=v, max_delta=None),
        ),
        ("pgm", "eps", [8, 64, 512], lambda v: PGMIndex(epsilon=v, max_delta=None)),
    ]


def test_pareto_size_vs_latency(benchmark, figure_sink):
    ds = build_dataset("books", n=N, seed=7)
    pairs = ds.pairs()
    model = KVCostModel()
    rng = np.random.default_rng(23)
    probes = rng.choice(ds.keys, PROBES)
    points = {}

    def run_all():
        for family, knob, values, factory in _variants():
            for value in values:
                index = factory(value)
                index.bulk_load(pairs)
                before = index.stats.snapshot()
                for key in probes:
                    index.get(float(key))
                delta = index.stats.snapshot().diff(before)
                per_op_us = model.service_time(delta) / PROBES * 1e6
                points[(family, value)] = (
                    index.index_overhead_bytes(),
                    per_op_us,
                )

    bench_once(benchmark, run_all)

    rows = [
        "A9 — index overhead vs lookup cost (books, 50k keys)",
        f"{'structure':<16s} {'overhead KiB':>13s} {'model µs/op':>12s}",
    ]
    for (family, value), (overhead, per_op) in points.items():
        rows.append(
            f"{family + '@' + str(value):<16s} {overhead/1024:13.1f} {per_op:12.1f}"
        )

    # Shape checks (SOSD): at comparable-or-better lookup cost, learned
    # structures need a fraction of the B+ tree's auxiliary memory; and
    # within each family, more capacity = more memory.
    best_btree = min(v for (f, _), (_, v) in points.items() if f == "btree")
    smallest_winning_learned = min(
        overhead
        for (family, _), (overhead, per_op) in points.items()
        if family in ("rmi", "pgm") and per_op <= best_btree
    )
    cheapest_btree_overhead = min(
        overhead for (family, _), (overhead, _) in points.items() if family == "btree"
    )
    assert smallest_winning_learned < cheapest_btree_overhead / 10
    for family, _, values, _ in _variants():
        sizes = [points[(family, v)][0] for v in values]
        if family == "rmi":  # more leaf models = more memory
            assert sizes == sorted(sizes)
        else:  # btree: bigger nodes = fewer nodes; pgm: bigger eps = fewer segments
            assert sizes == sorted(sizes, reverse=True)

    figure_sink("pareto_size", "\n".join(rows))
