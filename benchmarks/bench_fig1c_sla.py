"""F1c — Fig 1c: SLA violation bands per interval.

Same abrupt-shift scenario as F1b. The SLA threshold is calibrated from
the traditional baseline's latency statistics on the same scenario
(§V-D2's prescription). Expected shape: violation-heavy bands right
after the distribution change, decaying as the system adapts; the
static learned store's bands stay red; the adjustment-speed single-value
metric ranks adaptive < static.
"""

from __future__ import annotations

from bench_common import (
    RATE,
    SEG_DURATION,
    bench_once,
    dataset,
    make_learned,
    make_static,
    make_traditional,
)
from repro.core.benchmark import Benchmark
from repro.metrics.sla import adjustment_speed, calibrate_sla, latency_bands
from repro.reporting.figures import render_fig1c
from repro.scenarios import abrupt_shift, expected_access_sample


#: Load for the SLA-calibration baseline run: below the B+ tree's
#: capacity, so its latency statistics reflect service times rather than
#: queueing collapse (the paper's baseline is implicitly unsaturated).
CALIBRATION_RATE = 1800.0


def test_fig1c_sla_bands(benchmark, figure_sink):
    ds = dataset()
    scenario = abrupt_shift(
        ds, rate=RATE, segment_duration=SEG_DURATION, train_budget=1e9
    )
    calibration_scenario = abrupt_shift(
        ds, rate=CALIBRATION_RATE, segment_duration=SEG_DURATION, train_budget=1e9
    )
    sample = expected_access_sample(scenario)
    bench = Benchmark()
    runs = {}

    def run_all():
        runs["baseline@sustainable"] = bench.run(
            make_traditional(), calibration_scenario
        )
        runs["btree-kv"] = bench.run(make_traditional(), scenario)
        runs["learned-kv"] = bench.run(make_learned(sample), scenario)
        runs["static-learned-kv"] = bench.run(make_static(sample), scenario)

    bench_once(benchmark, run_all)

    sla = calibrate_sla(runs.pop("baseline@sustainable"), percentile=99.0,
                        headroom=1.5)
    bands = {
        name: latency_bands(result, sla=sla, interval=1.0)
        for name, result in runs.items()
    }
    change = scenario.segments[0].duration
    n_after = int(RATE * 10)
    adjustment = {
        name: adjustment_speed(result, change, n_after, sla)
        for name, result in runs.items()
    }
    text = render_fig1c(bands, sla, adjustment=adjustment)

    # The paper's multi-band (green-yellow-orange-red) variant.
    from repro.metrics.sla import multi_latency_bands
    from repro.reporting.figures import render_fig1c_multiband

    thresholds = [sla, 4 * sla, 16 * sla]
    multiband = {
        name: multi_latency_bands(result, thresholds=thresholds, interval=1.0)
        for name, result in runs.items()
    }
    text += "\n\n" + render_fig1c_multiband(multiband, thresholds)

    # Shape checks.
    learned_bands = bands["learned-kv"]
    before = sum(b.violated for b in learned_bands if b.start < change)
    just_after = sum(
        b.violated for b in learned_bands if change <= b.start < change + 10
    )
    tail = sum(
        b.violated for b in learned_bands if b.start >= change + 2 * SEG_DURATION * 0.7
    )
    assert just_after > before  # violations cluster after the change
    assert tail < just_after  # ... and decay as the system adapts
    assert adjustment["learned-kv"] < adjustment["static-learned-kv"]

    figure_sink("fig1c_sla_bands", text)
