"""Setup shim; configuration lives in pyproject.toml."""
from setuptools import setup

setup()
