"""Named synthetic key datasets.

SOSD (Kipf et al., cited in the paper) evaluates learned indexes on a
ladder of real datasets — amazon book ids, OSM cell ids, facebook user
ids — whose difficulty for learned structures ranges from "almost
linear" to "adversarially lumpy". Real traces are not redistributable, so
this module provides synthetic analogues with the same qualitative CDF
shapes, each exposed as a named builder:

* ``uniform`` — dense uniform keys; trivially learnable.
* ``sequential`` — near-contiguous integers with gaps (auto-increment ids
  with deletions); very learnable.
* ``books`` — lognormal-ish heavy-tail (popularity-ranked identifiers).
* ``osm`` — multi-modal mixture with dense clusters at several scales
  (spatial cell ids).
* ``fb`` — piecewise shape with abrupt density shifts.
* ``adversarial`` — exponentially spaced clusters engineered to maximize
  linear-model error.

Builders are deterministic for a given (name, n, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """A named, sorted, unique key set.

    Attributes:
        name: Builder name.
        keys: Sorted unique key array.
        seed: Seed the builder used.
    """

    name: str
    keys: np.ndarray
    seed: int

    def __len__(self) -> int:
        return int(self.keys.size)

    def pairs(self) -> List[Tuple[float, int]]:
        """``(key, rank)`` pairs ready for ``OrderedIndex.bulk_load``."""
        return [(float(k), i) for i, k in enumerate(self.keys)]

    @property
    def low(self) -> float:
        """Smallest key."""
        return float(self.keys[0])

    @property
    def high(self) -> float:
        """Largest key."""
        return float(self.keys[-1])


def _finalize(name: str, raw: np.ndarray, seed: int) -> Dataset:
    keys = np.unique(raw.astype(np.float64))
    return Dataset(name=name, keys=keys, seed=seed)


def _uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(0.0, 1e9, int(n * 1.05))


def _sequential(n: int, rng: np.random.Generator) -> np.ndarray:
    # Auto-increment ids with ~10% deleted: mostly linear CDF with gaps.
    ids = np.arange(int(n * 1.15), dtype=np.float64)
    keep = rng.uniform(size=ids.size) > 0.1
    return ids[keep] * 10.0


def _books(n: int, rng: np.random.Generator) -> np.ndarray:
    # Heavy-tailed identifier popularity: lognormal body + uniform dust.
    body = rng.lognormal(mean=12.0, sigma=1.2, size=int(n * 0.95))
    dust = rng.uniform(0.0, body.max() * 1.2, size=int(n * 0.1))
    return np.concatenate([body, dust])


def _osm(n: int, rng: np.random.Generator) -> np.ndarray:
    # Spatial cell ids: dense clusters (cities) over a sparse background.
    n_clusters = 24
    centers = rng.uniform(0.0, 1e9, n_clusters)
    widths = rng.uniform(1e3, 1e6, n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters) * 0.5)
    counts = rng.multinomial(int(n * 0.9), weights)
    parts = [
        rng.normal(c, w, int(cnt))
        for c, w, cnt in zip(centers, widths, counts)
        if cnt > 0
    ]
    background = rng.uniform(0.0, 1e9, int(n * 0.15))
    return np.abs(np.concatenate(parts + [background]))


def _fb(n: int, rng: np.random.Generator) -> np.ndarray:
    # Piecewise density: user-id ranges allocated in regimes of very
    # different densities (growth eras of the service).
    regimes = [
        (0.00, 0.05, 0.30),  # early ids: tiny range, lots of users
        (0.05, 0.30, 0.40),
        (0.30, 0.95, 0.25),
        (0.95, 1.00, 0.05),  # latest sparse range
    ]
    parts = []
    for lo_frac, hi_frac, mass in regimes:
        count = int(n * mass * 1.1)
        parts.append(rng.uniform(lo_frac * 1e9, hi_frac * 1e9, count))
    return np.concatenate(parts)


def _adversarial(n: int, rng: np.random.Generator) -> np.ndarray:
    # Exponentially spaced tight clusters: a linear model over any large
    # span has enormous error, stressing learned indexes.
    n_clusters = max(4, int(np.log2(max(n, 8))))
    sizes = np.full(n_clusters, int(n * 1.1) // n_clusters)
    starts = np.cumsum(np.logspace(3.0, 8.5, n_clusters))
    parts = [
        start + rng.uniform(0.0, 100.0, int(size))
        for start, size in zip(starts, sizes)
    ]
    return np.concatenate(parts)


#: Registered dataset builders: name -> function(n, rng) -> raw keys.
DATASET_BUILDERS: Dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "uniform": _uniform,
    "sequential": _sequential,
    "books": _books,
    "osm": _osm,
    "fb": _fb,
    "adversarial": _adversarial,
}


def dataset_names() -> List[str]:
    """Names of the available datasets, easy-to-hard order."""
    return list(DATASET_BUILDERS.keys())


def build_dataset(name: str, n: int = 100_000, seed: int = 42) -> Dataset:
    """Build the named dataset with ~``n`` unique keys.

    Builders oversample slightly and deduplicate, so the exact count can
    be marginally below or above ``n``; it is deterministic per seed.
    """
    if name not in DATASET_BUILDERS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        )
    if n < 10:
        raise ConfigurationError(f"n must be >= 10, got {n}")
    rng = np.random.default_rng(seed)
    raw = DATASET_BUILDERS[name](n, rng)
    return _finalize(name, raw, seed)
