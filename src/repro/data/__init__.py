"""Dataset builders and synthetic column generators.

* :mod:`~repro.data.datasets` — named synthetic key datasets spanning the
  difficulty ladder used by the Fig 1a experiment (uniform → books-like →
  osm-like → adversarial).
* :mod:`~repro.data.email_gen` — the paper's §V-C example: a synthetic
  email-address generator fitted to a sample, preserving the sample's
  ordering distribution.
"""

from repro.data.datasets import DATASET_BUILDERS, Dataset, build_dataset, dataset_names
from repro.data.email_gen import EmailGenerator, email_to_key

__all__ = [
    "Dataset",
    "DATASET_BUILDERS",
    "build_dataset",
    "dataset_names",
    "EmailGenerator",
    "email_to_key",
]
