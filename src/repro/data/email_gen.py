"""Synthetic email-address generator (§V-C's worked example).

The paper: "a table column containing email addresses could be replaced
by a synthetic email address generator that provides a similar data
distribution without adversely affecting the outcome."

:class:`EmailGenerator` fits three things from a sample of addresses —
the local-part length distribution, the per-position character
frequencies, and the domain popularity distribution — and then emits
fresh addresses drawn from those statistics. :func:`email_to_key` maps an
address to an order-preserving float so generated string columns can be
indexed by the numeric learned indexes, preserving the *ordering*
distribution that learned structures care about.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError

# ASCII-ordered so numeric key order matches string lexicographic order.
_ALPHABET = ".0123456789_abcdefghijklmnopqrstuvwxyz"
_CHAR_INDEX = {c: i for i, c in enumerate(_ALPHABET)}
_DEFAULT_DOMAINS = ["gmail.com", "yahoo.com", "outlook.com", "example.org"]


def email_to_key(email: str, digits: int = 12) -> float:
    """Order-preserving numeric encoding of an email address.

    Interprets the first ``digits`` characters as base-``len(alphabet)``
    digits; lexicographic order of addresses maps to numeric order of
    keys (ties beyond ``digits`` characters collapse, as in any fixed-
    precision encoding).
    """
    text = email.lower()
    base = float(len(_ALPHABET) + 1)
    value = 0.0
    for i in range(digits):
        if i < len(text):
            digit = _CHAR_INDEX.get(text[i], len(_ALPHABET) - 1) + 1
        else:
            digit = 0
        value = value * base + digit
    return value


class EmailGenerator:
    """Fits to an address sample; generates look-alike addresses.

    Args:
        max_positions: Number of local-part character positions that get
            their own frequency table (later positions reuse the last).
    """

    def __init__(self, max_positions: int = 12) -> None:
        if max_positions < 1:
            raise ConfigurationError("max_positions must be >= 1")
        self._max_positions = max_positions
        self._length_values: Optional[np.ndarray] = None
        self._length_probs: Optional[np.ndarray] = None
        self._position_probs: List[np.ndarray] = []
        self._domains: List[str] = []
        self._domain_probs: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._length_probs is not None

    def fit(self, sample: Sequence[str]) -> "EmailGenerator":
        """Learn length, character, and domain statistics from ``sample``."""
        addresses = [a for a in sample if "@" in a]
        if not addresses:
            raise ConfigurationError("sample contains no valid addresses")
        locals_, domains = zip(*(a.lower().split("@", 1) for a in addresses))

        lengths = Counter(max(1, len(lp)) for lp in locals_)
        values = sorted(lengths.keys())
        counts = np.asarray([lengths[v] for v in values], dtype=np.float64)
        self._length_values = np.asarray(values)
        self._length_probs = counts / counts.sum()

        self._position_probs = []
        for pos in range(self._max_positions):
            freq = np.ones(len(_ALPHABET), dtype=np.float64) * 0.01
            for lp in locals_:
                if pos < len(lp) and lp[pos] in _CHAR_INDEX:
                    freq[_CHAR_INDEX[lp[pos]]] += 1.0
            self._position_probs.append(freq / freq.sum())

        domain_counts = Counter(domains)
        self._domains = sorted(domain_counts.keys())
        dcounts = np.asarray(
            [domain_counts[d] for d in self._domains], dtype=np.float64
        )
        self._domain_probs = dcounts / dcounts.sum()
        return self

    def generate(self, rng: np.random.Generator, n: int) -> List[str]:
        """Emit ``n`` synthetic addresses from the fitted statistics."""
        if not self.is_fitted:
            raise NotTrainedError("EmailGenerator.generate before fit")
        assert self._length_values is not None
        assert self._length_probs is not None
        assert self._domain_probs is not None
        out: List[str] = []
        lengths = rng.choice(self._length_values, size=n, p=self._length_probs)
        domain_ids = rng.choice(len(self._domains), size=n, p=self._domain_probs)
        for length, dom_id in zip(lengths, domain_ids):
            chars = []
            for pos in range(int(length)):
                probs = self._position_probs[min(pos, self._max_positions - 1)]
                chars.append(_ALPHABET[int(rng.choice(len(_ALPHABET), p=probs))])
            local = "".join(chars).strip("._") or "a"
            out.append(f"{local}@{self._domains[dom_id]}")
        return out

    def generate_keys(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Generate addresses and return their numeric encodings."""
        return np.asarray(
            [email_to_key(a) for a in self.generate(rng, n)], dtype=np.float64
        )

    @staticmethod
    def demo_sample(rng: np.random.Generator, n: int = 500) -> List[str]:
        """A plausible 'production' sample to fit against in examples/tests."""
        first = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"]
        last = ["smith", "jones", "lee", "garcia", "chen", "patel", "kim", "mueller"]
        out = []
        for _ in range(n):
            f = first[int(rng.integers(len(first)))]
            l = last[int(rng.integers(len(last)))]
            style = int(rng.integers(3))
            if style == 0:
                local = f"{f}.{l}"
            elif style == 1:
                local = f"{f}{int(rng.integers(100))}"
            else:
                local = f"{f[0]}{l}"
            domain = _DEFAULT_DOMAINS[int(rng.integers(len(_DEFAULT_DOMAINS)))]
            out.append(f"{local}@{domain}")
        return out
