"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the specific failure mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class TraceFormatError(ConfigurationError):
    """An on-disk query trace violated the versioned trace format.

    Raised by :func:`repro.workloads.trace.load_trace` (and the
    :class:`~repro.workloads.trace.QueryTrace` validator) for malformed
    files: missing or unknown columns, unknown operations, non-monotone
    or non-finite values, or a format version newer than this build.
    Subclasses :class:`ConfigurationError` so existing callers that
    catch configuration problems keep working.
    """


class KeyNotFoundError(ReproError, KeyError):
    """A point lookup targeted a key that is not present in the index."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class DuplicateKeyError(ReproError, KeyError):
    """An insert targeted a key that is already present in a unique index."""

    def __init__(self, key: object) -> None:
        super().__init__(f"duplicate key: {key!r}")
        self.key = key


class NotTrainedError(ReproError):
    """A learned component was used before its model was trained."""


class SchemaError(ReproError):
    """A relational operation referenced a column or type incorrectly."""


class PlanError(ReproError):
    """A query plan was malformed or could not be executed."""


class ScenarioError(ReproError):
    """A benchmark scenario definition was invalid."""


class HoldoutViolationError(ReproError):
    """A sealed hold-out scenario was accessed in a way the rules forbid.

    The paper proposes hold-out workloads "that the system is only allowed
    to execute once" to measure out-of-sample performance; this error
    enforces that contract.
    """


class TenancyError(ReproError):
    """A multi-tenant serve request was invalid or inconsistent.

    Raised by :class:`~repro.core.tenancy.BenchmarkServer` for malformed
    tenant specs (no scenario, unknown hold-out, bad admission knobs) —
    the request-level failures that should surface before any tenant
    burns CPU time or hold-out budget.
    """


class DriverError(ReproError):
    """The benchmark driver encountered an unrecoverable condition."""


class RunnerError(ReproError):
    """The matrix runner was misconfigured or could not complete."""
