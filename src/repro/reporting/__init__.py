"""Report rendering: the rows/series behind each Fig 1 panel.

* :mod:`~repro.reporting.figures` — per-panel renderers: each produces
  the exact data series a plotting script would consume plus a terminal
  ASCII sketch.
* :mod:`~repro.reporting.report` — full benchmark report combining all
  four panels and the lesson summaries.
"""

from repro.reporting.figures import (
    render_fig1a,
    render_fig1b,
    render_fig1c,
    render_fig1c_multiband,
    render_fig1d,
    sparkline,
)
from repro.reporting.report import BenchmarkReport, build_report

__all__ = [
    "render_fig1a",
    "render_fig1b",
    "render_fig1c",
    "render_fig1c_multiband",
    "render_fig1d",
    "sparkline",
    "BenchmarkReport",
    "build_report",
]
