"""Full benchmark reports.

:func:`build_report` assembles everything the paper says a learned-system
benchmark should output for a scenario run — specialization breakdown,
adaptability summary, SLA bands, and the cost decomposition — into one
:class:`BenchmarkReport` that renders as text or exports as a dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.metrics.adaptability import AdaptabilityReport, adaptability_report
from repro.metrics.cost import CostBreakdown, cost_breakdown
from repro.metrics.descriptive import box_stats
from repro.metrics.sla import LatencyBand, adjustment_speed, latency_bands
from repro.metrics.specialization import SpecializationReport, specialization_report
from repro.reporting.figures import render_fig1a, sparkline


@dataclass
class BenchmarkReport:
    """Everything the benchmark reports about one run.

    Attributes:
        result: The underlying run record.
        specialization: Fig 1a data.
        adaptability: Fig 1b summary.
        bands: Fig 1c bands (present when an SLA was supplied).
        sla: The SLA threshold used for the bands.
        adjustment: Fig 1c's single-value adjustment-speed metric.
        cost: Fig 1d's per-run cost decomposition.
        phase_seconds: Per-phase wall-time totals from the run's trace
            (present when the run was traced; see
            :meth:`repro.observability.Trace.phase_seconds`).
    """

    result: RunResult
    specialization: SpecializationReport
    adaptability: AdaptabilityReport
    bands: Optional[List[LatencyBand]]
    sla: Optional[float]
    adjustment: Optional[float]
    cost: CostBreakdown
    phase_seconds: Optional[Dict[str, float]] = None

    def to_dict(self) -> dict:
        """JSON-friendly summary (excludes raw query log)."""
        return {
            "sut": self.result.sut_name,
            "scenario": self.result.scenario_name,
            "queries": self.result.num_queries,
            "mean_throughput": self.result.mean_throughput(),
            "specialization": self.specialization.rows(),
            "adaptability": {
                "area_vs_ideal": self.adaptability.area_vs_ideal,
                "recovery_seconds": self.adaptability.recovery_seconds,
                "throughput_cv": self.adaptability.throughput_cv,
            },
            "sla": self.sla,
            "adjustment_speed": self.adjustment,
            "cost": {
                "training": self.cost.training_cost,
                "execution": self.cost.execution_cost,
                "per_kquery": self.cost.cost_per_kquery,
            },
            "training_events": len(self.result.training_events),
            "phase_seconds": self.phase_seconds,
        }

    def render(self) -> str:
        """Human-readable report block."""
        latencies = self.result.latencies()
        lat_stats = box_stats(latencies) if latencies.size else None
        lines = [
            f"=== {self.result.sut_name} on {self.result.scenario_name} ===",
            f"queries={self.result.num_queries}  "
            f"mean throughput={self.result.mean_throughput():.1f} q/s  "
            f"training events={len(self.result.training_events)}",
        ]
        if lat_stats:
            lines.append(
                f"latency p50={lat_stats.median*1000:.2f}ms "
                f"q3={lat_stats.q3*1000:.2f}ms max={lat_stats.maximum*1000:.2f}ms"
            )
        lines.append(render_fig1a([self.specialization]))
        lines.append(
            f"adaptability: area-vs-ideal={self.adaptability.area_vs_ideal:,.0f} q·s  "
            f"recovery={self.adaptability.recovery_seconds}  "
            f"throughput CV={self.adaptability.throughput_cv:.3f}"
        )
        if self.bands is not None and self.sla is not None:
            violations = sum(b.violated for b in self.bands)
            lines.append(
                f"SLA({self.sla*1000:.2f}ms): {violations} violations; "
                f"adjustment-speed={self.adjustment}"
            )
            lines.append(f"  viol {sparkline([b.violated for b in self.bands])}")
        lines.append(
            f"cost: training=${self.cost.training_cost:.4f} "
            f"execution=${self.cost.execution_cost:.4f} "
            f"(${self.cost.cost_per_kquery:.5f}/kquery)"
        )
        if self.phase_seconds is not None:
            parts = "  ".join(
                f"{phase}={seconds:.4f}s"
                for phase, seconds in self.phase_seconds.items()
            )
            lines.append(f"phases (wall): {parts}")
        _, counts = self.result.throughput_series()
        lines.append(f"  tp   {sparkline(counts)}")
        return "\n".join(lines)


def build_report(
    result: RunResult,
    scenario: Scenario,
    sla: Optional[float] = None,
    band_interval: float = 1.0,
    adjustment_n: int = 1000,
    trace=None,
) -> BenchmarkReport:
    """Assemble the full report for one run.

    Args:
        result: The run record.
        scenario: The scenario that produced it.
        sla: SLA threshold for the Fig 1c bands (None skips them).
        band_interval: Band width in virtual seconds.
        adjustment_n: N for the adjustment-speed metric.
        trace: Optional :class:`~repro.observability.Trace` from the run;
            folds its per-phase wall-time totals into the report.
    """
    spec = specialization_report(result, scenario)
    adapt = adaptability_report(result)
    bands = None
    adjustment = None
    if sla is not None:
        bands = latency_bands(result, sla, interval=band_interval)
        if len(result.segments) > 1:
            change = result.segments[0][2]
            adjustment = adjustment_speed(result, change, adjustment_n, sla)
    return BenchmarkReport(
        result=result,
        specialization=spec,
        adaptability=adapt,
        bands=bands,
        sla=sla,
        adjustment=adjustment,
        cost=cost_breakdown(result),
        phase_seconds=trace.phase_seconds() if trace is not None else None,
    )
