"""Text renderers for the Fig 1 panels.

Each ``render_fig1x`` function takes the metric objects computed by
:mod:`repro.metrics` and returns a plain-text block: a header, the data
rows a plotting script would consume (stable, parseable), and a small
ASCII sketch for terminal use. Benchmarks print these blocks so the
regenerated figures are directly comparable with the paper's panels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.metrics.adaptability import cumulative_curve
from repro.metrics.sla import LatencyBand
from repro.metrics.specialization import SpecializationReport

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Downsample ``values`` to ``width`` and render as block characters."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
    top = arr.max()
    if top <= 0:
        return _BLOCKS[0] * len(arr)
    scaled = (arr / top * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in scaled)


def render_fig1a(reports: Sequence[SpecializationReport]) -> str:
    """Fig 1a: throughput box plots per distribution, ordered by Φ."""
    lines = [
        "Fig 1a — Throughput per workload/data distribution (sorted by Φ)",
        f"{'sut':<22s} {'segment':<16s} {'phi':>6s} {'q1':>9s} {'median':>9s} "
        f"{'q3':>9s} {'whisk_lo':>9s} {'whisk_hi':>9s} {'outl':>5s} {'hold':>5s}",
    ]
    for report in reports:
        for seg in report.segments:
            tp = seg.throughput
            lines.append(
                f"{report.sut_name:<22s} {seg.label:<16s} {seg.phi:6.3f} "
                f"{tp.q1:9.1f} {tp.median:9.1f} {tp.q3:9.1f} "
                f"{tp.whisker_low:9.1f} {tp.whisker_high:9.1f} "
                f"{len(tp.outliers):5d} {'*' if seg.holdout else '':>5s}"
            )
    return "\n".join(lines)


def render_fig1b(
    results: Sequence[RunResult],
    areas_vs_ideal: Optional[Dict[str, float]] = None,
    resolution: float = 1.0,
) -> str:
    """Fig 1b: cumulative queries over time, one curve per system."""
    lines = ["Fig 1b — Cumulative queries completed over time"]
    for result in results:
        times, cum = cumulative_curve(result, resolution)
        area = (areas_vs_ideal or {}).get(result.sut_name)
        suffix = f"  area-vs-ideal={area:,.0f} q·s" if area is not None else ""
        lines.append(f"{result.sut_name:<22s} total={int(cum[-1]):7d}{suffix}")
        lines.append(f"  {sparkline(np.diff(cum))}  (per-interval throughput)")
    return "\n".join(lines)


def render_fig1c(
    bands_by_sut: Dict[str, List[LatencyBand]],
    sla: float,
    adjustment: Optional[Dict[str, float]] = None,
) -> str:
    """Fig 1c: SLA violation bands per interval."""
    lines = [f"Fig 1c — SLA violation bands (SLA = {sla*1000:.2f} ms)"]
    for sut_name, bands in bands_by_sut.items():
        total_violations = sum(b.violated for b in bands)
        total = sum(b.total for b in bands)
        adj = (adjustment or {}).get(sut_name)
        suffix = f"  adjustment-speed={adj:.2f} s" if adj is not None else ""
        rate = total_violations / total if total else 0.0
        lines.append(
            f"{sut_name:<22s} violations={total_violations:6d}/{total:d} "
            f"({rate:6.2%}){suffix}"
        )
        lines.append(f"  ok   {sparkline([b.within_sla for b in bands])}")
        lines.append(f"  viol {sparkline([b.violated for b in bands])}")
    return "\n".join(lines)


def render_fig1c_multiband(
    rows_by_sut: Dict[str, List[Tuple[float, List[int]]]],
    thresholds: Sequence[float],
) -> str:
    """Fig 1c's multi-band variant (the paper's green-yellow-orange-red).

    ``rows_by_sut`` maps SUT name to :func:`repro.metrics.sla.
    multi_latency_bands` output; each interval's completions split into
    ``len(thresholds) + 1`` latency classes.
    """
    labels = (
        [f"<{thresholds[0]*1000:g}ms"]
        + [
            f"{lo*1000:g}-{hi*1000:g}ms"
            for lo, hi in zip(thresholds, thresholds[1:])
        ]
        + [f">{thresholds[-1]*1000:g}ms"]
    )
    lines = [
        "Fig 1c (multi-band) — latency classes per interval: "
        + " / ".join(labels)
    ]
    for sut_name, rows in rows_by_sut.items():
        totals = [sum(counts[band] for _, counts in rows)
                  for band in range(len(labels))]
        lines.append(
            f"{sut_name:<22s} totals: "
            + "  ".join(f"{label}={count}" for label, count in zip(labels, totals))
        )
        for band, label in enumerate(labels):
            series = [counts[band] for _, counts in rows]
            lines.append(f"  {label:>12s} {sparkline(series)}")
    return "\n".join(lines)


def render_fig1d(
    learned_curve: Sequence[Tuple[float, float]],
    traditional_levels: Sequence[Tuple[float, float]],
    crossover: Optional[float],
    learned_name: str = "learned",
    traditional_name: str = "traditional",
) -> str:
    """Fig 1d: throughput per (training or DBA) cost."""
    lines = [
        "Fig 1d — Throughput per cost",
        f"{'system':<22s} {'cost $':>10s} {'throughput (q/s)':>18s}",
    ]
    for cost, tp in sorted(learned_curve):
        lines.append(f"{learned_name:<22s} {cost:10.6f} {tp:18.1f}")
    for cost, tp in sorted(traditional_levels):
        lines.append(f"{traditional_name:<22s} {cost:10.2f} {tp:18.1f}")
    if crossover is not None:
        lines.append(f"training cost to outperform: ${crossover:.6f}")
    else:
        lines.append("training cost to outperform: not reached on sampled curve")
    return "\n".join(lines)
