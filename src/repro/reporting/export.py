"""Tabular export of benchmark results.

Plotting scripts and spreadsheets want flat tables, not Python objects.
This module renders the core result artifacts as CSV text:

* :func:`queries_csv` — the raw query log (one row per query).
* :func:`throughput_csv` — per-interval completion counts.
* :func:`bands_csv` — Fig 1c bands.
* :func:`specialization_csv` — Fig 1a rows.
* :func:`curves_csv` — any list of named (x, y) series (Fig 1b/1d).

All functions return strings; callers decide where to write them.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence, Tuple

from repro.core.results import RunResult
from repro.metrics.sla import LatencyBand
from repro.metrics.specialization import SpecializationReport


def _render(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def queries_csv(result: RunResult) -> str:
    """One row per query: arrival, start, completion, latency, op, segment."""
    cols = result.columns
    rows = zip(
        cols.arrivals.tolist(),
        cols.starts.tolist(),
        cols.completions.tolist(),
        cols.latencies.tolist(),
        cols.ops(),
        cols.segment_names(),
    )
    return _render(
        ["arrival", "start", "completion", "latency", "op", "segment"], rows
    )


def throughput_csv(result: RunResult, interval: float = 1.0) -> str:
    """Per-interval completed-query counts."""
    times, counts = result.throughput_series(interval=interval)
    return _render(
        ["t", "completed"], [(float(t), float(c)) for t, c in zip(times, counts)]
    )


def bands_csv(bands: Sequence[LatencyBand]) -> str:
    """Fig 1c bands: interval start, within-SLA count, violated count."""
    return _render(
        ["t", "within_sla", "violated"],
        [(b.start, b.within_sla, b.violated) for b in bands],
    )


def specialization_csv(report: SpecializationReport) -> str:
    """Fig 1a rows, one per segment, sorted by Φ."""
    rows = report.rows()
    if not rows:
        return _render(["segment"], [])
    header = list(rows[0].keys())
    return _render(header, [[row[key] for key in header] for row in rows])


def curves_csv(curves: Dict[str, Sequence[Tuple[float, float]]]) -> str:
    """Named (x, y) series in long format: series, x, y."""
    rows: List[Tuple[str, float, float]] = []
    for name, points in curves.items():
        for x, y in points:
            rows.append((name, float(x), float(y)))
    return _render(["series", "x", "y"], rows)


def training_events_csv(result: RunResult) -> str:
    """One row per training event."""
    rows = [
        (e.start, e.duration, e.nominal_seconds, e.hardware_name, e.cost,
         e.online, e.label)
        for e in result.training_events
    ]
    return _render(
        ["start", "duration", "nominal_seconds", "hardware", "cost",
         "online", "label"],
        rows,
    )
