"""Dataset and workload quality scoring (§V-C of the paper).

The paper proposes "a software tool that evaluates the quality and
relevance of a given dataset for the benchmark. For example, this tool
could attribute low marks to uniform data distributions and workloads
while favoring datasets exhibiting skew or varying query load."

:func:`score_dataset` scores a key sample on three axes — non-uniformity,
multi-modality, and tail weight. :func:`score_workload` scores a workload
spec + observed load trace on skew, drift, and load variation. Scores are
in [0, 1]; higher means more benchmark-relevant (harder / more realistic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generators import WorkloadSpec


@dataclass(frozen=True)
class DatasetQualityReport:
    """Quality breakdown for a dataset (key sample).

    Attributes:
        non_uniformity: KS distance of the sample from uniform on its
            observed range (0 = perfectly uniform, → 1 = very skewed).
        multimodality: Histogram roughness — how far bucket frequencies
            deviate from flat, normalized to [0, 1].
        tail_weight: Mass concentration — fraction of range covered by
            the densest 10% of buckets subtracted from 1.
        overall: Weighted combination of the above.
    """

    non_uniformity: float
    multimodality: float
    tail_weight: float
    overall: float

    def grade(self) -> str:
        """Letter grade A (very relevant) .. F (uninteresting)."""
        return _grade(self.overall)


@dataclass(frozen=True)
class WorkloadQualityReport:
    """Quality breakdown for a workload.

    Attributes:
        skew: Access-key skew (Gini-style concentration of a key sample).
        drift: How much the access distribution changes over the probed
            horizon (mean KS distance between consecutive probe times).
        load_variation: Coefficient of variation of the arrival rate.
        overall: Weighted combination.
    """

    skew: float
    drift: float
    load_variation: float
    overall: float

    def grade(self) -> str:
        """Letter grade A (very relevant) .. F (uninteresting)."""
        return _grade(self.overall)


def _grade(score: float) -> str:
    for threshold, letter in ((0.8, "A"), (0.6, "B"), (0.4, "C"), (0.2, "D")):
        if score >= threshold:
            return letter
    return "F"


def score_dataset(keys: Sequence[float], buckets: int = 64) -> DatasetQualityReport:
    """Score a key sample's benchmark relevance.

    Args:
        keys: The dataset's keys (or a representative sample).
        buckets: Histogram resolution used for the shape statistics.
    """
    arr = np.asarray(list(keys), dtype=np.float64)
    if arr.size < 2:
        raise ConfigurationError("need at least 2 keys to score a dataset")
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        # A constant dataset is degenerate but maximally non-uniform.
        return DatasetQualityReport(1.0, 1.0, 1.0, 1.0)

    # Non-uniformity: KS distance from the uniform CDF over [lo, hi].
    sorted_keys = np.sort(arr)
    empirical = np.arange(1, arr.size + 1) / arr.size
    uniform = (sorted_keys - lo) / (hi - lo)
    non_uniformity = float(np.abs(empirical - uniform).max())

    # Histogram shape statistics.
    hist, _ = np.histogram(arr, bins=buckets, range=(lo, hi))
    freq = hist / hist.sum()
    flat = 1.0 / buckets
    # Total variation distance from flat, normalized to [0, 1].
    multimodality = float(np.abs(freq - flat).sum() / (2.0 * (1.0 - flat)))

    # Tail weight: how much mass the densest 10% of buckets holds.
    top = max(1, buckets // 10)
    dense_mass = float(np.sort(freq)[-top:].sum())
    tail_weight = float(np.clip((dense_mass - top * flat) / (1.0 - top * flat), 0.0, 1.0))

    overall = float(
        np.clip(0.4 * non_uniformity + 0.3 * multimodality + 0.3 * tail_weight, 0.0, 1.0)
    )
    return DatasetQualityReport(non_uniformity, multimodality, tail_weight, overall)


def score_workload(
    spec: WorkloadSpec,
    horizon: float = 600.0,
    probes: int = 8,
    sample_size: int = 2000,
    seed: int = 0,
) -> WorkloadQualityReport:
    """Score a workload spec's benchmark relevance.

    Probes the key-drift model at ``probes`` times across ``horizon``
    seconds, measuring access skew at each probe and distribution movement
    between consecutive probes; probes the arrival process for load
    variation.
    """
    if probes < 2:
        raise ConfigurationError("need at least 2 probes")
    rng = np.random.default_rng(seed)
    times = np.linspace(0.0, horizon, probes)

    samples: List[np.ndarray] = []
    for t in times:
        dist = spec.key_drift.at(float(t))
        samples.append(np.sort(dist.sample(rng, sample_size)))

    # Skew: average Gini coefficient of bucket frequencies.
    ginis = []
    for sample in samples:
        hist, _ = np.histogram(sample, bins=64)
        freq = np.sort(hist / max(1, hist.sum()))
        n = freq.size
        cum = np.cumsum(freq)
        gini = float(1.0 - 2.0 * (cum.sum() / n - 0.5 / n))
        ginis.append(np.clip(gini, 0.0, 1.0))
    skew = float(np.mean(ginis))

    # Drift: mean two-sample KS distance between consecutive probes.
    ks_values = []
    for a, b in zip(samples[:-1], samples[1:]):
        ks_values.append(_two_sample_ks(a, b))
    drift = float(np.clip(np.mean(ks_values), 0.0, 1.0))

    # Load variation: coefficient of variation of the rate trace, squashed.
    rates = np.asarray([spec.arrivals.rate(float(t)) for t in np.linspace(0, horizon, 64)])
    mean_rate = rates.mean()
    if mean_rate <= 0:
        load_variation = 0.0
    else:
        load_variation = float(np.clip(rates.std() / mean_rate, 0.0, 1.0))

    overall = float(np.clip(0.35 * skew + 0.4 * drift + 0.25 * load_variation, 0.0, 1.0))
    return WorkloadQualityReport(skew, drift, load_variation, overall)


def _two_sample_ks(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic for sorted samples."""
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())
