"""Distribution drift models.

A :class:`DriftModel` turns virtual time into a :class:`Distribution`, so
the benchmark driver can ask "what does the key distribution look like at
t = 137.2s?". The catalog implements the transition types the paper calls
out in §V-B — abrupt switches and slow (gradual) transitions — plus two
continuous real-world patterns it motivates in §I/§III: rotating hotspots
(diurnal access locality) and skew that grows over time.

:class:`DriftFactor` adds the NeurBench-style *controllable intensity*
axis: a single ``factor`` in [0, 1] deterministically interpolates the
key stream between a base model (factor 0) and a target model (factor 1),
with bit-identical delegation at the endpoints.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    Distribution,
    HotspotDistribution,
    MixtureDistribution,
    ZipfDistribution,
)


class DriftModel(ABC):
    """Maps virtual time (seconds) to the active key distribution."""

    @abstractmethod
    def at(self, t: float) -> Distribution:
        """Return the distribution in effect at virtual time ``t``."""

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Draw one key per entry of ``times`` from the drift.

        The base implementation groups *consecutive* times that resolve to
        the same :meth:`at` object and bulk-samples each run — one RNG call
        per run instead of one per query. Models whose ``at`` builds a
        fresh distribution per call override this with a fully vectorized
        equivalent.
        """
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        out = np.empty(n, dtype=np.float64)
        i = 0
        while i < n:
            dist = self.at(float(times[i]))
            j = i + 1
            while j < n and self.at(float(times[j])) is dist:
                j += 1
            out[i:j] = dist.sample(rng, j - i)
            i = j
        return out

    def describe(self) -> dict:
        """JSON-friendly description of the drift model."""
        return {"kind": type(self).__name__}


class NoDrift(DriftModel):
    """A fixed distribution — the traditional-benchmark baseline."""

    def __init__(self, distribution: Distribution) -> None:
        """Pin ``distribution`` as the key distribution for all time."""
        self.distribution = distribution

    def at(self, t: float) -> Distribution:
        """Return the fixed distribution regardless of ``t``."""
        return self.distribution

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Bulk-sample the fixed distribution (one RNG call)."""
        return self.distribution.sample(rng, np.asarray(times).size)

    def describe(self) -> dict:
        """JSON-friendly description including the pinned distribution."""
        return {"kind": "NoDrift", "distribution": self.distribution.describe()}


class AbruptDrift(DriftModel):
    """Switches instantly between distributions at given times.

    ``change_times[i]`` is the virtual time at which ``distributions[i+1]``
    takes over from ``distributions[i]``.
    """

    def __init__(
        self, distributions: Sequence[Distribution], change_times: Sequence[float]
    ) -> None:
        """Validate the distributions/change-times pairing and store it."""
        if len(distributions) != len(change_times) + 1:
            raise ConfigurationError(
                "need exactly one more distribution than change times"
            )
        if list(change_times) != sorted(change_times):
            raise ConfigurationError("change_times must be sorted ascending")
        self.distributions = list(distributions)
        self.change_times = [float(t) for t in change_times]

    def at(self, t: float) -> Distribution:
        """The distribution whose change time most recently passed."""
        idx = 0
        for change in self.change_times:
            if t >= change:
                idx += 1
            else:
                break
        return self.distributions[idx]

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Vectorized sampling: one bulk draw per run of equal epochs."""
        times = np.asarray(times, dtype=np.float64)
        idx = np.searchsorted(np.asarray(self.change_times), times, side="right")
        out = np.empty(times.size, dtype=np.float64)
        cuts = np.concatenate(
            [[0], np.flatnonzero(np.diff(idx)) + 1, [times.size]]
        )
        for a, b in zip(cuts[:-1], cuts[1:]):
            out[a:b] = self.distributions[int(idx[a])].sample(rng, int(b - a))
        return out

    def describe(self) -> dict:
        """JSON-friendly description of epochs and switch times."""
        return {
            "kind": "AbruptDrift",
            "change_times": self.change_times,
            "distributions": [d.describe() for d in self.distributions],
        }


class GradualDrift(DriftModel):
    """Linear mixing ramp from one distribution to another.

    Before ``start`` only ``before`` is active; after ``start + duration``
    only ``after``; in between, samples come from a mixture whose weight
    shifts linearly. This is the paper's "workload can slowly transition"
    case.
    """

    def __init__(
        self,
        before: Distribution,
        after: Distribution,
        start: float,
        duration: float,
    ) -> None:
        """Ramp from ``before`` to ``after`` over ``[start, start+duration]``."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.before = before
        self.after = after
        self.start = float(start)
        self.duration = float(duration)

    def mix_fraction(self, t: float) -> float:
        """Fraction of the 'after' distribution active at time ``t``."""
        if t <= self.start:
            return 0.0
        if t >= self.start + self.duration:
            return 1.0
        return (t - self.start) / self.duration

    def at(self, t: float) -> Distribution:
        """The ramp mixture at ``t`` (the endpoints return the originals)."""
        frac = self.mix_fraction(t)
        if frac <= 0.0:
            return self.before
        if frac >= 1.0:
            return self.after
        return MixtureDistribution([self.before, self.after], [1.0 - frac, frac])

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Vectorized ramp sampling: one component draw per query.

        Statistically equivalent to sampling ``at(t)`` per query: each
        query picks the 'after' component with probability
        ``mix_fraction(t)`` and the chosen components are bulk-sampled.
        """
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        frac = np.clip((times - self.start) / self.duration, 0.0, 1.0)
        take_after = rng.uniform(0.0, 1.0, n) < frac
        out = np.empty(n, dtype=np.float64)
        n_after = int(take_after.sum())
        if n_after < n:
            out[~take_after] = self.before.sample(rng, n - n_after)
        if n_after:
            out[take_after] = self.after.sample(rng, n_after)
        return out

    def describe(self) -> dict:
        """JSON-friendly description of the ramp and its endpoints."""
        return {
            "kind": "GradualDrift",
            "start": self.start,
            "duration": self.duration,
            "before": self.before.describe(),
            "after": self.after.describe(),
        }


class RotatingHotspotDrift(DriftModel):
    """A hotspot whose location sweeps the domain with a fixed period.

    Models diurnal locality: "the hot keys at night are not the hot keys
    during the day". The hotspot's start position completes one full loop
    of the domain every ``period`` seconds.
    """

    def __init__(
        self,
        low: float,
        high: float,
        hot_width: float,
        period: float,
        hot_fraction: float = 0.9,
    ) -> None:
        """Sweep a ``hot_width`` hotspot around ``[low, high)`` per ``period``."""
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.low = float(low)
        self.high = float(high)
        self.hot_width = float(hot_width)
        self.period = float(period)
        self.hot_fraction = float(hot_fraction)

    def at(self, t: float) -> Distribution:
        """The hotspot distribution at ``t``'s phase of the rotation."""
        phase = (t % self.period) / self.period
        hot_start = self.low + phase * (self.high - self.low)
        return HotspotDistribution(
            self.low,
            self.high,
            hot_start=hot_start,
            hot_width=self.hot_width,
            hot_fraction=self.hot_fraction,
        )

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Vectorized rotation: per-query hot bounds, bulk uniforms.

        Mirrors :meth:`HotspotDistribution.sample` with a per-query hot
        range computed from each query's phase.
        """
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        span = self.high - self.low
        phase = (times % self.period) / self.period
        hot_start = self.low + phase * span
        width = min(self.hot_width, span)
        start = self.low + (hot_start - self.low) % span
        end = np.minimum(start + width, self.high)
        hot = rng.uniform(0.0, 1.0, n) < self.hot_fraction
        out = rng.uniform(self.low, self.high, n)
        n_hot = int(hot.sum())
        if n_hot:
            u = rng.uniform(0.0, 1.0, n_hot)
            out[hot] = start[hot] + u * (end[hot] - start[hot])
        return out

    def describe(self) -> dict:
        """JSON-friendly description of the rotation parameters."""
        return {
            "kind": "RotatingHotspotDrift",
            "low": self.low,
            "high": self.high,
            "hot_width": self.hot_width,
            "period": self.period,
            "hot_fraction": self.hot_fraction,
        }


class GrowingSkewDrift(DriftModel):
    """Zipf skew parameter that grows linearly over time.

    Models the paper's "growing data skew over time": theta ramps from
    ``theta_start`` to ``theta_end`` across ``duration`` seconds.
    """

    def __init__(
        self,
        low: float,
        high: float,
        theta_start: float = 0.0,
        theta_end: float = 1.2,
        duration: float = 600.0,
        n_items: int = 10_000,
        permute_seed: int = 0,
    ) -> None:
        """Ramp Zipf ``theta`` from ``theta_start`` to ``theta_end``."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.low = float(low)
        self.high = float(high)
        self.theta_start = float(theta_start)
        self.theta_end = float(theta_end)
        self.duration = float(duration)
        self.n_items = int(n_items)
        self.permute_seed = permute_seed
        self._cache: dict = {}

    def theta_at(self, t: float) -> float:
        """Skew parameter in effect at time ``t``."""
        frac = min(1.0, max(0.0, t / self.duration))
        return self.theta_start + frac * (self.theta_end - self.theta_start)

    def at(self, t: float) -> Distribution:
        """The Zipf distribution at ``t``'s (quantized) skew level."""
        # Quantize theta so repeated queries reuse Zipf tables.
        theta = round(self.theta_at(t), 2)
        if theta not in self._cache:
            self._cache[theta] = ZipfDistribution(
                self.low,
                self.high,
                theta=theta,
                n_items=self.n_items,
                permute_seed=self.permute_seed,
            )
        return self._cache[theta]

    def describe(self) -> dict:
        """JSON-friendly description of the skew ramp."""
        return {
            "kind": "GrowingSkewDrift",
            "theta_start": self.theta_start,
            "theta_end": self.theta_end,
            "duration": self.duration,
        }


class DriftFactor(DriftModel):
    """Controllable drift intensity between two drift models (NeurBench).

    A single ``factor`` in [0, 1] deterministically interpolates the key
    stream between ``base`` (factor 0) and ``target`` (factor 1): at
    time ``t``, keys come from the mixture
    ``(1 - factor) * base.at(t) + factor * target.at(t)``.

    Because the mixture CDF is affine in ``factor``, the analytic
    sup-CDF distance to either endpoint is *exactly linear*:
    ``phi(blend(f), target) = (1 - f) * phi(base, target)`` — which is
    what lets a drift-factor sweep chart Fig-1a-style curves against a
    computed, monotone Φ instead of assumed point samples.

    At the exact endpoints the model delegates *wholly* to base/target
    — same RNG consumption, bit-identical streams — so a sweep pins its
    ends to today's unblended scenarios.
    """

    def __init__(self, base: DriftModel, target: DriftModel, factor: float) -> None:
        """Blend ``base`` toward ``target`` with intensity ``factor``."""
        factor = float(factor)
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(
                f"drift factor must be in [0, 1], got {factor}"
            )
        self.base = base
        self.target = target
        self.factor = factor

    def at(self, t: float) -> Distribution:
        """The blended distribution at ``t`` (endpoints return originals)."""
        if self.factor <= 0.0:
            return self.base.at(t)
        if self.factor >= 1.0:
            return self.target.at(t)
        return MixtureDistribution(
            [self.base.at(t), self.target.at(t)],
            [1.0 - self.factor, self.factor],
        )

    def sample_at(self, rng: np.random.Generator, times: np.ndarray) -> np.ndarray:
        """Vectorized blend sampling: one Bernoulli mask, two bulk draws.

        At the endpoints this delegates the *entire* call to the base or
        target model so the RNG stream is bit-identical to running that
        model alone. In between, each query picks the target component
        with probability ``factor`` (mirroring
        :meth:`GradualDrift.sample_at`'s draw order: mask first, then
        base keys, then target keys).
        """
        if self.factor <= 0.0:
            return self.base.sample_at(rng, times)
        if self.factor >= 1.0:
            return self.target.sample_at(rng, times)
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        take_target = rng.uniform(0.0, 1.0, n) < self.factor
        out = np.empty(n, dtype=np.float64)
        n_target = int(take_target.sum())
        if n_target < n:
            out[~take_target] = self.base.sample_at(rng, times[~take_target])
        if n_target:
            out[take_target] = self.target.sample_at(rng, times[take_target])
        return out

    def describe(self) -> dict:
        """JSON-friendly description: factor plus both endpoint models."""
        return {
            "kind": "DriftFactor",
            "factor": self.factor,
            "base": self.base.describe(),
            "target": self.target.describe(),
        }
