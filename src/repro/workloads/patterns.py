"""Arrival-rate processes.

An :class:`ArrivalProcess` gives the offered query rate (queries per
virtual second) as a function of virtual time. The benchmark driver
integrates it to generate arrival timestamps. The catalog implements the
load phenomena the paper lists: fluctuating query load, complex diurnal
patterns, and temporary bursts.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class ArrivalProcess(ABC):
    """Offered load (queries/second) over virtual time."""

    @abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (>= 0)."""

    def arrivals(
        self, rng: np.random.Generator, start: float, end: float, jitter: bool = True
    ) -> np.ndarray:
        """Generate arrival timestamps in ``[start, end)``.

        Uses per-interval integration of the rate: each one-second slice
        contributes ``rate(t)`` arrivals (fractional residue carried over),
        spread uniformly (with optional jitter) inside the slice. This is
        deterministic in count — throughput curves depend on the rate
        function, not sampling noise — while jitter keeps inter-arrival
        gaps realistic.
        """
        if end <= start:
            return np.empty(0, dtype=np.float64)
        times: List[float] = []
        carry = 0.0
        t = start
        while t < end:
            step = min(1.0, end - t)
            expected = self.rate(t + step / 2.0) * step + carry
            count = int(expected)
            carry = expected - count
            if count > 0:
                if jitter:
                    offsets = np.sort(rng.uniform(0.0, step, count))
                else:
                    offsets = (np.arange(count) + 0.5) * (step / count)
                times.extend((t + offsets).tolist())
            t += step
        return np.asarray(times, dtype=np.float64)

    def projected_count(self, start: float, end: float) -> int:
        """Exact number of arrivals :meth:`arrivals` would generate.

        Per-slice counts are deterministic (only offsets are random), so
        this mirrors the integration loop without materializing timestamp
        arrays — callers like the driver's ``max_queries`` safety valve can
        reject an oversized segment before any allocation happens.
        """
        if end <= start:
            return 0
        total = 0
        carry = 0.0
        t = start
        while t < end:
            step = min(1.0, end - t)
            expected = self.rate(t + step / 2.0) * step + carry
            count = int(expected)
            carry = expected - count
            total += count
            t += step
        return total

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {"kind": type(self).__name__}


class ConstantArrivals(ArrivalProcess):
    """Fixed offered load."""

    def __init__(self, rate: float) -> None:
        """Store the fixed rate (queries per virtual second)."""
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        """The fixed rate, independent of ``t``."""
        return self._rate

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {"kind": "ConstantArrivals", "rate": self._rate}


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load pattern.

    Rate oscillates between ``base * (1 - amplitude)`` and
    ``base * (1 + amplitude)`` with the given ``period`` (a scaled "day").
    """

    def __init__(self, base: float, amplitude: float = 0.5, period: float = 86_400.0,
                 phase: float = 0.0) -> None:
        """Validate and store the sinusoid parameters."""
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(f"amplitude must be in [0,1], got {amplitude}")
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        """Sinusoidal rate at ``t`` (clamped at zero)."""
        cycle = math.sin(2.0 * math.pi * (t / self.period) + self.phase)
        return max(0.0, self.base * (1.0 + self.amplitude * cycle))

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {
            "kind": "DiurnalArrivals",
            "base": self.base,
            "amplitude": self.amplitude,
            "period": self.period,
        }


class BurstyArrivals(ArrivalProcess):
    """A base rate with multiplicative bursts at scheduled windows.

    ``bursts`` is a list of ``(start, duration, multiplier)`` tuples.
    Overlapping bursts multiply.
    """

    def __init__(
        self, base: float, bursts: Sequence[Tuple[float, float, float]]
    ) -> None:
        """Validate and store the base rate and burst windows."""
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        self.base = float(base)
        self.bursts = [(float(s), float(d), float(m)) for s, d, m in bursts]
        for start, duration, mult in self.bursts:
            if duration <= 0 or mult < 0:
                raise ConfigurationError(
                    f"invalid burst (start={start}, duration={duration}, mult={mult})"
                )

    def rate(self, t: float) -> float:
        """Base rate times every burst window covering ``t``."""
        rate = self.base
        for start, duration, mult in self.bursts:
            if start <= t < start + duration:
                rate *= mult
        return rate

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {"kind": "BurstyArrivals", "base": self.base, "bursts": self.bursts}


class RampArrivals(ArrivalProcess):
    """Linear ramp from ``rate_start`` to ``rate_end`` over ``duration``."""

    def __init__(self, rate_start: float, rate_end: float, duration: float) -> None:
        """Validate and store the ramp endpoints and duration."""
        if min(rate_start, rate_end) < 0:
            raise ConfigurationError("rates must be >= 0")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.rate_start = float(rate_start)
        self.rate_end = float(rate_end)
        self.duration = float(duration)

    def rate(self, t: float) -> float:
        """Linearly interpolated rate at ``t`` (flat past the ramp)."""
        frac = min(1.0, max(0.0, t / self.duration))
        return self.rate_start + frac * (self.rate_end - self.rate_start)

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {
            "kind": "RampArrivals",
            "rate_start": self.rate_start,
            "rate_end": self.rate_end,
            "duration": self.duration,
        }


class CompositeArrivals(ArrivalProcess):
    """Piecewise schedule of other arrival processes.

    ``segments`` is a list of ``(start_time, process)``; the process whose
    start time most recently passed is active. Times inside a segment are
    passed to the segment's process relative to the segment start, so each
    sub-process sees its own local clock.
    """

    def __init__(self, segments: Sequence[Tuple[float, ArrivalProcess]]) -> None:
        """Store ``(start_time, process)`` entries (starts must ascend)."""
        if not segments:
            raise ConfigurationError("need at least one segment")
        starts = [s for s, _ in segments]
        if starts != sorted(starts):
            raise ConfigurationError("segment start times must be ascending")
        self.segments = [(float(s), p) for s, p in segments]

    def rate(self, t: float) -> float:
        """The active sub-process's rate on its local clock."""
        active_start, active = self.segments[0]
        for start, process in self.segments:
            if t >= start:
                active_start, active = start, process
            else:
                break
        return active.rate(t - active_start)

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {
            "kind": "CompositeArrivals",
            "segments": [
                {"start": start, "process": process.describe()}
                for start, process in self.segments
            ],
        }
