"""Query-stream generators for key-value workloads.

A :class:`KVWorkload` combines three time-varying ingredients:

* an access-key :class:`~repro.workloads.drift.DriftModel` (which keys
  queries touch, and how that changes over time),
* an :class:`~repro.workloads.generators.OperationMix` (read / insert /
  update / scan / read-modify-write proportions), itself allowed to drift,
* an :class:`~repro.workloads.patterns.ArrivalProcess` (offered load).

The benchmark driver asks the workload for each query at its arrival
time, so every aspect of the stream can evolve during a single run —
the paper's central requirement (Lesson 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import Distribution
from repro.workloads.drift import DriftModel, NoDrift
from repro.workloads.patterns import ArrivalProcess, ConstantArrivals


class KVOperation(enum.Enum):
    """Key-value operation types (YCSB vocabulary)."""

    READ = "read"
    INSERT = "insert"
    UPDATE = "update"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class KVQuery:
    """One key-value query instance.

    Attributes:
        op: Operation type.
        key: Target key (scan start key for scans).
        scan_length: Number of keys a scan covers (0 for non-scans).
        arrival_time: Virtual arrival timestamp assigned by the driver.
    """

    op: KVOperation
    key: float
    scan_length: int = 0
    arrival_time: float = 0.0


class OperationMix:
    """Proportions of each operation type, normalized to sum to 1."""

    def __init__(self, proportions: Dict[KVOperation, float]) -> None:
        if not proportions:
            raise ConfigurationError("operation mix cannot be empty")
        total = sum(proportions.values())
        if total <= 0 or any(p < 0 for p in proportions.values()):
            raise ConfigurationError("proportions must be non-negative, not all zero")
        self._ops = list(proportions.keys())
        self._probs = np.asarray(
            [proportions[op] / total for op in self._ops], dtype=np.float64
        )

    @classmethod
    def read_only(cls) -> "OperationMix":
        """100% point reads."""
        return cls({KVOperation.READ: 1.0})

    @classmethod
    def read_write(cls, read_fraction: float) -> "OperationMix":
        """Reads + updates with the given read fraction."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0,1], got {read_fraction}"
            )
        return cls(
            {KVOperation.READ: read_fraction, KVOperation.UPDATE: 1.0 - read_fraction}
        )

    def sample(self, rng: np.random.Generator) -> KVOperation:
        """Draw one operation type."""
        return self._ops[int(rng.choice(len(self._ops), p=self._probs))]

    def proportions(self) -> Dict[KVOperation, float]:
        """Return a copy of the normalized proportions."""
        return {op: float(p) for op, p in zip(self._ops, self._probs)}

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {op.value: float(p) for op, p in zip(self._ops, self._probs)}


class MixSchedule:
    """A piecewise-constant schedule of operation mixes over time.

    Models the paper's "evolving workload mixing" (it cites OLTP-Bench's
    support for exactly this): ``segments`` is a list of
    ``(start_time, mix)`` with ascending start times; the mix whose start
    most recently passed is active.
    """

    def __init__(self, segments: Sequence[Tuple[float, OperationMix]]) -> None:
        if not segments:
            raise ConfigurationError("mix schedule needs at least one entry")
        starts = [s for s, _ in segments]
        if starts != sorted(starts):
            raise ConfigurationError("mix schedule start times must ascend")
        self._segments = [(float(s), m) for s, m in segments]

    def at(self, t: float) -> OperationMix:
        """The operation mix in effect at time ``t``."""
        active = self._segments[0][1]
        for start, mix in self._segments:
            if t >= start:
                active = mix
            else:
                break
        return active

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {
            "kind": "MixSchedule",
            "segments": [
                {"start": start, "mix": mix.describe()}
                for start, mix in self._segments
            ],
        }


@dataclass
class WorkloadSpec:
    """Declarative description of a workload, used for Φ similarity.

    ``signature()`` returns the set of structural features (operation
    types, scan characteristics, key-distribution kind/parameters) over
    which :func:`repro.metrics.similarity.jaccard_similarity` is computed
    — the paper's "Jaccard similarity between the sets of all subtrees of
    the query tree" adapted to key-value query templates.

    ``mix_schedule``, when set, overrides ``mix`` over time — the
    operation proportions themselves can evolve within one segment.
    """

    name: str
    mix: OperationMix
    key_drift: DriftModel
    arrivals: ArrivalProcess
    scan_length_mean: int = 0
    mix_schedule: Optional[MixSchedule] = None

    def mix_at(self, t: float) -> OperationMix:
        """The operation mix in effect at time ``t``."""
        if self.mix_schedule is not None:
            return self.mix_schedule.at(t)
        return self.mix

    def signature(self, at_time: float = 0.0) -> frozenset:
        """Structural feature set for workload similarity at ``at_time``."""
        feats = set()
        for op, p in self.mix_at(at_time).proportions().items():
            if p > 0:
                feats.add(("op", op.value))
                # Bucketized proportion: two workloads with 95% vs 50% reads
                # should not look identical.
                feats.add(("op-share", op.value, round(p * 10) / 10))
        dist = self.key_drift.at(at_time).describe()
        feats.add(("dist-kind", dist.get("kind")))
        for param in ("theta", "hot_fraction", "mean", "sigma"):
            if param in dist:
                feats.add(("dist-param", param, round(float(dist[param]), 1)))
        if self.scan_length_mean > 0:
            feats.add(("scan-length", min(1000, 10 ** len(str(self.scan_length_mean)))))
        return frozenset(feats)

    def describe(self) -> dict:
        """JSON-friendly description of the full spec."""
        out = {
            "name": self.name,
            "mix": self.mix.describe(),
            "key_drift": self.key_drift.describe(),
            "arrivals": self.arrivals.describe(),
            "scan_length_mean": self.scan_length_mean,
        }
        if self.mix_schedule is not None:
            out["mix_schedule"] = self.mix_schedule.describe()
        return out


class KVWorkload:
    """Executable key-value workload: samples concrete queries over time.

    Args:
        spec: The declarative workload description.
        seed: Seed for the workload's private random generator.
        insert_key_counter: Starting value for sequentially generated
            insert keys; inserts append past the current key domain the
            way YCSB does, so the dataset grows over the run.
    """

    def __init__(
        self, spec: WorkloadSpec, seed: int = 0, insert_key_counter: float = 0.0
    ) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._insert_counter = float(insert_key_counter)

    @property
    def name(self) -> str:
        """Workload name from the spec."""
        return self.spec.name

    def next_query(self, t: float) -> KVQuery:
        """Generate the query arriving at virtual time ``t``.

        Inserts draw a fresh key from the *current* key distribution (so
        the dataset's shape follows the workload's drift), nudged by a
        tiny counter-derived offset to keep keys unique.
        """
        op = self.spec.mix_at(t).sample(self._rng)
        dist = self.spec.key_drift.at(t)
        key = float(dist.sample(self._rng, 1)[0])
        if op == KVOperation.INSERT:
            self._insert_counter += 1.0
            key += self._insert_counter * 1e-9
        scan_length = 0
        if op == KVOperation.SCAN:
            mean = max(1, self.spec.scan_length_mean)
            scan_length = int(self._rng.integers(1, 2 * mean + 1))
        return KVQuery(op=op, key=key, scan_length=scan_length, arrival_time=t)

    def generate(
        self, start: float, end: float, jitter: bool = True
    ) -> Sequence[KVQuery]:
        """Generate the full query stream for ``[start, end)``."""
        times = self.spec.arrivals.arrivals(self._rng, start, end, jitter=jitter)
        return [self.next_query(float(t)) for t in times]

    def sample_keys(self, t: float, n: int) -> np.ndarray:
        """Sample ``n`` access keys from the distribution active at ``t``.

        Used by similarity estimation and drift detection without
        disturbing the query stream's own generator state.
        """
        dist = self.spec.key_drift.at(t)
        probe_rng = np.random.default_rng(int(t * 1000) % (2**31))
        return dist.sample(probe_rng, n)


def simple_spec(
    name: str,
    distribution: Distribution,
    rate: float = 1000.0,
    read_fraction: float = 1.0,
    scan_length_mean: int = 0,
    scan_fraction: float = 0.0,
) -> WorkloadSpec:
    """Convenience constructor for a static workload spec.

    Builds a :class:`WorkloadSpec` with no drift and constant arrivals —
    the "traditional benchmark" shape used as the baseline everywhere.
    """
    proportions: Dict[KVOperation, float] = {}
    body = 1.0 - scan_fraction
    proportions[KVOperation.READ] = body * read_fraction
    if read_fraction < 1.0:
        proportions[KVOperation.UPDATE] = body * (1.0 - read_fraction)
    if scan_fraction > 0:
        proportions[KVOperation.SCAN] = scan_fraction
    return WorkloadSpec(
        name=name,
        mix=OperationMix(proportions),
        key_drift=NoDrift(distribution),
        arrivals=ConstantArrivals(rate),
        scan_length_mean=scan_length_mean,
    )
