"""Query-stream generators for key-value workloads.

A :class:`KVWorkload` combines three time-varying ingredients:

* an access-key :class:`~repro.workloads.drift.DriftModel` (which keys
  queries touch, and how that changes over time),
* an :class:`~repro.workloads.generators.OperationMix` (read / insert /
  update / scan / read-modify-write proportions), itself allowed to drift,
* an :class:`~repro.workloads.patterns.ArrivalProcess` (offered load).

The benchmark driver asks the workload for each query at its arrival
time, so every aspect of the stream can evolve during a single run —
the paper's central requirement (Lesson 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import Distribution
from repro.workloads.drift import DriftFactor, DriftModel, NoDrift
from repro.workloads.patterns import ArrivalProcess, ConstantArrivals


class KVOperation(enum.Enum):
    """Key-value operation types (YCSB vocabulary)."""

    READ = "read"
    INSERT = "insert"
    UPDATE = "update"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"


#: Fixed operation order defining the integer codes used by
#: :class:`QueryBatch` (``ops[i]`` indexes into this tuple).
KV_OPERATIONS: Tuple[KVOperation, ...] = tuple(KVOperation)
#: Operation → batch code (inverse of :data:`KV_OPERATIONS`).
KV_OP_CODES: Dict[KVOperation, int] = {op: i for i, op in enumerate(KV_OPERATIONS)}


@dataclass(frozen=True)
class KVQuery:
    """One key-value query instance.

    Attributes:
        op: Operation type.
        key: Target key (scan start key for scans).
        scan_length: Number of keys a scan covers (0 for non-scans).
        arrival_time: Virtual arrival timestamp assigned by the driver.
    """

    op: KVOperation
    key: float
    scan_length: int = 0
    arrival_time: float = 0.0


@dataclass
class QueryBatch:
    """Struct-of-arrays query stream: one row per query, arrival order.

    The batched pipeline's unit of exchange: the generator fills it in one
    vectorized pass, the driver slices it at tick/training boundaries, and
    SUTs consume whole slices through ``execute_batch``.

    Attributes:
        ops: int8 codes into :data:`KV_OPERATIONS`.
        keys: float64 target keys (scan start keys for scans).
        scan_lengths: int64 scan lengths (0 for non-scans).
        arrivals: float64 virtual arrival timestamps, ascending.
    """

    ops: np.ndarray
    keys: np.ndarray
    scan_lengths: np.ndarray
    arrivals: np.ndarray

    def __len__(self) -> int:
        return int(self.arrivals.size)

    @property
    def size(self) -> int:
        """Number of queries in the batch."""
        return int(self.arrivals.size)

    def query(self, i: int) -> KVQuery:
        """Materialize row ``i`` as a :class:`KVQuery` (compat view)."""
        return KVQuery(
            op=KV_OPERATIONS[int(self.ops[i])],
            key=float(self.keys[i]),
            scan_length=int(self.scan_lengths[i]),
            arrival_time=float(self.arrivals[i]),
        )

    def iter_queries(self) -> Iterator[KVQuery]:
        """Materialize every row as a :class:`KVQuery`, in order."""
        ops = self.ops.tolist()
        keys = self.keys.tolist()
        lengths = self.scan_lengths.tolist()
        arrivals = self.arrivals.tolist()
        for op, key, length, arrival in zip(ops, keys, lengths, arrivals):
            yield KVQuery(
                op=KV_OPERATIONS[op],
                key=key,
                scan_length=length,
                arrival_time=arrival,
            )

    def slice(self, a: int, b: int) -> "QueryBatch":
        """Zero-copy view of rows ``[a, b)``."""
        return QueryBatch(
            ops=self.ops[a:b],
            keys=self.keys[a:b],
            scan_lengths=self.scan_lengths[a:b],
            arrivals=self.arrivals[a:b],
        )


class OperationMix:
    """Proportions of each operation type, normalized to sum to 1."""

    def __init__(self, proportions: Dict[KVOperation, float]) -> None:
        """Normalize and store per-operation proportions."""
        if not proportions:
            raise ConfigurationError("operation mix cannot be empty")
        total = sum(proportions.values())
        if total <= 0 or any(p < 0 for p in proportions.values()):
            raise ConfigurationError("proportions must be non-negative, not all zero")
        self._ops = list(proportions.keys())
        self._probs = np.asarray(
            [proportions[op] / total for op in self._ops], dtype=np.float64
        )
        self._codes = np.asarray(
            [KV_OP_CODES[op] for op in self._ops], dtype=np.int8
        )

    @classmethod
    def read_only(cls) -> "OperationMix":
        """100% point reads."""
        return cls({KVOperation.READ: 1.0})

    @classmethod
    def read_write(cls, read_fraction: float) -> "OperationMix":
        """Reads + updates with the given read fraction."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0,1], got {read_fraction}"
            )
        return cls(
            {KVOperation.READ: read_fraction, KVOperation.UPDATE: 1.0 - read_fraction}
        )

    def sample(self, rng: np.random.Generator) -> KVOperation:
        """Draw one operation type."""
        return self._ops[int(rng.choice(len(self._ops), p=self._probs))]

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` operation codes (see :data:`KV_OPERATIONS`) at once."""
        idx = rng.choice(len(self._ops), size=n, p=self._probs)
        return self._codes[idx]

    def proportions(self) -> Dict[KVOperation, float]:
        """Return a copy of the normalized proportions."""
        return {op: float(p) for op, p in zip(self._ops, self._probs)}

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {op.value: float(p) for op, p in zip(self._ops, self._probs)}


class MixSchedule:
    """A piecewise-constant schedule of operation mixes over time.

    Models the paper's "evolving workload mixing" (it cites OLTP-Bench's
    support for exactly this): ``segments`` is a list of
    ``(start_time, mix)`` with ascending start times; the mix whose start
    most recently passed is active.
    """

    def __init__(self, segments: Sequence[Tuple[float, OperationMix]]) -> None:
        """Store ``(start_time, mix)`` entries (start times must ascend)."""
        if not segments:
            raise ConfigurationError("mix schedule needs at least one entry")
        starts = [s for s, _ in segments]
        if starts != sorted(starts):
            raise ConfigurationError("mix schedule start times must ascend")
        self._segments = [(float(s), m) for s, m in segments]
        self._starts = np.asarray([s for s, _ in self._segments], dtype=np.float64)

    @property
    def segments(self) -> List[Tuple[float, OperationMix]]:
        """The ``(start_time, mix)`` entries (a copy, in schedule order)."""
        return list(self._segments)

    def at(self, t: float) -> OperationMix:
        """The operation mix in effect at time ``t``."""
        active = self._segments[0][1]
        for start, mix in self._segments:
            if t >= start:
                active = mix
            else:
                break
        return active

    def indices_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at`: index of the active mix per timestamp."""
        idx = np.searchsorted(self._starts, times, side="right") - 1
        return np.clip(idx, 0, len(self._segments) - 1)

    def mix_for_index(self, i: int) -> OperationMix:
        """The mix at schedule position ``i`` (see :meth:`indices_at`)."""
        return self._segments[i][1]

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {
            "kind": "MixSchedule",
            "segments": [
                {"start": start, "mix": mix.describe()}
                for start, mix in self._segments
            ],
        }


@dataclass
class WorkloadSpec:
    """Declarative description of a workload, used for Φ similarity.

    ``signature()`` returns the set of structural features (operation
    types, scan characteristics, key-distribution kind/parameters) over
    which :func:`repro.metrics.similarity.jaccard_similarity` is computed
    — the paper's "Jaccard similarity between the sets of all subtrees of
    the query tree" adapted to key-value query templates.

    ``mix_schedule``, when set, overrides ``mix`` over time — the
    operation proportions themselves can evolve within one segment.
    """

    name: str
    mix: OperationMix
    key_drift: DriftModel
    arrivals: ArrivalProcess
    scan_length_mean: int = 0
    mix_schedule: Optional[MixSchedule] = None

    def mix_at(self, t: float) -> OperationMix:
        """The operation mix in effect at time ``t``."""
        if self.mix_schedule is not None:
            return self.mix_schedule.at(t)
        return self.mix

    def signature(self, at_time: float = 0.0) -> frozenset:
        """Structural feature set for workload similarity at ``at_time``."""
        feats = set()
        for op, p in self.mix_at(at_time).proportions().items():
            if p > 0:
                feats.add(("op", op.value))
                # Bucketized proportion: two workloads with 95% vs 50% reads
                # should not look identical.
                feats.add(("op-share", op.value, round(p * 10) / 10))
        dist = self.key_drift.at(at_time).describe()
        feats.add(("dist-kind", dist.get("kind")))
        for param in ("theta", "hot_fraction", "mean", "sigma"):
            if param in dist:
                feats.add(("dist-param", param, round(float(dist[param]), 1)))
        if self.scan_length_mean > 0:
            feats.add(("scan-length", min(1000, 10 ** len(str(self.scan_length_mean)))))
        return frozenset(feats)

    def describe(self) -> dict:
        """JSON-friendly description of the full spec."""
        out = {
            "name": self.name,
            "mix": self.mix.describe(),
            "key_drift": self.key_drift.describe(),
            "arrivals": self.arrivals.describe(),
            "scan_length_mean": self.scan_length_mean,
        }
        if self.mix_schedule is not None:
            out["mix_schedule"] = self.mix_schedule.describe()
        return out

    def build_workload(self, seed: int = 0) -> "KVWorkload":
        """Construct the executable workload for this spec.

        The driver's single workload-construction point: subclasses
        substitute their own executable (e.g.
        :class:`repro.workloads.trace.TraceWorkloadSpec` returns a
        replaying :class:`~repro.workloads.trace.TraceWorkload`). The
        base implementation builds a :class:`KVWorkload` exactly as the
        driver always did, so existing specs keep bit-identical streams.
        """
        return KVWorkload(self, seed=seed)


class KVWorkload:
    """Executable key-value workload: samples concrete queries over time.

    Args:
        spec: The declarative workload description.
        seed: Seed for the workload's private random generator.
        insert_key_counter: Starting value for sequentially generated
            insert keys; inserts append past the current key domain the
            way YCSB does, so the dataset grows over the run.
    """

    def __init__(
        self, spec: WorkloadSpec, seed: int = 0, insert_key_counter: float = 0.0
    ) -> None:
        """Bind the spec to a seeded private RNG and insert counter."""
        self.spec = spec
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._insert_counter = float(insert_key_counter)

    @property
    def name(self) -> str:
        """Workload name from the spec."""
        return self.spec.name

    def next_query(self, t: float) -> KVQuery:
        """Generate the query arriving at virtual time ``t``.

        Inserts draw a fresh key from the *current* key distribution (so
        the dataset's shape follows the workload's drift), nudged by a
        tiny counter-derived offset to keep keys unique.
        """
        op = self.spec.mix_at(t).sample(self._rng)
        dist = self.spec.key_drift.at(t)
        key = float(dist.sample(self._rng, 1)[0])
        if op == KVOperation.INSERT:
            self._insert_counter += 1.0
            key += self._insert_counter * 1e-9
        scan_length = 0
        if op == KVOperation.SCAN:
            mean = max(1, self.spec.scan_length_mean)
            scan_length = int(self._rng.integers(1, 2 * mean + 1))
        return KVQuery(op=op, key=key, scan_length=scan_length, arrival_time=t)

    def next_batch(self, times: np.ndarray) -> QueryBatch:
        """Generate the queries arriving at ``times`` in one vectorized pass.

        Struct-of-arrays counterpart to calling :meth:`next_query` per
        arrival. The RNG consumption order is fixed and documented so the
        stream at a given seed is stable: (1) operation codes, drawn in
        bulk per active-mix run; (2) keys, drawn via the drift model's
        bulk sampler; (3) insert-counter key offsets; (4) scan lengths,
        drawn in bulk for all scans.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        n = times.size
        ops = np.empty(n, dtype=np.int8)
        if n:
            if self.spec.mix_schedule is not None:
                idx = self.spec.mix_schedule.indices_at(times)
                cuts = np.concatenate(
                    [[0], np.flatnonzero(np.diff(idx)) + 1, [n]]
                )
                for a, b in zip(cuts[:-1], cuts[1:]):
                    mix = self.spec.mix_schedule.mix_for_index(int(idx[a]))
                    ops[a:b] = mix.sample_array(self._rng, int(b - a))
            else:
                ops[:] = self.spec.mix.sample_array(self._rng, n)
        keys = (
            self.spec.key_drift.sample_at(self._rng, times)
            if n
            else np.empty(0, dtype=np.float64)
        )
        keys = np.asarray(keys, dtype=np.float64)
        insert_mask = ops == KV_OP_CODES[KVOperation.INSERT]
        m = int(insert_mask.sum())
        if m:
            counters = self._insert_counter + np.arange(1, m + 1, dtype=np.float64)
            keys[insert_mask] += counters * 1e-9
            self._insert_counter += float(m)
        scan_lengths = np.zeros(n, dtype=np.int64)
        scan_mask = ops == KV_OP_CODES[KVOperation.SCAN]
        m_sc = int(scan_mask.sum())
        if m_sc:
            mean = max(1, self.spec.scan_length_mean)
            scan_lengths[scan_mask] = self._rng.integers(1, 2 * mean + 1, m_sc)
        return QueryBatch(
            ops=ops, keys=keys, scan_lengths=scan_lengths, arrivals=times
        )

    def generate(
        self, start: float, end: float, jitter: bool = True
    ) -> Sequence[KVQuery]:
        """Generate the full query stream for ``[start, end)``."""
        times = self.spec.arrivals.arrivals(self._rng, start, end, jitter=jitter)
        return list(self.next_batch(np.asarray(times)).iter_queries())

    def sample_keys(self, t: float, n: int) -> np.ndarray:
        """Sample ``n`` access keys from the distribution active at ``t``.

        Used by similarity estimation and drift detection without
        disturbing the query stream's own generator state. The probe RNG
        is seeded from a :class:`numpy.random.SeedSequence` that mixes the
        workload seed with the exact bit pattern of ``t``, so probes at
        sub-millisecond-spaced (or negative) times stay distinct while
        remaining reproducible.
        """
        dist = self.spec.key_drift.at(t)
        probe_rng = np.random.default_rng(
            np.random.SeedSequence(
                [self._seed & 0xFFFFFFFFFFFFFFFF, int(np.float64(t).view(np.uint64))]
            )
        )
        return dist.sample(probe_rng, n)


def simple_spec(
    name: str,
    distribution: Distribution,
    rate: float = 1000.0,
    read_fraction: float = 1.0,
    scan_length_mean: int = 0,
    scan_fraction: float = 0.0,
) -> WorkloadSpec:
    """Convenience constructor for a static workload spec.

    Builds a :class:`WorkloadSpec` with no drift and constant arrivals —
    the "traditional benchmark" shape used as the baseline everywhere.
    """
    proportions: Dict[KVOperation, float] = {}
    body = 1.0 - scan_fraction
    proportions[KVOperation.READ] = body * read_fraction
    if read_fraction < 1.0:
        proportions[KVOperation.UPDATE] = body * (1.0 - read_fraction)
    if scan_fraction > 0:
        proportions[KVOperation.SCAN] = scan_fraction
    return WorkloadSpec(
        name=name,
        mix=OperationMix(proportions),
        key_drift=NoDrift(distribution),
        arrivals=ConstantArrivals(rate),
        scan_length_mean=scan_length_mean,
    )


# -- drift-factor blending -----------------------------------------------------------
#
# The workload half of the NeurBench-style drift axis: a factor in [0, 1]
# linearly interpolates operation mixes (and mix schedules) between a
# base and a target. The endpoints return the *original objects* so the
# RNG stream — and therefore the realized query columns — is
# bit-identical to the unblended workload.


def blend_mixes(
    base: OperationMix, target: OperationMix, factor: float
) -> OperationMix:
    """Linearly interpolate two operation mixes.

    The blended proportion of each operation is
    ``(1 - factor) * base + factor * target``, iterated in
    :data:`KV_OPERATIONS` order (zero entries dropped) so equal inputs
    always produce the same internal operation order — the order feeds
    :meth:`OperationMix.sample_array`'s RNG mapping. ``factor <= 0`` /
    ``>= 1`` return ``base`` / ``target`` themselves (bit-identity).
    """
    factor = float(factor)
    if not 0.0 <= factor <= 1.0:
        raise ConfigurationError(f"blend factor must be in [0, 1], got {factor}")
    if factor <= 0.0:
        return base
    if factor >= 1.0:
        return target
    base_props = base.proportions()
    target_props = target.proportions()
    blended: Dict[KVOperation, float] = {}
    for op in KV_OPERATIONS:
        share = (1.0 - factor) * base_props.get(op, 0.0) + factor * target_props.get(
            op, 0.0
        )
        if share > 0.0:
            blended[op] = share
    return OperationMix(blended)


def blend_schedules(
    base: "WorkloadSpec", target: "WorkloadSpec", factor: float
) -> Optional[MixSchedule]:
    """Blend two specs' time-varying mixes into one schedule.

    ``None`` when neither spec has a schedule (the static mixes blend
    via :func:`blend_mixes` instead). Otherwise the blended schedule has
    an entry at every start time either schedule uses (plus 0.0), each
    blending the mixes active at that instant.
    """
    if base.mix_schedule is None and target.mix_schedule is None:
        return None
    starts = {0.0}
    for spec in (base, target):
        if spec.mix_schedule is not None:
            starts.update(start for start, _ in spec.mix_schedule.segments)
    return MixSchedule(
        [
            (start, blend_mixes(base.mix_at(start), target.mix_at(start), factor))
            for start in sorted(starts)
        ]
    )


def blend_specs(
    base: WorkloadSpec,
    target: WorkloadSpec,
    factor: float,
    name: Optional[str] = None,
) -> WorkloadSpec:
    """Interpolate two workload specs along the drift-factor axis.

    Blends both axes the paper's Φ machinery measures: the key
    distribution (via :class:`~repro.workloads.drift.DriftFactor` over
    the two specs' drift models) and the operation mix / mix schedule
    (via :func:`blend_mixes` / :func:`blend_schedules`), plus the scan
    length. Arrivals come from ``base`` — offered load is a separate
    axis, not part of drift intensity.

    ``factor <= 0`` / ``>= 1`` return the ``base`` / ``target`` objects
    themselves (``name`` is ignored there) so endpoint scenarios are
    bit-identical to the unblended originals.
    """
    factor = float(factor)
    if not 0.0 <= factor <= 1.0:
        raise ConfigurationError(f"blend factor must be in [0, 1], got {factor}")
    if factor <= 0.0:
        return base
    if factor >= 1.0:
        return target
    scan_mean = (1.0 - factor) * base.scan_length_mean + factor * target.scan_length_mean
    return WorkloadSpec(
        name=name or f"{base.name}~{target.name}@{factor:g}",
        mix=blend_mixes(base.mix, target.mix, factor),
        key_drift=DriftFactor(base.key_drift, target.key_drift, factor),
        arrivals=base.arrivals,
        scan_length_mean=int(round(scan_mean)),
        mix_schedule=blend_schedules(base, target, factor),
    )
