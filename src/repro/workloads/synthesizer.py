"""Synthetic-generator fitting (§V-C of the paper).

The paper proposes "automatically generating synthetic datasets and
workloads from real-world deployments": when production data cannot be
shared, fit a generator that reproduces its distributional shape. This
module implements that idea for numeric key columns:

* :func:`fit_distribution` fits a
  :class:`~repro.workloads.distributions.PiecewiseDistribution` (adaptive
  histogram) to a sample, preserving the empirical shape.
* :class:`SynthesisReport` quantifies fidelity (KS distance between the
  sample and the fitted generator's output).
* :func:`fit_workload` fits a full :class:`WorkloadSpec` from an observed
  query trace (keys + timestamps): key distribution plus a piecewise-
  constant arrival-rate estimate.

String-valued columns (the paper's email-address example) are handled by
:mod:`repro.data.email_gen`, which maps strings through an order-
preserving numeric encoding and back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import Distribution, PiecewiseDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import OperationMix, WorkloadSpec
from repro.workloads.patterns import ArrivalProcess, CompositeArrivals, ConstantArrivals


@dataclass(frozen=True)
class SynthesisReport:
    """Fidelity report for a fitted generator.

    Attributes:
        ks_distance: Two-sample KS statistic between the original sample
            and a fresh draw from the fitted generator (lower is better).
        buckets: Histogram resolution used.
        sample_size: Size of the original sample.
    """

    ks_distance: float
    buckets: int
    sample_size: int

    @property
    def high_fidelity(self) -> bool:
        """Heuristic pass/fail at KS <= 0.05."""
        return self.ks_distance <= 0.05


def fit_distribution(
    sample: Sequence[float], buckets: int = 256
) -> PiecewiseDistribution:
    """Fit a histogram-shaped distribution to ``sample``.

    The fitted distribution's domain is the sample's observed range,
    slightly widened so boundary keys stay in-domain.
    """
    arr = np.asarray(list(sample), dtype=np.float64)
    if arr.size < 2:
        raise ConfigurationError("need at least 2 points to fit a distribution")
    if not np.isfinite(arr).all():
        raise ConfigurationError(
            "cannot fit a distribution to non-finite values (NaN/inf in sample)"
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        hi = lo + 1.0
    pad = (hi - lo) * 1e-6
    hist, _ = np.histogram(arr, bins=buckets, range=(lo, hi))
    weights = hist.astype(np.float64)
    if weights.sum() <= 0:
        weights = np.ones(buckets)
    # Laplace smoothing keeps empty buckets reachable (generalization).
    weights = weights + 0.5
    return PiecewiseDistribution(lo - pad, hi + pad, weights)


def evaluate_fit(
    sample: Sequence[float],
    fitted: Distribution,
    buckets: int = 256,
    draw: int = 10_000,
    seed: int = 0,
) -> SynthesisReport:
    """Measure how faithfully ``fitted`` reproduces ``sample``."""
    arr = np.sort(np.asarray(list(sample), dtype=np.float64))
    rng = np.random.default_rng(seed)
    synth = np.sort(fitted.sample(rng, draw))
    grid = np.concatenate([arr, synth])
    grid.sort()
    cdf_a = np.searchsorted(arr, grid, side="right") / arr.size
    cdf_b = np.searchsorted(synth, grid, side="right") / synth.size
    ks = float(np.abs(cdf_a - cdf_b).max())
    return SynthesisReport(ks_distance=ks, buckets=buckets, sample_size=arr.size)


def fit_arrivals(
    timestamps: Sequence[float], window: float = 10.0
) -> ArrivalProcess:
    """Fit a piecewise-constant arrival process to observed timestamps.

    Counts arrivals per ``window``-second slice and reproduces each
    slice's mean rate; captures diurnal patterns and bursts at the window
    resolution.
    """
    times = np.sort(np.asarray(list(timestamps), dtype=np.float64))
    if times.size == 0:
        return ConstantArrivals(0.0)
    if window <= 0:
        raise ConfigurationError(f"window must be > 0, got {window}")
    start, end = float(times[0]), float(times[-1])
    if end <= start:
        return ConstantArrivals(float(times.size))
    edges = np.arange(start, end + window, window)
    counts, _ = np.histogram(times, bins=edges)
    segments: list = []
    for i, count in enumerate(counts):
        seg_start = float(edges[i] - start)
        rate = float(count) / window
        segments.append((seg_start, ConstantArrivals(rate)))
    return CompositeArrivals(segments)


def fit_workload(
    name: str,
    keys: Sequence[float],
    timestamps: Optional[Sequence[float]] = None,
    read_fraction: float = 1.0,
    buckets: int = 256,
    rate_window: float = 10.0,
    mix: Optional[OperationMix] = None,
    scan_length_mean: int = 0,
) -> Tuple[WorkloadSpec, SynthesisReport]:
    """Fit a complete synthetic workload to an observed trace.

    Args:
        name: Name for the synthesized workload.
        keys: Observed access keys (at least two rows).
        timestamps: Observed arrival times (optional; defaults to a
            constant rate matching the trace volume over 60s).
        read_fraction: Observed read share of the trace (ignored when
            ``mix`` is given).
        buckets: Key-histogram resolution.
        rate_window: Arrival-rate estimation window in seconds.
        mix: Observed operation mix (e.g. a replayed trace's empirical
            op histogram); ``None`` falls back to a read/update mix at
            ``read_fraction``.
        scan_length_mean: Observed mean scan length for the fitted spec.

    Returns:
        (fitted spec, fidelity report for the key distribution).

    Raises:
        ConfigurationError: Empty or single-row traces (a distribution
            cannot be fitted to fewer than two observations), or
            non-finite keys.
    """
    key_arr = np.asarray(list(keys), dtype=np.float64)
    if key_arr.size == 0:
        raise ConfigurationError(
            "cannot fit a workload to an empty trace (no keys observed)"
        )
    if key_arr.size == 1:
        raise ConfigurationError(
            "cannot fit a workload to a single-row trace; "
            "need at least 2 observations"
        )
    dist = fit_distribution(key_arr, buckets=buckets)
    report = evaluate_fit(key_arr, dist, buckets=buckets)
    if timestamps is not None:
        arrivals = fit_arrivals(timestamps, window=rate_window)
    else:
        arrivals = ConstantArrivals(key_arr.size / 60.0)
    spec = WorkloadSpec(
        name=name,
        mix=mix if mix is not None else OperationMix.read_write(read_fraction),
        key_drift=NoDrift(dist),
        arrivals=arrivals,
        scan_length_mean=int(scan_length_mean),
    )
    return spec, report
