"""Trace ingestion and replay (§V-C, ROADMAP item 3 — the Redbench direction).

The paper argues a learned-systems benchmark must ingest *real*
deployments, not only parametric generators. This module provides the
whole round trip:

* a versioned on-disk **trace format** (CSV, and Parquet when pyarrow is
  available) with a validating loader — see :data:`TRACE_FORMAT_VERSION`
  and ``docs/trace-replay.md`` for the column spec;
* :class:`QueryTrace`, the in-memory columnar trace with content
  hashing, rebasing, time-dilation, and truncation;
* :class:`TraceArrivalProcess` and :class:`TraceWorkload`, which replay
  the recorded stream through the driver **bit-identically** on the
  scalar, batched, and streaming paths (the trace rows *are* the query
  columns — no RNG is consumed);
* :class:`TraceWorkloadSpec` + :func:`trace_spec`, the declarative
  wrapper whose ``describe()`` embeds the trace content hash so scenario
  fingerprints (and every cache key derived from them) change whenever
  the trace content does;
* the round-trip closer: :func:`fit_trace_workload` fits the
  §V-C synthesizer to a loaded trace, and :func:`round_trip` scores the
  fitted generator against the original stream as a
  :class:`RoundTripReport` (two-sample KS over keys, total variation
  over op histograms, arrival-rate error) using the Fig 1a similarity
  kernels in :mod:`repro.metrics.similarity`.

Replay determinism: a :class:`TraceWorkload` consumes trace rows
positionally and ignores its RNG entirely, so replaying the same trace
at the same dilation always produces byte-identical query columns —
the property the golden tests pin.
"""

from __future__ import annotations

import csv
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DriverError, TraceFormatError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import (
    KV_OP_CODES,
    KV_OPERATIONS,
    KVOperation,
    KVQuery,
    KVWorkload,
    OperationMix,
    QueryBatch,
    WorkloadSpec,
)
from repro.workloads.patterns import ArrivalProcess

#: On-disk trace format version this build reads and writes. Bumped on
#: any incompatible column/semantics change; the loader rejects traces
#: declaring a newer version.
TRACE_FORMAT_VERSION = 1

#: CSV header of a v1 trace (``scan_length`` is optional on load).
TRACE_COLUMNS = ("timestamp", "op", "key", "scan_length")

_VERSION_RE = re.compile(r"#\s*repro-trace\s+v(\d+)\s*$")
_OP_BY_NAME = {op.value: code for op, code in KV_OP_CODES.items()}


@dataclass(eq=False)
class QueryTrace:
    """A recorded query stream in columnar form (one row per query).

    Attributes:
        timestamps: float64 arrival times in seconds, non-decreasing.
        ops: int8 operation codes into
            :data:`~repro.workloads.generators.KV_OPERATIONS`.
        keys: float64 target keys (scan start keys for scans).
        scan_lengths: int64 scan lengths (0 for non-scans).
        name: Display name (defaults to the source file stem on load).
        source: Provenance string (file path); informational only — it
            does **not** enter :meth:`describe` or the content hash, so
            the same content loaded from two paths is one cache cell.
    """

    timestamps: np.ndarray
    ops: np.ndarray
    keys: np.ndarray
    scan_lengths: np.ndarray
    name: str = "trace"
    source: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        self.timestamps = np.ascontiguousarray(self.timestamps, dtype=np.float64)
        self.ops = np.ascontiguousarray(self.ops, dtype=np.int8)
        self.keys = np.ascontiguousarray(self.keys, dtype=np.float64)
        self.scan_lengths = np.ascontiguousarray(self.scan_lengths, dtype=np.int64)
        n = self.timestamps.size
        if n == 0:
            raise TraceFormatError("a trace needs at least one row")
        for label, arr in (
            ("ops", self.ops),
            ("keys", self.keys),
            ("scan_lengths", self.scan_lengths),
        ):
            if arr.size != n:
                raise TraceFormatError(
                    f"column length mismatch: {n} timestamps vs "
                    f"{arr.size} {label}"
                )
        if not np.isfinite(self.timestamps).all():
            raise TraceFormatError("timestamps must be finite")
        if not np.isfinite(self.keys).all():
            raise TraceFormatError("keys must be finite")
        if np.any(np.diff(self.timestamps) < 0):
            bad = int(np.flatnonzero(np.diff(self.timestamps) < 0)[0]) + 1
            raise TraceFormatError(
                f"timestamps must be non-decreasing (row {bad} goes backwards)"
            )
        if np.any((self.ops < 0) | (self.ops >= len(KV_OPERATIONS))):
            raise TraceFormatError(
                f"op codes must be in [0, {len(KV_OPERATIONS)}), see KV_OPERATIONS"
            )
        if np.any(self.scan_lengths < 0):
            raise TraceFormatError("scan lengths must be >= 0")

    def __len__(self) -> int:
        return int(self.timestamps.size)

    @property
    def n(self) -> int:
        """Number of recorded queries."""
        return int(self.timestamps.size)

    @property
    def span(self) -> float:
        """Seconds between the first and last recorded arrival."""
        return float(self.timestamps[-1] - self.timestamps[0])

    def content_hash(self) -> str:
        """SHA-256 over the format version and all four column buffers.

        Any change to any row (or the format version) changes the hash;
        ``name``/``source`` do not participate, so renaming a file never
        invalidates caches.
        """
        digest = hashlib.sha256()
        digest.update(f"repro-trace-v{TRACE_FORMAT_VERSION}".encode())
        for arr in (self.timestamps, self.ops, self.keys, self.scan_lengths):
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def op_histogram(self) -> Dict[str, int]:
        """Per-operation row counts keyed by operation name."""
        counts = np.bincount(
            self.ops.astype(np.int64), minlength=len(KV_OPERATIONS)
        )
        return {
            op.value: int(count)
            for op, count in zip(KV_OPERATIONS, counts)
            if count
        }

    def describe(self) -> dict:
        """JSON-friendly content summary (feeds scenario fingerprints)."""
        return {
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "n": self.n,
            "span": self.span,
            "content_hash": self.content_hash(),
            "ops": self.op_histogram(),
        }

    def rebased(self) -> "QueryTrace":
        """The same trace with timestamps shifted to start at 0."""
        if float(self.timestamps[0]) == 0.0:
            return self
        return QueryTrace(
            timestamps=self.timestamps - self.timestamps[0],
            ops=self.ops,
            keys=self.keys,
            scan_lengths=self.scan_lengths,
            name=self.name,
            source=self.source,
        )

    def dilated(self, factor: float) -> "QueryTrace":
        """Scale inter-arrival times by ``factor`` (time dilation).

        ``factor > 1`` stretches the trace (slower replay, lower offered
        rate); ``factor < 1`` compresses it. The first timestamp is the
        fixed point, so a rebased trace stays rebased and
        ``dilated(f).timestamps - start == f * (timestamps - start)``
        exactly (elementwise float product — the dilation-linearity
        property tests rely on this). ``factor == 1`` returns ``self``.
        """
        factor = float(factor)
        if not factor > 0.0 or not np.isfinite(factor):
            raise ConfigurationError(
                f"dilation factor must be finite and > 0, got {factor}"
            )
        if factor == 1.0:
            return self
        start = self.timestamps[0]
        return QueryTrace(
            timestamps=start + (self.timestamps - start) * factor,
            ops=self.ops,
            keys=self.keys,
            scan_lengths=self.scan_lengths,
            name=f"{self.name}@x{factor:g}",
            source=self.source,
        )

    def truncated(
        self,
        max_queries: Optional[int] = None,
        max_span: Optional[float] = None,
    ) -> "QueryTrace":
        """Prefix of the trace: at most ``max_queries`` rows and/or the
        rows arriving within ``max_span`` seconds of the first arrival.

        Returns ``self`` when no limit bites.
        """
        n = self.n
        if max_queries is not None:
            if max_queries < 1:
                raise ConfigurationError(
                    f"max_queries must be >= 1, got {max_queries}"
                )
            n = min(n, int(max_queries))
        if max_span is not None:
            if max_span < 0:
                raise ConfigurationError(
                    f"max_span must be >= 0, got {max_span}"
                )
            cutoff = float(self.timestamps[0]) + float(max_span)
            n = min(n, int(np.searchsorted(self.timestamps, cutoff, side="right")))
        if n >= self.n:
            return self
        if n == 0:
            raise ConfigurationError(
                "truncation removed every row; widen max_span"
            )
        return QueryTrace(
            timestamps=self.timestamps[:n],
            ops=self.ops[:n],
            keys=self.keys[:n],
            scan_lengths=self.scan_lengths[:n],
            name=self.name,
            source=self.source,
        )

    def to_batch(self) -> QueryBatch:
        """Zero-copy :class:`~repro.workloads.generators.QueryBatch` view."""
        return QueryBatch(
            ops=self.ops,
            keys=self.keys,
            scan_lengths=self.scan_lengths,
            arrivals=self.timestamps,
        )


def replay_duration(trace: QueryTrace) -> float:
    """Segment duration that covers every arrival of a rebased ``trace``.

    Segments generate arrivals over the half-open window ``[0,
    duration)``, so the duration must exceed the last timestamp:
    ``floor(span) + 1`` is the smallest whole-second window that does
    (whole seconds keep the driver's tick stream aligned with the usual
    scenarios).
    """
    return float(np.floor(trace.span)) + 1.0


# -- on-disk format ------------------------------------------------------------------


def _parse_version(line: str, path: Path) -> int:
    match = _VERSION_RE.match(line.strip())
    if not match:
        raise TraceFormatError(
            f"{path}: unrecognized version comment {line.strip()!r}; "
            f"expected '# repro-trace v{TRACE_FORMAT_VERSION}'"
        )
    return int(match.group(1))


def _load_csv(path: Path, name: str) -> QueryTrace:
    """Parse a v1 CSV trace (see ``docs/trace-replay.md`` for the spec)."""
    version = TRACE_FORMAT_VERSION
    with open(path, newline="") as handle:
        first = handle.readline()
        if first.lstrip().startswith("#"):
            version = _parse_version(first, path)
            header_line = handle.readline()
        else:
            header_line = first
        if version > TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: trace format v{version} is newer than this "
                f"build's v{TRACE_FORMAT_VERSION}"
            )
        header = [col.strip() for col in header_line.strip().split(",")]
        required = list(TRACE_COLUMNS[:3])
        if header[: len(required)] != required or not set(header) <= set(
            TRACE_COLUMNS
        ):
            raise TraceFormatError(
                f"{path}: bad header {header}; a v1 trace needs columns "
                f"{', '.join(TRACE_COLUMNS[:3])}[, scan_length]"
            )
        has_scan = "scan_length" in header
        timestamps, ops, keys, scans = [], [], [], []
        for row_no, row in enumerate(csv.reader(handle), start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != len(header):
                raise TraceFormatError(
                    f"{path}: row {row_no} has {len(row)} fields, "
                    f"expected {len(header)}"
                )
            try:
                timestamps.append(float(row[0]))
                keys.append(float(row[2]))
                scans.append(int(row[3]) if has_scan else 0)
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}: row {row_no}: {exc}"
                ) from None
            op_name = row[1].strip()
            if op_name not in _OP_BY_NAME:
                raise TraceFormatError(
                    f"{path}: row {row_no}: unknown op {op_name!r}; "
                    f"expected one of {sorted(_OP_BY_NAME)}"
                )
            ops.append(_OP_BY_NAME[op_name])
    if not timestamps:
        raise TraceFormatError(f"{path}: trace has no data rows")
    return QueryTrace(
        timestamps=np.asarray(timestamps, dtype=np.float64),
        ops=np.asarray(ops, dtype=np.int8),
        keys=np.asarray(keys, dtype=np.float64),
        scan_lengths=np.asarray(scans, dtype=np.int64),
        name=name,
        source=str(path),
    )


def _save_csv(trace: QueryTrace, path: Path) -> None:
    """Write a v1 CSV trace (full-precision ``repr`` floats)."""
    with open(path, "w", newline="") as handle:
        handle.write(f"# repro-trace v{TRACE_FORMAT_VERSION}\n")
        handle.write(",".join(TRACE_COLUMNS) + "\n")
        writer = csv.writer(handle)
        for t, op, key, scan in zip(
            trace.timestamps.tolist(),
            trace.ops.tolist(),
            trace.keys.tolist(),
            trace.scan_lengths.tolist(),
        ):
            writer.writerow([repr(t), KV_OPERATIONS[op].value, repr(key), scan])


def _require_pyarrow():
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet as pq
    except ImportError:
        raise ConfigurationError(
            "parquet traces require pyarrow, which is not installed; "
            "use the CSV format instead"
        ) from None
    return pq


def _load_parquet(path: Path, name: str) -> QueryTrace:
    """Parse a Parquet trace (requires pyarrow)."""
    pq = _require_pyarrow()
    table = pq.read_table(path)
    meta = table.schema.metadata or {}
    raw = meta.get(b"repro_trace_version")
    if raw is not None and int(raw) > TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: trace format v{int(raw)} is newer than this "
            f"build's v{TRACE_FORMAT_VERSION}"
        )
    columns = set(table.column_names)
    if not {"timestamp", "op", "key"} <= columns:
        raise TraceFormatError(
            f"{path}: parquet trace needs columns timestamp, op, key"
        )
    ops = []
    for op_name in table.column("op").to_pylist():
        if op_name not in _OP_BY_NAME:
            raise TraceFormatError(f"{path}: unknown op {op_name!r}")
        ops.append(_OP_BY_NAME[op_name])
    scans = (
        np.asarray(table.column("scan_length").to_pylist(), dtype=np.int64)
        if "scan_length" in columns
        else np.zeros(len(ops), dtype=np.int64)
    )
    return QueryTrace(
        timestamps=np.asarray(table.column("timestamp").to_pylist(), dtype=np.float64),
        ops=np.asarray(ops, dtype=np.int8),
        keys=np.asarray(table.column("key").to_pylist(), dtype=np.float64),
        scan_lengths=scans,
        name=name,
        source=str(path),
    )


def _save_parquet(trace: QueryTrace, path: Path) -> None:
    """Write a Parquet trace (requires pyarrow)."""
    pq = _require_pyarrow()
    import pyarrow as pa

    table = pa.table(
        {
            "timestamp": pa.array(trace.timestamps, type=pa.float64()),
            "op": pa.array([KV_OPERATIONS[c].value for c in trace.ops.tolist()]),
            "key": pa.array(trace.keys, type=pa.float64()),
            "scan_length": pa.array(trace.scan_lengths, type=pa.int64()),
        }
    )
    table = table.replace_schema_metadata(
        {b"repro_trace_version": str(TRACE_FORMAT_VERSION).encode()}
    )
    pq.write_table(table, path)


def _format_for(path: Path, fmt: Optional[str]) -> str:
    if fmt is not None:
        if fmt not in ("csv", "parquet"):
            raise ConfigurationError(
                f"unknown trace format {fmt!r}; expected 'csv' or 'parquet'"
            )
        return fmt
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return "csv"
    if suffix in (".parquet", ".pq"):
        return "parquet"
    raise ConfigurationError(
        f"cannot infer trace format from {path.name!r}; "
        "use a .csv/.parquet suffix or pass fmt="
    )


def load_trace(
    path: Union[str, Path],
    fmt: Optional[str] = None,
    name: Optional[str] = None,
) -> QueryTrace:
    """Load and validate an on-disk trace.

    Args:
        path: Trace file (``.csv``, ``.parquet``, or ``.pq``).
        fmt: Explicit format override (``"csv"`` / ``"parquet"``).
        name: Trace display name (default: the file stem).

    Raises:
        TraceFormatError: Malformed file, unknown op, non-monotone or
            non-finite values, or a newer format version.
        ConfigurationError: Unknown format, or Parquet without pyarrow.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace file not found: {path}")
    trace_name = name or path.stem
    if _format_for(path, fmt) == "csv":
        return _load_csv(path, trace_name)
    return _load_parquet(path, trace_name)


def save_trace(
    trace: QueryTrace, path: Union[str, Path], fmt: Optional[str] = None
) -> Path:
    """Write ``trace`` to disk in the versioned format; returns the path.

    CSV writes full-precision ``repr`` floats, so a save/load round trip
    reproduces every column bit-for-bit (the hypothesis tests pin this).
    """
    path = Path(path)
    if _format_for(path, fmt) == "csv":
        _save_csv(trace, path)
    else:
        _save_parquet(trace, path)
    return path


# -- replay --------------------------------------------------------------------------


class TraceArrivalProcess(ArrivalProcess):
    """Arrival process that replays a trace's recorded timestamps.

    Unlike the parametric processes, :meth:`arrivals` ignores the RNG and
    the jitter flag entirely — the recorded timestamps inside the
    requested window *are* the arrivals, which is what makes replay
    deterministic and bit-identical across driver paths.
    """

    def __init__(self, trace: QueryTrace) -> None:
        """Bind the process to ``trace`` (timestamps used as recorded)."""
        self._trace = trace
        self._times = trace.timestamps

    @property
    def trace(self) -> QueryTrace:
        """The replayed trace."""
        return self._trace

    def rate(self, t: float) -> float:
        """Empirical rate: recorded arrivals in ``[t, t + 1)``."""
        lo = np.searchsorted(self._times, t, side="left")
        hi = np.searchsorted(self._times, t + 1.0, side="left")
        return float(hi - lo)

    def arrivals(
        self, rng: np.random.Generator, start: float, end: float, jitter: bool = True
    ) -> np.ndarray:
        """The recorded timestamps in ``[start, end)`` (rng/jitter unused)."""
        if end <= start:
            return np.empty(0, dtype=np.float64)
        lo = np.searchsorted(self._times, start, side="left")
        hi = np.searchsorted(self._times, end, side="left")
        return self._times[lo:hi].copy()

    def projected_count(self, start: float, end: float) -> int:
        """Exact number of recorded arrivals in ``[start, end)``."""
        if end <= start:
            return 0
        lo = np.searchsorted(self._times, start, side="left")
        hi = np.searchsorted(self._times, end, side="left")
        return int(hi - lo)

    def describe(self) -> dict:
        """JSON-friendly description (carries the trace content hash)."""
        return {
            "kind": "TraceArrivalProcess",
            "n": self._trace.n,
            "span": self._trace.span,
            "content_hash": self._trace.content_hash(),
        }


class TraceWorkload(KVWorkload):
    """Executable workload that replays trace rows positionally.

    Each :meth:`next_batch` call consumes the next ``len(times)`` rows of
    the trace front-to-back — the driver always asks for exactly the
    arrivals the :class:`TraceArrivalProcess` produced, so row *i* of the
    trace becomes query *i* of the stream. No RNG is consumed: replay is
    deterministic at any seed, which is what keeps the scalar, batched,
    and streaming paths bit-identical (truncated runs consume a prefix;
    sharded runs slice the full batch after generation).
    """

    def __init__(self, spec: "TraceWorkloadSpec", seed: int = 0) -> None:
        """Bind the replay cursor to the spec's trace."""
        if spec.trace is None:
            raise ConfigurationError("TraceWorkload needs a spec with a trace")
        super().__init__(spec, seed=seed)
        self._trace = spec.trace
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Number of trace rows consumed so far."""
        return self._cursor

    def next_batch(self, times: np.ndarray) -> QueryBatch:
        """Replay the next ``len(times)`` trace rows as a batch.

        ``times`` (the driver's arrival array, already offset to
        scenario coordinates) becomes the batch's arrival column; ops,
        keys, and scan lengths come verbatim from the trace rows.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        lo = self._cursor
        hi = lo + times.size
        if hi > self._trace.n:
            raise DriverError(
                f"trace {self._trace.name!r} exhausted: replay asked for "
                f"rows [{lo}, {hi}) of {self._trace.n}"
            )
        self._cursor = hi
        return QueryBatch(
            ops=self._trace.ops[lo:hi],
            keys=self._trace.keys[lo:hi],
            scan_lengths=self._trace.scan_lengths[lo:hi],
            arrivals=times,
        )

    def next_query(self, t: float) -> KVQuery:
        """Replay the next single trace row (advances the cursor)."""
        return self.next_batch(np.asarray([t], dtype=np.float64)).query(0)

    def sample_keys(self, t: float, n: int) -> np.ndarray:
        """Probe sample: draw ``n`` keys from the trace's empirical keys.

        Uses the same time-mixed probe RNG scheme as the parametric
        workload, so probes never disturb the replay cursor.
        """
        probe_rng = np.random.default_rng(
            np.random.SeedSequence(
                [self._seed & 0xFFFFFFFFFFFFFFFF, int(np.float64(t).view(np.uint64))]
            )
        )
        return probe_rng.choice(self._trace.keys, size=n, replace=True)


@dataclass
class TraceWorkloadSpec(WorkloadSpec):
    """A :class:`WorkloadSpec` backed by a recorded trace.

    The declarative fields (mix, key drift, arrivals, scan length) are
    the trace's *empirical* summaries — built by :func:`trace_spec` — so
    Φ similarity and quality scoring treat a replayed trace like any
    other workload. :meth:`build_workload` substitutes the replaying
    :class:`TraceWorkload`, and :meth:`describe` embeds the trace
    content summary, putting the content hash into every scenario
    fingerprint and cache key built from this spec.
    """

    trace: Optional[QueryTrace] = None

    def build_workload(self, seed: int = 0) -> KVWorkload:
        """Construct the replaying executable workload."""
        return TraceWorkload(self, seed=seed)

    def describe(self) -> dict:
        """Parent description plus the trace content summary."""
        out = super().describe()
        if self.trace is not None:
            out["trace"] = self.trace.describe()
        return out


def trace_spec(trace: QueryTrace, name: Optional[str] = None) -> TraceWorkloadSpec:
    """Build the declarative replay spec for ``trace``.

    The empirical summaries: operation mix from the trace's op
    histogram, key "distribution" as a fitted histogram over the
    recorded keys (uniform for degenerate single-point traces), arrivals
    from :class:`TraceArrivalProcess`, and the mean recorded scan
    length. Replay itself uses the raw rows (see
    :class:`TraceWorkload`); the summaries exist for Φ signatures and
    fingerprints.
    """
    counts = trace.op_histogram()
    mix = OperationMix(
        {KVOperation(op_name): float(c) for op_name, c in counts.items()}
    )
    lo, hi = float(trace.keys.min()), float(trace.keys.max())
    if trace.n >= 2 and hi > lo:
        from repro.workloads.synthesizer import fit_distribution

        dist = fit_distribution(trace.keys, buckets=min(256, trace.n))
    else:
        dist = UniformDistribution(lo, hi + 1.0)
    scan_mask = trace.ops == KV_OP_CODES[KVOperation.SCAN]
    scan_mean = (
        int(round(float(trace.scan_lengths[scan_mask].mean())))
        if scan_mask.any()
        else 0
    )
    return TraceWorkloadSpec(
        name=name or f"replay:{trace.name}",
        mix=mix,
        key_drift=NoDrift(dist),
        arrivals=TraceArrivalProcess(trace),
        scan_length_mean=scan_mean,
        trace=trace,
    )


# -- synthesizer round trip ----------------------------------------------------------


def fit_trace_workload(
    trace: QueryTrace,
    name: Optional[str] = None,
    buckets: int = 256,
    rate_window: float = 10.0,
):
    """Fit the §V-C synthesizer to a loaded trace.

    Rebases the trace and hands its keys and timestamps to
    :func:`repro.workloads.synthesizer.fit_workload`, with the trace's
    empirical operation mix and mean scan length. Returns the fitted
    parametric :class:`~repro.workloads.generators.WorkloadSpec` (a
    shareable generator — no trace data embedded) and its
    :class:`~repro.workloads.synthesizer.SynthesisReport`.
    """
    from repro.workloads.synthesizer import fit_workload

    rebased = trace.rebased()
    counts = rebased.op_histogram()
    mix = OperationMix(
        {KVOperation(op_name): float(c) for op_name, c in counts.items()}
    )
    scan_mask = rebased.ops == KV_OP_CODES[KVOperation.SCAN]
    scan_mean = (
        int(round(float(rebased.scan_lengths[scan_mask].mean())))
        if scan_mask.any()
        else 0
    )
    return fit_workload(
        name or f"{trace.name}-fit",
        keys=rebased.keys,
        timestamps=rebased.timestamps,
        buckets=buckets,
        rate_window=rate_window,
        mix=mix,
        scan_length_mean=scan_mean,
    )


@dataclass(frozen=True)
class RoundTripReport:
    """Generator-vs-trace divergence after a synthesizer round trip.

    All divergences compare the *original* trace stream against a fresh
    stream drawn from the fitted generator, using the Fig 1a similarity
    kernels. Lower is better for all three.

    Attributes:
        ks_keys: Two-sample KS statistic between recorded and synthetic
            key columns (``phi_data`` of
            :func:`repro.metrics.similarity.realized_stream_phi`).
        tv_ops: Total-variation distance between the op histograms
            (``phi_workload`` of the same kernel).
        arrival_rate_error: L1 error between per-window arrival counts,
            normalized by the trace length (0 = rates match exactly).
        phi: Mean of ``ks_keys`` and ``tv_ops`` — the stream Φ.
        key_fit_ks: Fit-time KS of the key distribution alone (the
            :class:`~repro.workloads.synthesizer.SynthesisReport` value).
        n_trace: Rows in the original trace.
        n_synthetic: Queries the fitted generator produced.
        seed: Seed used for the synthetic draw.
        rate_window: Window (seconds) for the arrival-rate comparison.
    """

    ks_keys: float
    tv_ops: float
    arrival_rate_error: float
    phi: float
    key_fit_ks: float
    n_trace: int
    n_synthetic: int
    seed: int
    rate_window: float

    @property
    def high_fidelity(self) -> bool:
        """Heuristic pass: KS and TV at most 0.05, rate error at most 0.1."""
        return (
            self.ks_keys <= 0.05
            and self.tv_ops <= 0.05
            and self.arrival_rate_error <= 0.1
        )

    def to_dict(self) -> dict:
        """JSON-friendly payload (what the golden test pins)."""
        return {
            "ks_keys": self.ks_keys,
            "tv_ops": self.tv_ops,
            "arrival_rate_error": self.arrival_rate_error,
            "phi": self.phi,
            "key_fit_ks": self.key_fit_ks,
            "n_trace": self.n_trace,
            "n_synthetic": self.n_synthetic,
            "seed": self.seed,
            "rate_window": self.rate_window,
            "high_fidelity": self.high_fidelity,
        }


def round_trip(
    trace: QueryTrace,
    name: Optional[str] = None,
    seed: int = 0,
    buckets: int = 256,
    rate_window: float = 10.0,
) -> Tuple[WorkloadSpec, "SynthesisReport", RoundTripReport]:
    """Close the loop: fit a generator to ``trace`` and score it.

    Fits via :func:`fit_trace_workload`, draws a synthetic stream from
    the fitted spec over the trace's replay window (deterministic at
    ``seed``, jitter off), and scores generator-vs-trace divergence with
    :func:`repro.metrics.similarity.realized_stream_phi` plus a windowed
    arrival-rate error. Deterministic for fixed inputs — every float in
    the returned :class:`RoundTripReport` is goldenable.

    Returns:
        ``(fitted spec, synthesis report, round-trip report)``.
    """
    from repro.metrics.similarity import realized_stream_phi

    if trace.n < 2:
        raise ConfigurationError(
            "round trip needs at least 2 trace rows to fit a generator"
        )
    rebased = trace.rebased()
    spec, synthesis = fit_trace_workload(
        rebased, name=name, buckets=buckets, rate_window=rate_window
    )
    duration = replay_duration(rebased)
    times = spec.arrivals.arrivals(
        np.random.default_rng(seed), 0.0, duration, jitter=False
    )
    if times.size == 0:
        raise ConfigurationError(
            "fitted arrival process produced no synthetic queries; "
            "the trace is too sparse for a round trip"
        )
    synthetic = KVWorkload(spec, seed=seed).next_batch(times)
    stream_phi = realized_stream_phi(rebased.to_batch(), synthetic)
    edges = np.arange(0.0, duration + rate_window, rate_window)
    recorded_counts, _ = np.histogram(rebased.timestamps, bins=edges)
    synthetic_counts, _ = np.histogram(times, bins=edges)
    rate_error = float(
        np.abs(recorded_counts - synthetic_counts).sum() / rebased.n
    )
    report = RoundTripReport(
        ks_keys=float(stream_phi["phi_data"]),
        tv_ops=float(stream_phi["phi_workload"]),
        arrival_rate_error=rate_error,
        phi=float(stream_phi["phi"]),
        key_fit_ks=float(synthesis.ks_distance),
        n_trace=rebased.n,
        n_synthetic=int(times.size),
        seed=int(seed),
        rate_window=float(rate_window),
    )
    return spec, synthesis, report
