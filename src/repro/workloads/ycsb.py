"""YCSB core workload presets.

The Yahoo! Cloud Serving Benchmark defines six canonical operation mixes
(A-F) over a Zipf-skewed key space. The paper uses YCSB as the archetype
of a *fixed*-workload benchmark; these presets serve as the static
building blocks the dynamic scenarios transition between.

Reference: Cooper et al., "Benchmarking Cloud Serving Systems with YCSB"
(SoCC 2010).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import KVOperation, OperationMix, WorkloadSpec
from repro.workloads.patterns import ConstantArrivals

#: Operation mixes for the six core workloads.
_MIXES: Dict[str, Dict[KVOperation, float]] = {
    # A: update heavy (session store)
    "A": {KVOperation.READ: 0.5, KVOperation.UPDATE: 0.5},
    # B: read mostly (photo tagging)
    "B": {KVOperation.READ: 0.95, KVOperation.UPDATE: 0.05},
    # C: read only (user profile cache)
    "C": {KVOperation.READ: 1.0},
    # D: read latest (user status updates); modeled as read+insert
    "D": {KVOperation.READ: 0.95, KVOperation.INSERT: 0.05},
    # E: short ranges (threaded conversations)
    "E": {KVOperation.SCAN: 0.95, KVOperation.INSERT: 0.05},
    # F: read-modify-write (user database)
    "F": {KVOperation.READ: 0.5, KVOperation.READ_MODIFY_WRITE: 0.5},
}

#: Default scan length for workload E.
_SCAN_LENGTH: Dict[str, int] = {"E": 50}


def ycsb_workload(
    letter: str,
    low: float = 0.0,
    high: float = 1_000_000.0,
    rate: float = 1000.0,
    theta: float = 0.99,
    uniform_keys: bool = False,
) -> WorkloadSpec:
    """Build the YCSB core workload ``letter`` as a :class:`WorkloadSpec`.

    Args:
        letter: One of ``"A"`` … ``"F"`` (case-insensitive).
        low, high: Key domain.
        rate: Constant offered load in queries/second.
        theta: Zipf skew of the request distribution (YCSB default 0.99).
        uniform_keys: Use a uniform request distribution instead of Zipf.

    Returns:
        A static (no-drift, constant-rate) workload spec.
    """
    key = letter.upper()
    if key not in _MIXES:
        raise ConfigurationError(f"unknown YCSB workload {letter!r}; expected A-F")
    if uniform_keys:
        dist = UniformDistribution(low, high)
    else:
        dist = ZipfDistribution(low, high, theta=theta)
    return WorkloadSpec(
        name=f"ycsb-{key.lower()}",
        mix=OperationMix(dict(_MIXES[key])),
        key_drift=NoDrift(dist),
        arrivals=ConstantArrivals(rate),
        scan_length_mean=_SCAN_LENGTH.get(key, 0),
    )
