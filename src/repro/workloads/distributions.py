"""Parametric key distributions.

Each :class:`Distribution` can sample keys, report its CDF, and describe
itself for similarity estimation (KS / MMD in
:mod:`repro.metrics.similarity`). All sampling goes through an explicit
``numpy.random.Generator`` so every benchmark run is reproducible.

The catalog covers the phenomena the paper says real deployments exhibit
and uniform benchmarks miss: skew (Zipf, lognormal), locality (hotspot),
multi-modality (mixture), and arbitrary shapes (piecewise).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


class Distribution(ABC):
    """A distribution over keys in a fixed domain ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        """Validate and store the key domain ``[low, high)``."""
        if not high > low:
            raise ConfigurationError(f"empty domain: [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys."""

    @abstractmethod
    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate the CDF at ``xs``."""

    @property
    def name(self) -> str:
        """Short descriptive name."""
        return type(self).__name__.replace("Distribution", "").lower()

    def describe(self) -> dict:
        """JSON-friendly description of the distribution's parameters."""
        return {"kind": self.name, "low": self.low, "high": self.high}

    def _clip(self, xs: np.ndarray) -> np.ndarray:
        return np.clip(xs, self.low, np.nextafter(self.high, self.low))


class UniformDistribution(Distribution):
    """Uniform keys over ``[low, high)`` — the classic benchmark default
    the paper criticizes as unrealistically easy."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` uniform keys."""
        return rng.uniform(self.low, self.high, n)

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Linear CDF over the domain."""
        return np.clip((np.asarray(xs) - self.low) / (self.high - self.low), 0.0, 1.0)


class ZipfDistribution(Distribution):
    """Zipf-distributed ranks mapped onto the key domain.

    Rank ``r`` (1-based, out of ``n_items``) has probability proportional
    to ``r ** -theta``. Ranks are scattered over the domain with a fixed
    permutation derived from ``permute_seed`` so that popular keys are not
    trivially clustered at the domain edge (matching YCSB's scrambled
    Zipfian). ``theta = 0`` degenerates to uniform ranks.
    """

    def __init__(
        self,
        low: float,
        high: float,
        theta: float = 0.99,
        n_items: int = 100_000,
        permute_seed: Optional[int] = 0,
    ) -> None:
        """Precompute rank probabilities and the domain permutation."""
        super().__init__(low, high)
        if theta < 0:
            raise ConfigurationError(f"theta must be >= 0, got {theta}")
        if n_items < 1:
            raise ConfigurationError(f"n_items must be >= 1, got {n_items}")
        self.theta = float(theta)
        self.n_items = int(n_items)
        self.permute_seed = permute_seed
        ranks = np.arange(1, self.n_items + 1, dtype=np.float64)
        weights = ranks ** (-self.theta)
        self._probs = weights / weights.sum()
        self._cum = np.cumsum(self._probs)
        if permute_seed is None:
            self._perm = np.arange(self.n_items)
        else:
            self._perm = np.random.default_rng(permute_seed).permutation(self.n_items)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys: inverse-CDF ranks scattered over the domain."""
        u = rng.uniform(0.0, 1.0, n)
        ranks = np.searchsorted(self._cum, u)
        slots = self._perm[np.minimum(ranks, self.n_items - 1)]
        width = (self.high - self.low) / self.n_items
        jitter = rng.uniform(0.0, width, n)
        return self._clip(self.low + slots * width + jitter)

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Exact CDF over the permuted rank slots (piecewise linear)."""
        xs = np.asarray(xs, dtype=np.float64)
        width = (self.high - self.low) / self.n_items
        slots = np.clip(((xs - self.low) / width).astype(np.int64), 0, self.n_items - 1)
        slot_probs = np.zeros(self.n_items)
        slot_probs[self._perm] = self._probs
        cum_slots = np.concatenate([[0.0], np.cumsum(slot_probs)])
        frac = np.clip((xs - self.low) / width - slots, 0.0, 1.0)
        out = cum_slots[slots] + frac * slot_probs[slots]
        out = np.where(xs <= self.low, 0.0, out)
        out = np.where(xs >= self.high, 1.0, out)
        return out

    def describe(self) -> dict:
        """JSON-friendly description including skew parameters."""
        out = super().describe()
        out.update(theta=self.theta, n_items=self.n_items)
        return out


class NormalDistribution(Distribution):
    """Truncated normal over the key domain."""

    def __init__(self, low: float, high: float, mean: float, std: float) -> None:
        """Store the (untruncated) mean and standard deviation."""
        super().__init__(low, high)
        if std <= 0:
            raise ConfigurationError(f"std must be > 0, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` normal keys, clipped to the domain."""
        return self._clip(rng.normal(self.mean, self.std, n))

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Truncated-normal CDF (renormalized over the domain)."""
        from scipy.stats import norm

        xs = np.asarray(xs, dtype=np.float64)
        raw = norm.cdf(xs, loc=self.mean, scale=self.std)
        lo = norm.cdf(self.low, loc=self.mean, scale=self.std)
        hi = norm.cdf(self.high, loc=self.mean, scale=self.std)
        span = max(hi - lo, 1e-12)
        return np.clip((raw - lo) / span, 0.0, 1.0)

    def describe(self) -> dict:
        """JSON-friendly description including mean/std."""
        out = super().describe()
        out.update(mean=self.mean, std=self.std)
        return out


class LognormalDistribution(Distribution):
    """Lognormal keys shifted to start at ``low`` (heavy right tail)."""

    def __init__(self, low: float, high: float, mu: float = 0.0, sigma: float = 1.0) -> None:
        """Scale the lognormal so its 99.9th percentile spans the domain."""
        super().__init__(low, high)
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        # Scale so that the 99.9th percentile maps near the top of the domain.
        from scipy.stats import lognorm

        p999 = lognorm.ppf(0.999, s=self.sigma, scale=np.exp(self.mu))
        self._scale = (self.high - self.low) / max(p999, 1e-12)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` scaled lognormal keys, clipped to the domain."""
        raw = rng.lognormal(self.mu, self.sigma, n) * self._scale
        return self._clip(self.low + raw)

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Scaled lognormal CDF (mass above the domain mapped to 1)."""
        from scipy.stats import lognorm

        xs = np.asarray(xs, dtype=np.float64)
        raw = (xs - self.low) / self._scale
        out = lognorm.cdf(raw, s=self.sigma, scale=np.exp(self.mu))
        out = np.where(xs >= self.high, 1.0, out)
        return np.clip(out, 0.0, 1.0)

    def describe(self) -> dict:
        """JSON-friendly description including mu/sigma."""
        out = super().describe()
        out.update(mu=self.mu, sigma=self.sigma)
        return out


class MixtureDistribution(Distribution):
    """Weighted mixture of component distributions (multi-modal data)."""

    def __init__(
        self, components: Sequence[Distribution], weights: Optional[Sequence[float]] = None
    ) -> None:
        """Normalize weights over the components' union domain."""
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        low = min(c.low for c in components)
        high = max(c.high for c in components)
        super().__init__(low, high)
        self.components: List[Distribution] = list(components)
        if weights is None:
            weights = [1.0] * len(self.components)
        if len(weights) != len(self.components):
            raise ConfigurationError("weights/components length mismatch")
        w = np.asarray(weights, dtype=np.float64)
        if (w < 0).any() or w.sum() <= 0:
            raise ConfigurationError("weights must be non-negative, not all zero")
        self.weights = w / w.sum()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys: component choices, then per-component bulks."""
        choices = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n, dtype=np.float64)
        for i, comp in enumerate(self.components):
            mask = choices == i
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Weighted sum of the component CDFs."""
        xs = np.asarray(xs, dtype=np.float64)
        out = np.zeros_like(xs, dtype=np.float64)
        for w, comp in zip(self.weights, self.components):
            out += w * comp.cdf(xs)
        return out

    def describe(self) -> dict:
        """JSON-friendly description including components and weights."""
        out = super().describe()
        out.update(
            weights=self.weights.tolist(),
            components=[c.describe() for c in self.components],
        )
        return out


class HotspotDistribution(Distribution):
    """A fraction of accesses hits a narrow hot range, the rest is uniform.

    ``hot_fraction`` of samples land uniformly inside the hot range
    ``[hot_start, hot_start + hot_width)``; the remainder covers the whole
    domain. Rotating the hot range over time is the paper's "diurnal /
    shifting access pattern" scenario (see
    :class:`repro.workloads.drift.RotatingHotspotDrift`).
    """

    def __init__(
        self,
        low: float,
        high: float,
        hot_start: float,
        hot_width: float,
        hot_fraction: float = 0.9,
    ) -> None:
        """Validate and store the hot-range placement and mass."""
        super().__init__(low, high)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must be in [0,1], got {hot_fraction}")
        if hot_width <= 0:
            raise ConfigurationError(f"hot_width must be > 0, got {hot_width}")
        self.hot_start = float(hot_start)
        self.hot_width = float(min(hot_width, high - low))
        self.hot_fraction = float(hot_fraction)

    def _hot_bounds(self) -> tuple:
        start = self.low + (self.hot_start - self.low) % (self.high - self.low)
        end = min(start + self.hot_width, self.high)
        return start, end

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys: hot-range hits plus uniform background."""
        start, end = self._hot_bounds()
        hot = rng.uniform(0.0, 1.0, n) < self.hot_fraction
        out = rng.uniform(self.low, self.high, n)
        n_hot = int(hot.sum())
        if n_hot:
            out[hot] = rng.uniform(start, end, n_hot)
        return out

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Mixture CDF of the hot range and the uniform background."""
        xs = np.asarray(xs, dtype=np.float64)
        start, end = self._hot_bounds()
        base = np.clip((xs - self.low) / (self.high - self.low), 0.0, 1.0)
        hot = np.clip((xs - start) / max(end - start, 1e-12), 0.0, 1.0)
        return (1.0 - self.hot_fraction) * base + self.hot_fraction * hot

    def describe(self) -> dict:
        """JSON-friendly description including the hot-range parameters."""
        out = super().describe()
        out.update(
            hot_start=self.hot_start,
            hot_width=self.hot_width,
            hot_fraction=self.hot_fraction,
        )
        return out


class PiecewiseDistribution(Distribution):
    """Histogram-shaped distribution from per-bucket weights.

    The domain splits into ``len(weights)`` equal buckets; a sample picks a
    bucket proportionally to its weight and is uniform within it. This is
    the workhorse for synthesizing arbitrary data shapes (and is what
    :mod:`repro.workloads.synthesizer` fits to samples).
    """

    def __init__(self, low: float, high: float, weights: Sequence[float]) -> None:
        """Normalize per-bucket weights and precompute their cumsum."""
        super().__init__(low, high)
        w = np.asarray(list(weights), dtype=np.float64)
        if w.size == 0 or (w < 0).any() or w.sum() <= 0:
            raise ConfigurationError("weights must be non-empty, non-negative, not all zero")
        self.weights = w / w.sum()
        self._cum = np.concatenate([[0.0], np.cumsum(self.weights)])

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys: bucket choices, then uniform within buckets."""
        buckets = rng.choice(len(self.weights), size=n, p=self.weights)
        width = (self.high - self.low) / len(self.weights)
        return self.low + (buckets + rng.uniform(0.0, 1.0, n)) * width

    def cdf(self, xs: np.ndarray) -> np.ndarray:
        """Piecewise-linear CDF over the weight buckets."""
        xs = np.asarray(xs, dtype=np.float64)
        width = (self.high - self.low) / len(self.weights)
        pos = np.clip((xs - self.low) / width, 0.0, len(self.weights))
        buckets = np.minimum(pos.astype(np.int64), len(self.weights) - 1)
        frac = pos - buckets
        return np.clip(self._cum[buckets] + frac * self.weights[buckets], 0.0, 1.0)

    def describe(self) -> dict:
        """JSON-friendly description including the bucket weights."""
        out = super().describe()
        out.update(weights=self.weights.tolist())
        return out
