"""Workload and data-distribution generation.

The paper's Lesson 1 is that benchmarks must "abstain from fixed workloads
and databases". This subpackage provides the dynamic machinery:

* :mod:`~repro.workloads.distributions` — parametric key distributions.
* :mod:`~repro.workloads.drift` — distribution evolution over virtual time.
* :mod:`~repro.workloads.patterns` — arrival-rate processes (diurnal,
  bursts, ramps).
* :mod:`~repro.workloads.generators` — seedable query-stream generators.
* :mod:`~repro.workloads.ycsb` — YCSB core workload presets A-F.
* :mod:`~repro.workloads.quality` — the dataset/workload quality scorer
  proposed in §V-C of the paper.
* :mod:`~repro.workloads.synthesizer` — fit a synthetic generator to a
  data sample (the paper's email-address substitution idea).
"""

from repro.workloads.distributions import (
    Distribution,
    HotspotDistribution,
    LognormalDistribution,
    MixtureDistribution,
    NormalDistribution,
    PiecewiseDistribution,
    UniformDistribution,
    ZipfDistribution,
)
from repro.workloads.drift import (
    AbruptDrift,
    DriftModel,
    GradualDrift,
    GrowingSkewDrift,
    NoDrift,
    RotatingHotspotDrift,
)
from repro.workloads.generators import (
    KVOperation,
    KVQuery,
    KVWorkload,
    MixSchedule,
    OperationMix,
    WorkloadSpec,
)
from repro.workloads.patterns import (
    ArrivalProcess,
    BurstyArrivals,
    CompositeArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    RampArrivals,
)
from repro.workloads.quality import (
    DatasetQualityReport,
    WorkloadQualityReport,
    score_dataset,
    score_workload,
)
from repro.workloads.trace import (
    TRACE_FORMAT_VERSION,
    QueryTrace,
    RoundTripReport,
    TraceArrivalProcess,
    TraceWorkload,
    TraceWorkloadSpec,
    fit_trace_workload,
    load_trace,
    round_trip,
    save_trace,
    trace_spec,
)
from repro.workloads.ycsb import ycsb_workload

__all__ = [
    "Distribution",
    "UniformDistribution",
    "ZipfDistribution",
    "NormalDistribution",
    "LognormalDistribution",
    "MixtureDistribution",
    "PiecewiseDistribution",
    "HotspotDistribution",
    "DriftModel",
    "NoDrift",
    "AbruptDrift",
    "GradualDrift",
    "RotatingHotspotDrift",
    "GrowingSkewDrift",
    "ArrivalProcess",
    "ConstantArrivals",
    "DiurnalArrivals",
    "BurstyArrivals",
    "RampArrivals",
    "CompositeArrivals",
    "KVOperation",
    "KVQuery",
    "OperationMix",
    "MixSchedule",
    "KVWorkload",
    "WorkloadSpec",
    "ycsb_workload",
    "score_dataset",
    "score_workload",
    "DatasetQualityReport",
    "WorkloadQualityReport",
    "TRACE_FORMAT_VERSION",
    "QueryTrace",
    "TraceArrivalProcess",
    "TraceWorkload",
    "TraceWorkloadSpec",
    "RoundTripReport",
    "load_trace",
    "save_trace",
    "trace_spec",
    "fit_trace_workload",
    "round_trip",
]
