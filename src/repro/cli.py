"""Command-line interface.

``python -m repro <command>``:

* ``list`` — available datasets, scenarios, and systems under test.
* ``run`` — run a scenario against one or more SUTs and print the full
  report (optionally exporting the query log / throughput as CSV).
* ``run-matrix`` — fan a (SUT × scenario × seed) matrix across a process
  pool with content-addressed result caching; prints the run manifest.
  Hardening flags: ``--timeout`` (per-job kill), ``--max-attempts`` /
  ``--retry-backoff`` (retry budget), ``--checkpoint`` + ``--resume``
  (survive interrupted invocations).
* ``serve`` — multi-tenant benchmark service: admit N concurrent
  tenants (token-bucket admission control), stream each tenant's
  (SUT, scenario, seed) session on the shared worker pool, and print
  per-tenant SLA reports plus the service ledger.
* ``faults`` — chaos benchmark: inject a fault plan (stalls, crashes,
  latency/throughput degradation windows) into a scenario, run it next
  to its fault-free twin, and print the resilience report.
* ``trace`` — print the telemetry rollup (per-phase wall time and
  counters) of a saved run-matrix manifest.
* ``quality`` — score a built-in dataset (or a file of keys) with the
  §V-C quality tool.
* ``synthesize`` — fit a shareable synthetic workload to a trace file of
  keys and report its fidelity.
* ``replay`` — replay a recorded query trace (CSV/Parquet) through the
  driver at configurable time dilation; ``--fit`` closes the §V-C
  round trip (fit the synthesizer to the trace and print the
  generator-vs-trace ``RoundTripReport``), ``--export-spec`` writes the
  fitted generator as shareable JSON.

The CLI wraps the same public API the examples use; anything it does can
be reproduced programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.driver import DriverConfig
from repro.core.runner import MatrixRunner, matrix_jobs
from repro.core.sut import SystemUnderTest
from repro.data.datasets import build_dataset, dataset_names
from repro.errors import RunnerError
from repro.metrics.sla import calibrate_sla
from repro.reporting.export import queries_csv, throughput_csv
from repro.reporting.report import build_report
from repro.scenarios import (
    abrupt_shift,
    bursty_diurnal,
    drift_axis,
    expected_access_sample,
    gradual_shift,
    specialization_ladder,
)
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import HashKVStore, TraditionalKVStore
from repro.suts.kv_variants import AlexKVStore, PGMKVStore
from repro.workloads.quality import score_dataset

#: name -> scenario builder(dataset, rate, duration) -> Scenario
SCENARIOS: Dict[str, Callable] = {
    "abrupt-shift": lambda ds, rate, duration: abrupt_shift(
        ds, rate=rate, segment_duration=duration / 2
    ),
    "gradual-shift": lambda ds, rate, duration: gradual_shift(
        ds, rate=rate, total_duration=duration
    ),
    "specialization-ladder": lambda ds, rate, duration: specialization_ladder(
        ds, rate=rate, segment_duration=duration / 6
    )[0],
    "bursty-diurnal": lambda ds, rate, duration: bursty_diurnal(
        ds, base_rate=rate, duration=duration
    ),
    "drift-axis": lambda ds, rate, duration: drift_axis(
        ds, factor=0.5, rate=rate, segment_duration=duration / 2
    ),
}


def _sut_factories(sample) -> Dict[str, Callable[[], SystemUnderTest]]:
    # Partials of classes (not lambdas) so factories pickle cleanly into
    # the matrix runner's worker processes.
    return {
        "learned-kv": partial(
            LearnedKVStore,
            max_fanout=160, retrain_cooldown=2.0, expected_access_sample=sample,
        ),
        "static-learned-kv": partial(
            StaticLearnedKVStore, max_fanout=160, expected_access_sample=sample
        ),
        "btree-kv": TraditionalKVStore,
        "hash-kv": HashKVStore,
        "alex-kv": AlexKVStore,
        "pgm-kv": PGMKVStore,
    }


def _export_path(prefix: str, sut_name: str, suffix: str) -> Path:
    """Build ``<prefix>-<sut>-<suffix>`` with parent directories created.

    The prefix may carry directory components (``out/run1``); joining
    with pathlib and pre-creating the parent keeps exports from failing
    on a fresh output tree.
    """
    path = Path(f"{prefix}-{sut_name}-{suffix}")
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list``: show datasets, scenarios, and SUTs."""
    print("datasets:   " + ", ".join(dataset_names()))
    print("scenarios:  " + ", ".join(sorted(SCENARIOS)))
    print("suts:       " + ", ".join(sorted(_sut_factories(None))))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: run a scenario against SUTs, print full reports."""
    import json

    from repro.serialization import scenario_from_dict, scenario_to_dict

    dataset = build_dataset(args.dataset, n=args.keys, seed=args.seed)
    builder = SCENARIOS[args.scenario]
    if args.scenario_file:
        with open(args.scenario_file) as handle:
            scenario = scenario_from_dict(json.load(handle),
                                          initial_keys=dataset.keys)
        print(f"loaded scenario {scenario.name!r} from {args.scenario_file} "
              f"(fingerprint {scenario.fingerprint()[:16]}…)\n")
    else:
        scenario = builder(dataset, args.rate, args.duration)
    if args.save_scenario:
        with open(args.save_scenario, "w") as handle:
            json.dump(scenario_to_dict(scenario), handle, indent=2)
        print(f"wrote scenario definition to {args.save_scenario}\n")
    sample = expected_access_sample(scenario)
    factories = _sut_factories(sample)
    bench = Benchmark(
        BenchmarkConfig(servers=args.servers, block_size=args.block_size)
    )

    sla: Optional[float] = None
    if args.sla_baseline:
        baseline_scenario = builder(dataset, args.rate * 0.6, args.duration)
        baseline = bench.run(factories["btree-kv"](), baseline_scenario)
        sla = calibrate_sla(baseline, percentile=99.0, headroom=1.5)
        print(f"SLA calibrated from btree baseline: {sla*1000:.3f} ms\n")

    for name in args.sut:
        if name not in factories:
            print(f"unknown SUT {name!r}; try: {', '.join(sorted(factories))}",
                  file=sys.stderr)
            return 2
        if args.stream:
            spill_dir = None
            if args.spill_dir:
                spill_dir = Path(args.spill_dir) / name
                spill_dir.mkdir(parents=True, exist_ok=True)
            if args.shards > 1:
                summary = bench.run_sharded_streaming(
                    factories[name], scenario, shards=args.shards,
                    sla=sla, spill_dir=spill_dir,
                )
            else:
                summary = bench.run_streaming(
                    factories[name](), scenario, sla=sla, spill_dir=spill_dir
                )
            print(f"== {summary.sut_name} on {summary.scenario_name} "
                  "(streaming) ==")
            if summary.sharding:
                print(f"shards: {summary.sharding['shards']}, "
                      f"boundaries drained: "
                      f"{summary.sharding['boundaries_drained']}")
            print(f"queries: {summary.num_queries}, "
                  f"horizon: {summary.horizon:.3f}s, "
                  f"mean throughput: {summary.mean_throughput():.1f} q/s")
            for metric_name in sorted(summary.metrics):
                payload = summary.metrics[metric_name]
                keys = ", ".join(sorted(payload)) if isinstance(
                    payload, dict) else str(payload)
                print(f"  {metric_name}: {keys}")
            if spill_dir:
                print(f"  spilled columns: {spill_dir}")
            if args.export_prefix:
                spath = _export_path(args.export_prefix, name,
                                     "streaming.json")
                with open(spath, "w") as handle:
                    json.dump(summary.to_dict(), handle)
                print(f"exported {spath}")
            print()
            continue
        result = bench.run(factories[name](), scenario)
        report = build_report(result, scenario, sla=sla)
        print(report.render())
        print()
        if args.export_prefix:
            qpath = _export_path(args.export_prefix, name, "queries.csv")
            tpath = _export_path(args.export_prefix, name, "throughput.csv")
            with open(qpath, "w") as handle:
                handle.write(queries_csv(result))
            with open(tpath, "w") as handle:
                handle.write(throughput_csv(result))
            print(f"exported {qpath}, {tpath}\n")
    return 0


def cmd_run_matrix(args: argparse.Namespace) -> int:
    """``repro run-matrix``: parallel (SUT × scenario × seed) matrix.

    Jobs fan out across a process pool; results land in a
    content-addressed cache so a re-run only executes jobs whose inputs
    changed. Prints one manifest row per job plus totals.

    ``--drift-factors`` adds the drift-intensity axis: one
    ``drift-axis@<f>`` scenario per factor joins the matrix, and every
    cell's manifest row carries the *computed* Φ between its scenario's
    first and last segments (measured from realized probe streams, not
    assumed from labels).
    """
    from repro.metrics.similarity import scenario_phi

    dataset = build_dataset(args.dataset, n=args.keys, seed=args.seed)
    # --trace alone runs just the replay cell; explicit --scenario names
    # (or no --trace at all) keep the parametric cells in the matrix.
    names = args.scenario
    if names is None:
        names = [] if args.trace else ["abrupt-shift"]
    scenarios = [
        SCENARIOS[name](dataset, args.rate, args.duration) for name in names
    ]
    if args.trace:
        from repro.core.scenario import Scenario
        from repro.errors import ConfigurationError
        from repro.workloads.trace import load_trace

        try:
            trace = load_trace(args.trace)
            scenarios.append(
                Scenario.from_trace(
                    trace,
                    dilation=args.trace_dilate,
                    initial_keys=np.unique(trace.keys),
                )
            )
        except ConfigurationError as exc:
            print(f"run-matrix: {exc}", file=sys.stderr)
            return 2
    if args.drift_factors:
        factors = sorted(set(args.drift_factors))
        bad = [f for f in factors if not 0.0 <= f <= 1.0]
        if bad:
            print(f"drift factors must be in [0, 1]; got {bad}", file=sys.stderr)
            return 2
        scenarios.extend(
            drift_axis(dataset, factor=f, rate=args.rate,
                       segment_duration=args.duration / 2)
            for f in factors
        )
    sample = expected_access_sample(scenarios[0])
    factories = _sut_factories(sample)
    unknown = [name for name in args.sut if name not in factories]
    if unknown:
        print(f"unknown SUT(s) {', '.join(unknown)}; "
              f"try: {', '.join(sorted(factories))}", file=sys.stderr)
        return 2
    jobs = matrix_jobs(
        {name: factories[name] for name in args.sut},
        scenarios,
        seeds=args.seeds or (),
    )
    try:
        runner = MatrixRunner(
            driver_config=DriverConfig(servers=args.servers),
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            max_attempts=args.max_attempts,
            job_timeout=args.timeout,
            retry_backoff=args.retry_backoff,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except RunnerError as exc:
        print(f"run-matrix: {exc}", file=sys.stderr)
        return 2
    outcome = runner.run(jobs)
    manifest = outcome.manifest

    # Stamp every cell's computed Φ (deterministic per scenario × seed,
    # so the same cell always reports the same value regardless of
    # cache hits or worker assignment).
    by_name = {scenario.name: scenario for scenario in scenarios}
    phi_cache: Dict[tuple, Dict[str, float]] = {}
    for record in manifest.jobs:
        scenario = by_name.get(record.scenario_name)
        if scenario is None:
            continue
        cell = (record.scenario_name, record.seed)
        if cell not in phi_cache:
            phi_cache[cell] = scenario_phi(scenario, seed=record.seed)
        record.phi = dict(phi_cache[cell])

    width = max(len(j.label) for j in manifest.jobs)
    for record, result in zip(manifest.jobs, outcome.results):
        line = f"  {record.label:<{width}}  {record.status:<7}"
        if record.status == "failed":
            line += f"  {record.error}"
        else:
            line += f"  {record.wall_seconds:7.2f}s"
            if result is not None:
                line += f"  {result.mean_throughput():10.1f} q/s"
            if record.phi is not None:
                line += f"  phi={record.phi['phi']:.4f}"
        print(line)
    print(f"\n{manifest.summary()}")
    if not args.no_cache:
        print(f"cache: {args.cache_dir}")
    if args.manifest:
        manifest.save(args.manifest)
        print(f"wrote manifest to {args.manifest}")
    return 1 if manifest.failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run a multi-tenant serving window.

    Fans ``--tenants`` sessions out over the SUT list (round-robin,
    seeds ``--seed-base + i``), admits them through a token bucket, and
    multiplexes every admitted tenant's shards onto one shared worker
    pool. Prints one row per tenant plus the service ledger; exits
    non-zero if any admitted tenant was dropped or failed.
    """
    from repro.core.tenancy import AdmissionPolicy, BenchmarkServer, TenantSpec

    dataset = build_dataset(args.dataset, n=args.keys, seed=args.seed)
    scenario = SCENARIOS[args.scenario](dataset, args.rate, args.duration)
    sample = expected_access_sample(scenario)
    factories = _sut_factories(sample)
    unknown = [name for name in args.sut if name not in factories]
    if unknown:
        print(f"unknown SUT(s) {', '.join(unknown)}; "
              f"try: {', '.join(sorted(factories))}", file=sys.stderr)
        return 2
    tenants = []
    for i in range(args.tenants):
        sut_name = args.sut[i % len(args.sut)]
        tenants.append(TenantSpec(
            name=f"tenant-{i:02d}-{sut_name}",
            sut_factory=factories[sut_name],
            scenario=scenario,
            seed=args.seed_base + i,
            shards=args.shards,
            arrival_time=i * args.arrival_spacing,
        ))
    server = BenchmarkServer(
        config=BenchmarkConfig(servers=args.servers),
        workers=args.workers,
        admission=AdmissionPolicy(burst=args.admit_burst,
                                  refill_rate=args.admit_rate),
        max_attempts=args.max_attempts,
        tenant_timeout=args.timeout,
    )
    report = server.serve(tenants, sla=args.sla)

    width = max(len(t.tenant) for t in report.tenants)
    print(f"  {'tenant':<{width}}  {'status':<9}  {'queries':>8}  "
          f"{'q/s':>9}  {'sla':>5}  {'wall':>8}")
    for tenant in report.tenants:
        if tenant.ok:
            sla_cell = "-"
            if tenant.sla_report and "meets_sla" in tenant.sla_report:
                sla_cell = "ok" if tenant.sla_report["meets_sla"] else "VIOL"
            print(f"  {tenant.tenant:<{width}}  {tenant.status:<9}  "
                  f"{tenant.summary.num_queries:>8}  "
                  f"{tenant.sla_report['mean_throughput']:>9.1f}  "
                  f"{sla_cell:>5}  {tenant.wall_seconds:>7.2f}s")
        else:
            print(f"  {tenant.tenant:<{width}}  {tenant.status:<9}  "
                  f"{tenant.error}")
    print(f"\noffered {report.offered}, admitted {report.admitted}, "
          f"rejected {report.rejected}, completed {report.completed}, "
          f"failed {report.failed}, violations {report.violations}, "
          f"dropped {report.dropped} "
          f"({report.workers} workers, {report.wall_seconds:.2f}s)")
    if args.export:
        path = Path(args.export)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote service report to {path}")
    return 0 if report.dropped == 0 and report.failed == 0 else 1


def cmd_faults(args: argparse.Namespace) -> int:
    """``repro faults``: chaos benchmark — inject faults, score resilience.

    Builds a :class:`~repro.faults.FaultPlan` from the command-line
    fault flags (or ``--plan-file``), runs the scenario twice — once
    fault-free, once with the plan — and prints the resilience report:
    per-fault recovery times, over-SLA latency mass inside degraded
    windows, and progress area lost to the faults.
    """
    from dataclasses import replace as dc_replace

    from repro.faults import (
        CrashFault,
        DegradationFault,
        FaultPlan,
        LatencyFault,
        StallFault,
    )
    from repro.metrics.resilience import resilience_report

    faults: list = []
    for at, duration in args.stall or []:
        faults.append(StallFault(at=at, duration=duration))
    for at, recovery in args.crash or []:
        faults.append(CrashFault(at=at, recovery_seconds=recovery))
    for start, end, multiplier in args.slow or []:
        faults.append(LatencyFault(start=start, end=end, multiplier=multiplier))
    for start, end, added in args.degrade or []:
        faults.append(
            DegradationFault(start=start, end=end, added_seconds=added)
        )
    if args.plan_file:
        with open(args.plan_file) as handle:
            plan = FaultPlan.from_dict(json.load(handle))
        if faults:
            print("faults: use either fault flags or --plan-file, not both",
                  file=sys.stderr)
            return 2
    else:
        if not faults:
            print("faults: no faults given; add --stall/--crash/--slow/"
                  "--degrade or --plan-file", file=sys.stderr)
            return 2
        plan = FaultPlan(faults)
    if args.export_plan:
        with open(args.export_plan, "w") as handle:
            json.dump(plan.describe(), handle, indent=2)
        print(f"wrote fault plan to {args.export_plan}\n")

    dataset = build_dataset(args.dataset, n=args.keys, seed=args.seed)
    scenario = SCENARIOS[args.scenario](dataset, args.rate, args.duration)
    faulted_scenario = dc_replace(scenario, fault_plan=plan)
    sample = expected_access_sample(scenario)
    factories = _sut_factories(sample)
    if args.sut not in factories:
        print(f"unknown SUT {args.sut!r}; try: {', '.join(sorted(factories))}",
              file=sys.stderr)
        return 2
    bench = Benchmark(BenchmarkConfig(servers=args.servers))

    baseline = bench.run(factories[args.sut](), scenario)
    sla = args.sla if args.sla is not None else calibrate_sla(
        baseline, percentile=99.0, headroom=1.5
    )
    faulted = bench.run(factories[args.sut](), faulted_scenario)
    report = resilience_report(
        faulted, plan=plan, sla=sla, baseline=baseline
    )

    print(f"chaos benchmark: {args.sut} on {scenario.name!r} "
          f"({len(plan)} fault(s), SLA {sla*1000:.3f} ms)")
    print(f"  baseline: {baseline.num_queries} queries, "
          f"{baseline.mean_throughput():.1f} q/s mean")
    print(f"  faulted:  {faulted.num_queries} queries, "
          f"{faulted.mean_throughput():.1f} q/s mean")
    print("\nper-fault recovery:")
    for impact in report.impacts:
        recovered = ("not recovered" if impact.recovery_seconds is None
                     else f"{impact.recovery_seconds:8.3f}s")
        print(f"  {impact.kind:<12} at {impact.at:8.2f}s  ->  {recovered}")
    print(f"\nrecovered faults:      {report.recovered_faults}"
          f"/{len(report.impacts)}")
    if report.worst_recovery_seconds is not None:
        print(f"worst recovery:        {report.worst_recovery_seconds:.3f}s")
    print(f"degraded SLA mass:     {report.degraded_sla_mass:.3f}s over SLA")
    print(f"area lost to faults:   {report.area_lost:.1f} query·seconds")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: telemetry rollup of a saved run-matrix manifest.

    Prints the matrix-wide phase/counter aggregation, then (with
    ``--jobs``) one phase row per traced job.
    """
    from repro.core.runner import RunManifest
    from repro.observability import PHASES, Trace

    try:
        with open(args.manifest) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read manifest {args.manifest!r}: {exc}", file=sys.stderr)
        return 2
    if "jobs" not in payload:
        print(f"{args.manifest!r} is not a run-matrix manifest (no 'jobs' key)",
              file=sys.stderr)
        return 2
    manifest = RunManifest.from_dict(payload)
    telemetry = manifest.telemetry()
    print(f"manifest: {args.manifest}")
    print(f"  {manifest.summary()}")
    print(f"  traced jobs: {telemetry['traced_jobs']}/{len(manifest.jobs)}")
    print("\nphase wall time (self-time attribution):")
    phase_seconds = telemetry["phase_seconds"]
    total = sum(phase_seconds.values())
    for phase in PHASES:
        seconds = phase_seconds[phase]
        share = (seconds / total * 100.0) if total > 0 else 0.0
        print(f"  {phase:<8} {seconds:12.6f}s  {share:5.1f}%")
    counters = telemetry["counters"]
    if counters:
        print("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]:,.0f}")
    if args.jobs:
        traced = [job for job in manifest.jobs if job.trace]
        if traced:
            print("\nper-job phase seconds:")
            width = max(len(job.label) for job in traced)
            header = "  ".join(f"{phase:>12}" for phase in PHASES)
            print(f"  {'job':<{width}}  {header}")
            for job in traced:
                phases = Trace.from_dict(job.trace).phase_seconds()
                row = "  ".join(f"{phases[phase]:12.6f}" for phase in PHASES)
                print(f"  {job.label:<{width}}  {row}")
    return 0


def cmd_quality(args: argparse.Namespace) -> int:
    """``repro quality``: score a dataset with the §V-C tool."""
    if args.dataset in dataset_names():
        keys = build_dataset(args.dataset, n=args.keys, seed=args.seed).keys
        source = f"builtin dataset {args.dataset!r}"
    else:
        keys = np.loadtxt(args.dataset, dtype=np.float64).ravel()
        source = f"file {args.dataset!r}"
    report = score_dataset(keys)
    print(f"quality of {source} ({len(keys)} keys):")
    print(f"  non-uniformity: {report.non_uniformity:.3f}")
    print(f"  multimodality:  {report.multimodality:.3f}")
    print(f"  tail weight:    {report.tail_weight:.3f}")
    print(f"  overall:        {report.overall:.3f}  (grade {report.grade()})")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    """``repro synthesize``: fit a shareable workload to a key trace."""
    from repro.workloads.synthesizer import fit_workload

    keys = np.loadtxt(args.trace, dtype=np.float64).ravel()
    spec, fidelity = fit_workload("synthesized", keys)
    print(f"fitted workload from {len(keys)} keys "
          f"(KS={fidelity.ks_distance:.4f}, "
          f"high fidelity: {fidelity.high_fidelity})")
    if args.out:
        rng = np.random.default_rng(args.seed)
        synthetic = spec.key_drift.at(0.0).sample(rng, args.emit)
        np.savetxt(args.out, synthetic)
        print(f"wrote {args.emit} synthetic keys to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """``repro replay``: replay a recorded trace, optionally round-trip it.

    Loads and validates the trace file, builds a single-segment replay
    scenario (``Scenario.from_trace`` — the SUT is preloaded with the
    trace's distinct keys), and runs it against each requested SUT. The
    replayed query columns are the trace rows themselves, bit-identical
    on the scalar, batched, and streaming driver paths.

    With ``--fit``, the §V-C synthesizer is fitted to the trace and the
    generator-vs-trace divergence is printed as a ``RoundTripReport``
    (KS over keys, total variation over op histograms, arrival-rate
    error). ``--export-spec`` writes the fitted parametric spec as
    shareable JSON (implies ``--fit``).
    """
    from repro.core.scenario import Scenario
    from repro.errors import ConfigurationError
    from repro.workloads.trace import load_trace, round_trip

    try:
        trace = load_trace(args.trace)
    except ConfigurationError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    try:
        scenario = Scenario.from_trace(
            trace,
            dilation=args.dilate,
            max_queries=args.max_queries,
            max_span=args.max_span,
            initial_keys=np.unique(trace.keys),
            seed=args.seed,
        )
    except ConfigurationError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    replayed = scenario.segments[0].spec.trace
    ops = ", ".join(f"{op}={n}" for op, n in sorted(replayed.op_histogram().items()))
    print(f"trace {trace.name!r}: {trace.n} queries over {trace.span:.3f}s "
          f"({ops})")
    print(f"  content: {trace.content_hash()[:16]}…  "
          f"scenario: {scenario.fingerprint()[:16]}…")
    if args.dilate != 1.0 or replayed.n != trace.n:
        print(f"  replaying {replayed.n} queries over {replayed.span:.3f}s "
              f"(dilation ×{args.dilate:g})")

    factories = _sut_factories(expected_access_sample(scenario))
    unknown = [name for name in args.sut if name not in factories]
    if unknown:
        print(f"unknown SUT(s) {', '.join(unknown)}; "
              f"try: {', '.join(sorted(factories))}", file=sys.stderr)
        return 2
    bench = Benchmark(BenchmarkConfig(servers=args.servers))
    for name in args.sut:
        result = bench.run(factories[name](), scenario)
        latency = result.columns.completions - result.columns.arrivals
        print(f"\n== {name} ==")
        print(f"  queries:         {result.columns.arrivals.size}")
        print(f"  mean throughput: {result.mean_throughput():.1f} q/s")
        print(f"  mean latency:    {float(latency.mean())*1000:.3f} ms  "
              f"(p99 {float(np.quantile(latency, 0.99))*1000:.3f} ms)")

    if args.fit or args.export_spec:
        spec, synthesis, report = round_trip(trace, seed=args.seed)
        print(f"\nsynthesizer round trip (seed {args.seed}):")
        print(f"  key-fit KS:         {synthesis.ks_distance:.4f}  "
              f"(high fidelity: {synthesis.high_fidelity})")
        print(f"  stream KS (keys):   {report.ks_keys:.4f}")
        print(f"  stream TV (ops):    {report.tv_ops:.4f}")
        print(f"  arrival-rate error: {report.arrival_rate_error:.4f}")
        print(f"  phi:                {report.phi:.4f}  "
              f"({report.n_synthetic} synthetic vs {report.n_trace} recorded)")
        if args.export_spec:
            path = Path(args.export_spec)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w") as handle:
                json.dump(spec.describe(), handle, indent=2)
            print(f"  wrote fitted spec to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmark for learned data management systems "
        "(ICDE 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets, scenarios, and SUTs").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run a scenario against SUTs")
    run.add_argument("--scenario", choices=sorted(SCENARIOS),
                     default="abrupt-shift")
    run.add_argument("--sut", nargs="+", default=["learned-kv", "btree-kv"])
    run.add_argument("--dataset", choices=dataset_names(), default="osm")
    run.add_argument("--keys", type=int, default=50_000)
    run.add_argument("--rate", type=float, default=3200.0)
    run.add_argument("--duration", type=float, default=60.0)
    run.add_argument("--servers", type=int, default=1)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--sla-baseline", action="store_true",
                     help="calibrate an SLA from a btree baseline run")
    run.add_argument("--export-prefix", default=None,
                     help="write <prefix>-<sut>-{queries,throughput}.csv")
    run.add_argument("--scenario-file", default=None,
                     help="load the scenario definition from this JSON file "
                          "(overrides --scenario)")
    run.add_argument("--save-scenario", default=None,
                     help="write the scenario definition to this JSON file")
    run.add_argument("--stream", action="store_true",
                     help="run the bounded-memory streaming pipeline and "
                          "print the online-metric summary instead of the "
                          "full report")
    run.add_argument("--block-size", type=int, default=None,
                     help="cap queries per execution block (bit-identical "
                          "results at any size; bounds working-set memory)")
    run.add_argument("--spill-dir", default=None,
                     help="with --stream: spill raw query columns to "
                          "sharded files under <dir>/<sut>")
    run.add_argument("--shards", type=int, default=1,
                     help="with --stream: fan the run out over this many "
                          "worker processes and merge their accumulators "
                          "(1 = in-process, no workers)")
    run.set_defaults(func=cmd_run)

    mat = sub.add_parser(
        "run-matrix",
        help="run a (SUT × scenario × seed) matrix in parallel with caching",
    )
    mat.add_argument("--scenario", nargs="+", choices=sorted(SCENARIOS),
                     default=None,
                     help="parametric scenarios to run (default: "
                          "abrupt-shift, or none when --trace is given)")
    mat.add_argument("--trace", default=None,
                     help="add a trace-replay cell: replay this recorded "
                          "trace file (CSV/Parquet); its cache key hashes "
                          "the trace content")
    mat.add_argument("--trace-dilate", type=float, default=1.0,
                     help="time-dilation factor for the --trace cell "
                          "(> 1 slows replay)")
    mat.add_argument("--sut", nargs="+", default=["learned-kv", "btree-kv"])
    mat.add_argument("--seeds", nargs="*", type=int, default=None,
                     help="seed overrides (one job per seed; default: "
                          "each scenario's own seed)")
    mat.add_argument("--drift-factors", nargs="*", type=float, default=None,
                     help="sweep the drift-intensity axis: add one "
                          "drift-axis scenario per factor (each in "
                          "[0, 1]; 0 = base workload, 1 = target)")
    mat.add_argument("--dataset", choices=dataset_names(), default="osm")
    mat.add_argument("--keys", type=int, default=50_000)
    mat.add_argument("--rate", type=float, default=3200.0)
    mat.add_argument("--duration", type=float, default=60.0)
    mat.add_argument("--servers", type=int, default=1)
    mat.add_argument("--seed", type=int, default=7,
                     help="dataset seed (scenario seeds come from --seeds)")
    mat.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: one per job, "
                          "capped at the CPU count)")
    mat.add_argument("--cache-dir", default=".repro-cache",
                     help="result-cache directory (default: .repro-cache)")
    mat.add_argument("--no-cache", action="store_true",
                     help="disable the result cache entirely")
    mat.add_argument("--manifest", default=None,
                     help="write the run manifest (JSON) to this path")
    mat.add_argument("--max-attempts", type=int, default=2,
                     help="executions per job before it is marked failed "
                          "(crashes, timeouts, and exceptions all count)")
    mat.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-clock budget in seconds; a job "
                          "over budget is killed (consumes one attempt)")
    mat.add_argument("--retry-backoff", type=float, default=0.25,
                     help="base of the exponential backoff between "
                          "attempts (seconds)")
    mat.add_argument("--checkpoint", default=None,
                     help="atomically rewrite the manifest here after "
                          "every finished job")
    mat.add_argument("--resume", action="store_true",
                     help="reuse completed jobs from --checkpoint "
                          "(results served from the cache)")
    mat.set_defaults(func=cmd_run_matrix)

    srv = sub.add_parser(
        "serve",
        help="run a multi-tenant serving window with admission control",
    )
    srv.add_argument("--scenario", choices=sorted(SCENARIOS),
                     default="abrupt-shift")
    srv.add_argument("--sut", nargs="+", default=["learned-kv", "btree-kv"],
                     help="SUT pool; tenants cycle through it round-robin")
    srv.add_argument("--tenants", type=int, default=8,
                     help="number of tenant sessions to offer")
    srv.add_argument("--dataset", choices=dataset_names(), default="osm")
    srv.add_argument("--keys", type=int, default=50_000)
    srv.add_argument("--rate", type=float, default=3200.0)
    srv.add_argument("--duration", type=float, default=30.0)
    srv.add_argument("--servers", type=int, default=1)
    srv.add_argument("--seed", type=int, default=7,
                     help="dataset seed (tenant seeds come from --seed-base)")
    srv.add_argument("--seed-base", type=int, default=100,
                     help="tenant i runs with scenario seed seed-base + i")
    srv.add_argument("--shards", type=int, default=1,
                     help="shards per tenant session")
    srv.add_argument("--workers", type=int, default=None,
                     help="shared worker-pool size (default: CPU-bound)")
    srv.add_argument("--arrival-spacing", type=float, default=0.0,
                     help="virtual seconds between tenant arrivals (feeds "
                          "admission-control refill)")
    srv.add_argument("--admit-burst", type=int, default=8,
                     help="token-bucket capacity (tenants admitted "
                          "back-to-back)")
    srv.add_argument("--admit-rate", type=float, default=1.0,
                     help="token refill per virtual second")
    srv.add_argument("--sla", type=float, default=None,
                     help="SLA threshold in seconds for per-tenant "
                          "accounting")
    srv.add_argument("--max-attempts", type=int, default=2,
                     help="per-shard attempt budget")
    srv.add_argument("--timeout", type=float, default=None,
                     help="per-attempt wall-clock kill deadline (seconds)")
    srv.add_argument("--export", default=None,
                     help="write the service report (JSON) to this path")
    srv.set_defaults(func=cmd_serve)

    fl = sub.add_parser(
        "faults",
        help="chaos benchmark: inject faults into a scenario and score "
             "resilience",
    )
    fl.add_argument("--scenario", choices=sorted(SCENARIOS),
                    default="abrupt-shift")
    fl.add_argument("--sut", default="learned-kv")
    fl.add_argument("--dataset", choices=dataset_names(), default="osm")
    fl.add_argument("--keys", type=int, default=50_000)
    fl.add_argument("--rate", type=float, default=3200.0)
    fl.add_argument("--duration", type=float, default=60.0)
    fl.add_argument("--servers", type=int, default=1)
    fl.add_argument("--seed", type=int, default=7)
    fl.add_argument("--stall", nargs=2, type=float, action="append",
                    metavar=("AT", "DURATION"),
                    help="full-stop stall: all servers blocked for "
                         "DURATION seconds at AT (repeatable)")
    fl.add_argument("--crash", nargs=2, type=float, action="append",
                    metavar=("AT", "RECOVERY"),
                    help="crash/restart at AT: RECOVERY seconds of "
                         "outage, then a cold-cache retrain (repeatable)")
    fl.add_argument("--slow", nargs=3, type=float, action="append",
                    metavar=("START", "END", "MULTIPLIER"),
                    help="latency window: service times ×MULTIPLIER for "
                         "arrivals in [START, END) (repeatable)")
    fl.add_argument("--degrade", nargs=3, type=float, action="append",
                    metavar=("START", "END", "SECONDS"),
                    help="throughput degradation window: +SECONDS per "
                         "query for arrivals in [START, END) (repeatable)")
    fl.add_argument("--plan-file", default=None,
                    help="load the fault plan from this JSON file "
                         "(FaultPlan.describe() format)")
    fl.add_argument("--export-plan", default=None,
                    help="write the fault plan (JSON) to this path")
    fl.add_argument("--sla", type=float, default=None,
                    help="SLA threshold in seconds (default: p99 × 1.5 "
                         "calibrated from the fault-free baseline)")
    fl.set_defaults(func=cmd_faults)

    trace = sub.add_parser(
        "trace", help="print the telemetry rollup of a saved run manifest"
    )
    trace.add_argument("manifest", help="manifest JSON written by run-matrix")
    trace.add_argument("--jobs", action="store_true",
                       help="also print per-job phase rows")
    trace.set_defaults(func=cmd_trace)

    quality = sub.add_parser("quality", help="score a dataset (§V-C tool)")
    quality.add_argument("dataset",
                         help="builtin dataset name or a text file of keys")
    quality.add_argument("--keys", type=int, default=50_000)
    quality.add_argument("--seed", type=int, default=7)
    quality.set_defaults(func=cmd_quality)

    synth = sub.add_parser(
        "synthesize", help="fit a synthetic workload to a key-trace file"
    )
    synth.add_argument("trace", help="text file with one key per line")
    synth.add_argument("--out", default=None,
                       help="write synthetic keys to this file")
    synth.add_argument("--emit", type=int, default=10_000)
    synth.add_argument("--seed", type=int, default=7)
    synth.set_defaults(func=cmd_synthesize)

    replay = sub.add_parser(
        "replay",
        help="replay a recorded query trace; --fit closes the §V-C "
             "synthesizer round trip",
    )
    replay.add_argument("trace",
                        help="trace file (.csv or .parquet; see "
                             "docs/trace-replay.md for the format)")
    replay.add_argument("--sut", nargs="+", default=["btree-kv"])
    replay.add_argument("--dilate", type=float, default=1.0,
                        help="time-dilation factor (> 1 stretches the "
                             "trace, lowering the offered rate)")
    replay.add_argument("--max-queries", type=int, default=None,
                        help="replay at most this many leading rows")
    replay.add_argument("--max-span", type=float, default=None,
                        help="replay only the first SPAN seconds "
                             "(after dilation)")
    replay.add_argument("--servers", type=int, default=1)
    replay.add_argument("--seed", type=int, default=0,
                        help="seed for the synthetic round-trip draw")
    replay.add_argument("--fit", action="store_true",
                        help="fit the synthesizer to the trace and print "
                             "the generator-vs-trace RoundTripReport")
    replay.add_argument("--export-spec", default=None,
                        help="write the fitted workload spec (JSON) to "
                             "this path (implies --fit)")
    replay.set_defaults(func=cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
