"""repro — a benchmark for learned data management systems.

A full implementation of the benchmark proposed in Bindschaedler, Kipf,
Kraska, Marcus & Minhas, *Towards a Benchmark for Learned Systems*
(ICDE 2021), together with the learned and traditional systems under
test needed to exercise it end to end.

Package map
-----------
* :mod:`repro.core` — the benchmark framework: scenarios with dynamic
  workload/data distributions, a virtual-clock driver, training as a
  first-class phase, sealed hold-outs, benchmark-as-a-service.
* :mod:`repro.metrics` — the paper's new metrics (Fig 1a-1d) and the Φ
  similarity machinery (Jaccard / KS / MMD).
* :mod:`repro.workloads` — dynamic workload and data-distribution
  generation, YCSB presets, quality scoring, trace synthesis.
* :mod:`repro.data` — synthetic datasets and column generators.
* :mod:`repro.indexes` — B+ tree, sorted array, hash, RMI, PGM, ALEX.
* :mod:`repro.engine` — minimal relational engine (plans feed the
  Jaccard workload similarity).
* :mod:`repro.learned` — learned components with baselines: cardinality
  estimation, optimizer steering, sorting, caching, drift detection.
* :mod:`repro.suts` — concrete systems under test.
* :mod:`repro.reporting` — figure renderers and full reports.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
