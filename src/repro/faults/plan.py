"""Fault types and the :class:`FaultPlan` schedule.

Two families of faults exist, distinguished by how the driver applies
them:

* **Window faults** (:class:`LatencyFault`, :class:`DegradationFault`)
  cover a half-open virtual-time interval ``[start, end)`` and perturb
  the service time of every query *arriving* inside the window. They
  are applied as elementwise array operations, so the scalar and
  batched driver paths produce bit-identical results.
* **Point faults** (:class:`StallFault`, :class:`CrashFault`) fire once
  at virtual time ``at`` and block every server for a fixed period.
  A crash additionally calls the SUT's ``on_crash`` hook, which may
  schedule a cold-cache retrain that extends the outage and is priced
  by the cost metrics like any other training event.

All faults are frozen dataclasses; a plan is an immutable, validated
tuple of them. Everything round-trips through ``describe()`` /
``from_dict`` so fault plans participate in scenario fingerprints and
the matrix runner's content-addressed cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "LatencyFault",
    "DegradationFault",
    "StallFault",
    "CrashFault",
    "WindowFault",
    "PointFault",
    "Fault",
    "FaultPlan",
]


@dataclass(frozen=True)
class LatencyFault:
    """Multiply service times of queries arriving in ``[start, end)``.

    Models a slow dependency or noisy neighbour: every query that
    arrives while the fault is active takes ``multiplier``\\ x its
    nominal service time.
    """

    start: float
    end: float
    multiplier: float

    kind = "latency"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on a malformed window."""
        _check_window(self.kind, self.start, self.end)
        if not self.multiplier > 0.0:
            raise ConfigurationError(
                f"latency fault multiplier must be > 0, got {self.multiplier}"
            )


@dataclass(frozen=True)
class DegradationFault:
    """Add a constant to service times of queries arriving in ``[start, end)``.

    Models a throughput-degradation window (e.g. background compaction
    or a saturated disk): each affected query pays a flat
    ``added_seconds`` surcharge, which lowers the effective service
    rate for the duration of the window.
    """

    start: float
    end: float
    added_seconds: float

    kind = "degradation"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on a malformed window."""
        _check_window(self.kind, self.start, self.end)
        if not self.added_seconds >= 0.0:
            raise ConfigurationError(
                f"degradation fault added_seconds must be >= 0, "
                f"got {self.added_seconds}"
            )


@dataclass(frozen=True)
class StallFault:
    """Block every server for ``duration`` seconds at virtual time ``at``.

    Models a stop-the-world pause (GC, failover blip): queries keep
    arriving but none start service before ``at + duration``.
    """

    at: float
    duration: float

    kind = "stall"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on a malformed stall."""
        _check_point(self.kind, self.at)
        if not self.duration >= 0.0:
            raise ConfigurationError(
                f"stall fault duration must be >= 0, got {self.duration}"
            )


@dataclass(frozen=True)
class CrashFault:
    """Crash and restart the SUT at virtual time ``at``.

    Every server is blocked for ``recovery_seconds`` (process restart),
    then the SUT's ``on_crash`` hook runs. A learned SUT typically
    loses its warm state (access history, drift detector) and performs
    a cold retrain, whose nominal training time extends the outage and
    is recorded as a training event for the cost metrics.
    """

    at: float
    recovery_seconds: float

    kind = "crash"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on a malformed crash."""
        _check_point(self.kind, self.at)
        if not self.recovery_seconds >= 0.0:
            raise ConfigurationError(
                f"crash fault recovery_seconds must be >= 0, "
                f"got {self.recovery_seconds}"
            )


WindowFault = Union[LatencyFault, DegradationFault]
PointFault = Union[StallFault, CrashFault]
Fault = Union[WindowFault, PointFault]

_KINDS: Dict[str, type] = {
    "latency": LatencyFault,
    "degradation": DegradationFault,
    "stall": StallFault,
    "crash": CrashFault,
}


def _check_window(kind: str, start: float, end: float) -> None:
    """Validate a ``[start, end)`` fault window."""
    if not start >= 0.0:
        raise ConfigurationError(f"{kind} fault start must be >= 0, got {start}")
    if not end > start:
        raise ConfigurationError(
            f"{kind} fault window must have end > start, got [{start}, {end})"
        )


def _check_point(kind: str, at: float) -> None:
    """Validate a point-fault firing time."""
    if not at >= 0.0:
        raise ConfigurationError(f"{kind} fault time must be >= 0, got {at}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of faults for one scenario.

    Times are in scenario virtual seconds, measured from the start of
    the serving phase (the same clock used by segment boundaries and
    ticks). The plan is validated eagerly at construction so a bad
    schedule fails before any simulation work happens.
    """

    faults: Tuple[Fault, ...]

    def __init__(self, faults: Iterable[Fault]):
        """Validate and freeze ``faults`` (any iterable of fault objects)."""
        entries = tuple(faults)
        seen_points = set()
        for fault in entries:
            if not isinstance(fault, tuple(_KINDS.values())):
                raise ConfigurationError(
                    f"unknown fault type: {type(fault).__name__}"
                )
            fault.validate()
            if isinstance(fault, (StallFault, CrashFault)):
                if fault.at in seen_points:
                    raise ConfigurationError(
                        f"two point faults scheduled at t={fault.at}; "
                        "point-fault times must be distinct"
                    )
                seen_points.add(fault.at)
        object.__setattr__(self, "faults", entries)

    def __bool__(self) -> bool:
        """A plan with no faults is falsy (treated as ``None`` by drivers)."""
        return bool(self.faults)

    def __len__(self) -> int:
        """Number of scheduled faults."""
        return len(self.faults)

    @property
    def window_faults(self) -> Tuple[WindowFault, ...]:
        """Window faults in plan order (application order matters)."""
        return tuple(
            f for f in self.faults if isinstance(f, (LatencyFault, DegradationFault))
        )

    @property
    def point_faults(self) -> Tuple[PointFault, ...]:
        """Point faults sorted by firing time."""
        points = [f for f in self.faults if isinstance(f, (StallFault, CrashFault))]
        return tuple(sorted(points, key=lambda f: f.at))

    def fault_times(self) -> List[float]:
        """Onset time of every fault, sorted (for recovery-time scoring)."""
        times = []
        for fault in self.faults:
            times.append(fault.start if hasattr(fault, "start") else fault.at)
        return sorted(times)

    def degraded_windows(self) -> List[Tuple[float, float, str]]:
        """``(start, end, kind)`` for each fault's degraded interval.

        Window faults degrade ``[start, end)`` directly. A stall
        degrades ``[at, at + duration)``; a crash degrades
        ``[at, at + recovery_seconds)`` (the retrain extension is
        SUT-dependent and scored separately from training events).
        Used by :func:`repro.metrics.resilience.degraded_sla_mass`.
        """
        windows: List[Tuple[float, float, str]] = []
        for fault in self.faults:
            if isinstance(fault, (LatencyFault, DegradationFault)):
                windows.append((fault.start, fault.end, fault.kind))
            elif isinstance(fault, StallFault):
                windows.append((fault.at, fault.at + fault.duration, fault.kind))
            else:
                windows.append(
                    (fault.at, fault.at + fault.recovery_seconds, fault.kind)
                )
        return sorted(windows)

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-safe description, stable across processes.

        Feeds :meth:`Scenario.describe` and therefore scenario
        fingerprints and matrix-runner cache keys.
        """
        out: List[Dict[str, Any]] = []
        for fault in self.faults:
            entry: Dict[str, Any] = {"kind": fault.kind}
            for field in fault.__dataclass_fields__:
                entry[field] = float(getattr(fault, field))
            out.append(entry)
        return out

    @classmethod
    def from_dict(cls, entries: Sequence[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`describe` output."""
        faults: List[Fault] = []
        for entry in entries:
            kind = entry.get("kind")
            fault_cls = _KINDS.get(kind)
            if fault_cls is None:
                raise ConfigurationError(f"unknown fault kind: {kind!r}")
            kwargs = {k: v for k, v in entry.items() if k != "kind"}
            try:
                faults.append(fault_cls(**kwargs))
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad fields for {kind} fault: {sorted(kwargs)}"
                ) from exc
        return cls(faults)
