"""Deterministic fault injection: chaos benchmarking for learned systems.

The paper's dynamic metrics (Fig 1b/1c) measure how fast a learned
system recovers after a *change*. Distribution drift is one kind of
change; this package supplies the other kind — environmental
perturbations: latency spikes, stop-the-world stalls, throughput
degradation windows, and process crash/restart with a cold-cache
retrain. A :class:`FaultPlan` is composed into a
:class:`~repro.core.scenario.Scenario` and applied inside the drivers by
a :class:`FaultClock`, deterministically and bit-identically in the
scalar and batched execution paths, so every resilience number is
reproducible from ``(scenario, seed)`` alone.

Public surface:

* :class:`LatencyFault` / :class:`DegradationFault` — window faults that
  perturb per-query service times (multiplicative / additive).
* :class:`StallFault` / :class:`CrashFault` — point faults that block
  every server; a crash additionally invalidates the SUT's warm state
  via :meth:`~repro.core.sut.SystemUnderTest.on_crash`.
* :class:`FaultPlan` — the validated, serializable schedule.
* :class:`FaultClock` — the driver-side applicator.

Scoring lives in :mod:`repro.metrics.resilience`; the recipe is
documented end to end in ``docs/chaos-tutorial.md``.
"""

from repro.faults.clock import FaultClock
from repro.faults.plan import (
    CrashFault,
    DegradationFault,
    FaultPlan,
    LatencyFault,
    StallFault,
)

__all__ = [
    "CrashFault",
    "DegradationFault",
    "FaultClock",
    "FaultPlan",
    "LatencyFault",
    "StallFault",
]
