"""The :class:`FaultClock`: applies a :class:`FaultPlan` inside drivers.

The clock is a thin, stateless applicator. Window faults become
elementwise mask operations over service-time arrays; point faults are
exposed as a sorted query interface the drivers merge into their tick
stream. Keeping the clock free of driver state is what makes the
scalar and batched execution paths trivially bit-identical: both call
the same :meth:`FaultClock.perturb_batch` kernel (the scalar path via a
length-1 array), so every arithmetic operation is the same IEEE-754
sequence in both paths.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, LatencyFault, PointFault, WindowFault

__all__ = ["FaultClock"]


class FaultClock:
    """Applies one scenario's :class:`FaultPlan` to driver time.

    Service-time perturbation is keyed on *arrival* time (the query
    experienced the fault because it arrived while the fault was
    active), which is well-defined before queueing begins and therefore
    identical no matter how the driver batches execution.
    """

    def __init__(self, plan: FaultPlan):
        """Precompute window/point views of ``plan`` for fast lookup."""
        self._plan = plan
        self._windows: Tuple[WindowFault, ...] = plan.window_faults
        self._points: Tuple[PointFault, ...] = plan.point_faults
        self._point_times = np.array([f.at for f in self._points], dtype=np.float64)

    @property
    def plan(self) -> FaultPlan:
        """The underlying plan (for description/serialization)."""
        return self._plan

    @property
    def has_window_faults(self) -> bool:
        """True when at least one window fault could perturb services."""
        return bool(self._windows)

    @property
    def has_point_faults(self) -> bool:
        """True when at least one stall/crash is scheduled."""
        return bool(self._points)

    def perturb_batch(
        self, services: np.ndarray, arrivals: np.ndarray
    ) -> np.ndarray:
        """Perturb ``services`` in place for queries arriving in fault windows.

        Window faults apply in plan order (a latency multiplier listed
        before a degradation surcharge multiplies first), so overlapping
        windows compose deterministically. Returns ``services``.
        """
        for fault in self._windows:
            mask = (arrivals >= fault.start) & (arrivals < fault.end)
            if not mask.any():
                continue
            if isinstance(fault, LatencyFault):
                services[mask] *= fault.multiplier
            else:
                services[mask] += fault.added_seconds
        return services

    def perturb(self, service: float, arrival: float) -> float:
        """Scalar-path twin of :meth:`perturb_batch`.

        Routes through the batch kernel with length-1 arrays so the
        scalar driver path performs the exact same float operations as
        the batched path — the bit-identity contract depends on this.
        """
        if not self._windows:
            return service
        svc = np.array([service], dtype=np.float64)
        arr = np.array([arrival], dtype=np.float64)
        self.perturb_batch(svc, arr)
        return float(svc[0])

    def point_faults_in(self, lo: float, hi: float) -> List[PointFault]:
        """Point faults firing in ``[lo, hi)``, sorted by time."""
        if not self._points:
            return []
        start = int(np.searchsorted(self._point_times, lo, side="left"))
        end = int(np.searchsorted(self._point_times, hi, side="left"))
        return list(self._points[start:end])
