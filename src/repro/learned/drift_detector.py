"""Distribution-drift detection.

Adaptive SUTs need a trigger for retraining. :class:`DriftDetector` keeps
a sliding reference window of observed access keys and compares the most
recent window against it with a two-sample Kolmogorov–Smirnov statistic
— the same test §V-D suggests for measuring data-distribution similarity.
A KS value above the threshold is reported as drift; the caller decides
whether to retrain and then calls :meth:`reset_reference`.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.observability import NULL_TRACER


class DriftVerdict(enum.Enum):
    """Outcome of a drift check."""

    INSUFFICIENT_DATA = "insufficient-data"
    STABLE = "stable"
    DRIFTED = "drifted"


class DriftDetector:
    """Two-window KS drift detector over a stream of keys.

    Args:
        window: Observations per window (reference and current).
        threshold: KS statistic above which drift is declared. With
            ``window`` samples per side, the ~99% critical value is
            about ``1.63 * sqrt(2 / window)``; the default threshold of
            0.15 is deliberately above that for typical windows so small
            fluctuations don't trigger retraining storms.
    """

    def __init__(self, window: int = 512, threshold: float = 0.15) -> None:
        if window < 16:
            raise ConfigurationError(f"window must be >= 16, got {window}")
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"threshold must be in (0,1), got {threshold}")
        self.window = window
        self.threshold = threshold
        self._reference: Optional[np.ndarray] = None
        self._current: Deque[float] = deque(maxlen=window)
        self._checks = 0
        self._drifts = 0
        # Observability sink; the owning SUT swaps in the run tracer via
        # ``attach_tracer``. Counters fire once per completed *check*
        # (every ``window`` keys), never per observation.
        self.tracer = NULL_TRACER

    @property
    def checks(self) -> int:
        """Number of completed drift checks."""
        return self._checks

    @property
    def drifts_detected(self) -> int:
        """Number of checks that reported drift."""
        return self._drifts

    def observe(self, key: float) -> DriftVerdict:
        """Feed one observed key; returns the verdict for this step.

        The first full window becomes the reference; afterwards, every
        time the current window fills, it is tested against the
        reference. Between check points the verdict is ``STABLE`` (or
        ``INSUFFICIENT_DATA`` before the reference exists).
        """
        self._current.append(float(key))
        if self._reference is None:
            if len(self._current) >= self.window:
                self._reference = np.sort(np.asarray(self._current))
                self._current.clear()
            return DriftVerdict.INSUFFICIENT_DATA
        if len(self._current) < self.window:
            return DriftVerdict.STABLE
        ks = self._ks(self._reference, np.sort(np.asarray(self._current)))
        self._current.clear()
        self._checks += 1
        self.tracer.counter("drift.checks")
        if ks > self.threshold:
            self._drifts += 1
            self.tracer.counter("drift.drifts_detected")
            return DriftVerdict.DRIFTED
        return DriftVerdict.STABLE

    def observe_many(self, keys) -> bool:
        """Feed many keys at once; return whether any check saw drift.

        Chunk-fills the current window to capacity and runs the same
        reference-adoption / KS-check logic as :meth:`observe`, so the
        sequence of checks (and the ``checks`` / ``drifts_detected``
        counters) is identical to feeding the keys one at a time.
        """
        keys = np.asarray(keys, dtype=np.float64)
        drifted = False
        i = 0
        n = keys.size
        while i < n:
            take = min(self.window - len(self._current), n - i)
            self._current.extend(keys[i : i + take].tolist())
            i += take
            if len(self._current) >= self.window:
                if self._reference is None:
                    self._reference = np.sort(np.asarray(self._current))
                    self._current.clear()
                else:
                    ks = self._ks(self._reference, np.sort(np.asarray(self._current)))
                    self._current.clear()
                    self._checks += 1
                    self.tracer.counter("drift.checks")
                    if ks > self.threshold:
                        self._drifts += 1
                        self.tracer.counter("drift.drifts_detected")
                        drifted = True
        return drifted

    def describe(self) -> dict:
        """JSON-friendly description of the detector's configuration.

        Exposes the detection ``window`` and ``threshold`` (plus the
        live check/drift counters) so drift-factor sweeps can correlate
        detection lag with drift intensity. Deliberately *not* folded
        into any SUT's ``describe()`` — that would perturb existing
        result-cache keys.
        """
        return {
            "kind": "DriftDetector",
            "window": self.window,
            "threshold": self.threshold,
            "checks": self._checks,
            "drifts_detected": self._drifts,
        }

    def last_window(self) -> np.ndarray:
        """A copy of the in-progress current window."""
        return np.asarray(self._current)

    def reset_reference(self, reference: Optional[np.ndarray] = None) -> None:
        """Adopt a new reference distribution (e.g., after retraining).

        Args:
            reference: Keys representing the new normal; when ``None``,
                the next full window observed becomes the reference.
        """
        if reference is not None and len(reference) > 0:
            self._reference = np.sort(np.asarray(reference, dtype=np.float64))
        else:
            self._reference = None
        self._current.clear()

    @staticmethod
    def _ks(a: np.ndarray, b: np.ndarray) -> float:
        grid = np.concatenate([a, b])
        grid.sort()
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        return float(np.abs(cdf_a - cdf_b).max())
