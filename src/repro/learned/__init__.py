"""Learned database components.

The component families §II of the paper surveys, each paired with a
traditional baseline so the benchmark can compare them:

* :mod:`~repro.learned.cardinality` — learned cardinality estimation
  (vs per-column histograms).
* :mod:`~repro.learned.optimizer` — learned optimizer steering à la Bao
  (vs the plain cost-based optimizer).
* :mod:`~repro.learned.sorter` — learned CDF sort (vs comparison sort).
* :mod:`~repro.learned.cache` — learned eviction (vs LRU/LFU).
* :mod:`~repro.learned.drift_detector` — distribution-change detection
  used by adaptive systems to trigger retraining.
* :mod:`~repro.learned.tuner` — automatic knob tuning (vs DBA effort).
"""

from repro.learned.cache import LearnedCache, LFUCache, LRUCache
from repro.learned.cardinality import (
    HistogramEstimator,
    LearnedCardinalityEstimator,
    TrueCardinalityOracle,
)
from repro.learned.drift_detector import DriftDetector, DriftVerdict
from repro.learned.optimizer import BanditPlanSteering, SteeringChoice
from repro.learned.sorter import LearnedSorter, SortReport
from repro.learned.tuner import KnobSpace, KnobTuner, TuningResult

__all__ = [
    "HistogramEstimator",
    "LearnedCardinalityEstimator",
    "TrueCardinalityOracle",
    "BanditPlanSteering",
    "SteeringChoice",
    "LearnedSorter",
    "SortReport",
    "LRUCache",
    "LFUCache",
    "LearnedCache",
    "DriftDetector",
    "DriftVerdict",
    "KnobSpace",
    "KnobTuner",
    "TuningResult",
]
