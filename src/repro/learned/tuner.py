"""Automatic knob tuning (the §II "tuning existing components" family).

A deliberately small stand-in for OtterTune-class systems (cited as
[11]-[13] in the paper): given a configuration space of discrete knobs
and a black-box objective (mean service time over a probe workload), the
tuner runs iterative best-neighbor search with an evaluation budget and
returns the best configuration found plus the full evaluation log.

The point for the benchmark is not tuning sophistication — it is that
*automatic* tuning has a measurable cost (evaluations × probe time) that
belongs in the same Fig 1d cost accounting as model training and DBA
hours, which :func:`tuning_cost_seconds` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.observability import NULL_TRACER

#: A configuration: knob name → chosen value.
Configuration = Dict[str, object]


@dataclass(frozen=True)
class KnobSpace:
    """Discrete knob space: each knob has an ordered list of settings."""

    knobs: Tuple[Tuple[str, Tuple[object, ...]], ...]

    @classmethod
    def of(cls, **knobs: Sequence[object]) -> "KnobSpace":
        """Build from keyword arguments: ``KnobSpace.of(order=(16, 64))``."""
        if not knobs:
            raise ConfigurationError("knob space cannot be empty")
        items = []
        for name, values in knobs.items():
            values = tuple(values)
            if len(values) < 1:
                raise ConfigurationError(f"knob {name!r} has no values")
            items.append((name, values))
        return cls(tuple(items))

    def default(self) -> Configuration:
        """First value of every knob."""
        return {name: values[0] for name, values in self.knobs}

    def neighbors(self, config: Configuration) -> List[Configuration]:
        """All configurations differing from ``config`` in one knob step."""
        out: List[Configuration] = []
        for name, values in self.knobs:
            index = values.index(config[name])
            for step in (-1, 1):
                j = index + step
                if 0 <= j < len(values):
                    neighbor = dict(config)
                    neighbor[name] = values[j]
                    out.append(neighbor)
        return out

    def size(self) -> int:
        """Total number of configurations."""
        total = 1
        for _, values in self.knobs:
            total *= len(values)
        return total


@dataclass
class TuningResult:
    """Outcome of a tuning session.

    Attributes:
        best: The best configuration found.
        best_score: Its objective value (lower is better).
        evaluations: Every (configuration, score) pair evaluated, in
            order — the tuner's cost trail.
        converged: Whether search stopped at a local optimum (vs budget
            exhaustion).
    """

    best: Configuration
    best_score: float
    evaluations: List[Tuple[Configuration, float]] = field(default_factory=list)
    converged: bool = False

    @property
    def evaluation_count(self) -> int:
        """Number of objective evaluations performed."""
        return len(self.evaluations)


class KnobTuner:
    """Iterative best-neighbor search over a discrete knob space.

    Args:
        space: The knob space.
        objective: Configuration → score (lower is better). Typically
            mean service time of a probe workload on a store built with
            that configuration.
        budget: Maximum objective evaluations.
        tracer: Observability sink; a tuning session is a train-phase
            span and every objective probe increments
            ``tuner.evaluations`` (the Fig-1d cost trail, measured).
    """

    def __init__(
        self,
        space: KnobSpace,
        objective: Callable[[Configuration], float],
        budget: int = 32,
        tracer=None,
    ) -> None:
        if budget < 1:
            raise ConfigurationError("budget must be >= 1")
        self.space = space
        self.objective = objective
        self.budget = budget
        self.tracer = NULL_TRACER if tracer is None else tracer

    def tune(self, start: Configuration = None) -> TuningResult:
        """Run the search from ``start`` (default: the knob defaults)."""
        with self.tracer.span("tuner.tune", phase="train"):
            result = self._tune(start)
        self.tracer.counter("tuner.sessions")
        self.tracer.counter("tuner.evaluations", result.evaluation_count)
        return result

    def _tune(self, start: Configuration = None) -> TuningResult:
        current = dict(start) if start is not None else self.space.default()
        evaluations: List[Tuple[Configuration, float]] = []
        seen: Dict[Tuple, float] = {}

        def score(config: Configuration) -> float:
            key = tuple(sorted(config.items()))
            if key not in seen:
                seen[key] = float(self.objective(config))
                evaluations.append((dict(config), seen[key]))
            return seen[key]

        best = current
        best_score = score(best)
        converged = False
        while len(evaluations) < self.budget:
            candidates = [
                c for c in self.space.neighbors(best)
                if tuple(sorted(c.items())) not in seen
            ]
            if not candidates:
                converged = True
                break
            improved = False
            for candidate in candidates:
                if len(evaluations) >= self.budget:
                    break
                value = score(candidate)
                if value < best_score:
                    best, best_score = candidate, value
                    improved = True
            if not improved:
                converged = True
                break
        return TuningResult(
            best=best,
            best_score=best_score,
            evaluations=evaluations,
            converged=converged,
        )


def tuning_cost_seconds(result: TuningResult, probe_seconds: float) -> float:
    """Total tuning cost: evaluations × probe duration.

    This is the automated analogue of DBA hours for Fig 1d: plug it into
    :func:`repro.metrics.cost.training_cost_to_outperform` alongside the
    manual step function.
    """
    if probe_seconds < 0:
        raise ConfigurationError("probe_seconds must be >= 0")
    return result.evaluation_count * probe_seconds
