"""Learned optimizer steering (Bao-style contextual bandit).

Marcus et al.'s Bao — cited by the paper as "learning to tune an existing
query optimizer" — treats a set of optimizer hints as bandit arms and
learns, per query context, which arm produces the fastest plan. This
module implements that scheme over our cost-based optimizer:

* Arms restrict the optimizer's physical choices (force hash joins,
  force nested loops, trust the estimator, or a pessimistic mode that
  inflates join estimates).
* Context is a small feature vector of the query (tables touched, filter
  count, estimated base rows).
* Thompson sampling over per-arm Bayesian linear models picks the arm;
  the observed execution work is the (negative) reward.

The steering improves *with each executed query* — online learning whose
transient cost is precisely what the paper's adaptability metrics (Fig
1b/1c) are designed to expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.optimizer_base import CardinalityEstimator, CostBasedOptimizer, PlanCost
from repro.engine.plans import Filter, Join, LogicalPlan
from repro.observability import NULL_TRACER


class _ScaledEstimator:
    """Wraps an estimator, multiplying join estimates by a factor."""

    def __init__(self, inner: CardinalityEstimator, join_factor: float) -> None:
        self._inner = inner
        self._join_factor = join_factor

    def estimate(self, plan: LogicalPlan, catalog: Catalog) -> float:
        value = self._inner.estimate(plan, catalog)
        if isinstance(plan, Join):
            value *= self._join_factor
        return value


@dataclass(frozen=True)
class SteeringChoice:
    """The outcome of one steering decision.

    Attributes:
        arm: Index of the chosen arm.
        arm_name: Human-readable arm label.
        plan_cost: The optimizer's costed plan under that arm.
    """

    arm: int
    arm_name: str
    plan_cost: PlanCost


class _BayesianLinearArm:
    """Bayesian linear regression head for one arm (Thompson sampling)."""

    def __init__(self, dim: int, noise: float = 1.0, prior: float = 1.0) -> None:
        self._A = np.eye(dim) / prior
        self._b = np.zeros(dim)
        self._noise = noise

    def sample_prediction(self, x: np.ndarray, rng: np.random.Generator) -> float:
        cov = np.linalg.inv(self._A)
        mean = cov @ self._b
        theta = rng.multivariate_normal(mean, self._noise * cov)
        return float(theta @ x)

    def update(self, x: np.ndarray, reward: float) -> None:
        self._A += np.outer(x, x)
        self._b += reward * x


class BanditPlanSteering:
    """Thompson-sampling plan steering over optimizer hint arms.

    Args:
        estimator: Base cardinality estimator shared by all arms.
        seed: RNG seed for Thompson sampling.
        exploration_noise: Observation-noise scale (higher explores more).
    """

    #: (name, join-method restriction, join-estimate inflation factor).
    ARMS: List[Tuple[str, Optional[str], float]] = [
        ("default", None, 1.0),
        ("force-hash", "hash", 1.0),
        ("force-nl", "nl", 1.0),
        ("pessimistic", None, 10.0),
    ]

    _FEATURE_DIM = 5

    def __init__(
        self,
        estimator: CardinalityEstimator,
        seed: int = 0,
        exploration_noise: float = 1.0,
    ) -> None:
        self._estimator = estimator
        self._rng = np.random.default_rng(seed)
        self._arms = [
            _BayesianLinearArm(self._FEATURE_DIM, noise=exploration_noise)
            for _ in self.ARMS
        ]
        self._decisions = 0
        self._arm_counts = [0] * len(self.ARMS)
        # Observability sink; the owning SUT swaps in the run tracer.
        self.tracer = NULL_TRACER

    @property
    def decisions(self) -> int:
        """Number of steering decisions made."""
        return self._decisions

    @property
    def arm_counts(self) -> List[int]:
        """How many times each arm has been chosen."""
        return list(self._arm_counts)

    def reset_learning(self) -> None:
        """Forget learned rewards (used after detected drift)."""
        noise = 1.0
        self._arms = [
            _BayesianLinearArm(self._FEATURE_DIM, noise=noise) for _ in self.ARMS
        ]

    # -- features ---------------------------------------------------------------

    def _featurize(self, plan: LogicalPlan, catalog: Catalog) -> np.ndarray:
        joins = 0
        filters = 0
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, Join):
                joins += 1
            elif isinstance(node, Filter):
                filters += 1
            stack.extend(node.children())
        tables = plan.tables()
        total_rows = sum(catalog.row_count(t) for t in tables if t in catalog)
        return np.asarray(
            [1.0, float(joins), float(filters), float(len(tables)), np.log1p(total_rows)]
        )

    # -- choose / learn --------------------------------------------------------------

    def _optimizer_for_arm(self, arm: int) -> CostBasedOptimizer:
        _, method, join_factor = self.ARMS[arm]
        estimator: CardinalityEstimator = self._estimator
        if join_factor != 1.0:
            estimator = _ScaledEstimator(estimator, join_factor)
        return CostBasedOptimizer(estimator)

    def _restrict(self, plan: LogicalPlan, method: Optional[str]) -> LogicalPlan:
        """Force all joins in ``plan`` to ``method`` (when set)."""
        if method is None:
            return plan
        if isinstance(plan, Join):
            return Join(
                self._restrict(plan.left, method),
                self._restrict(plan.right, method),
                plan.left_col,
                plan.right_col,
                method,
            )
        if isinstance(plan, Filter):
            return Filter(self._restrict(plan.child, method), plan.predicate)
        for_children = plan.children()
        if not for_children:
            return plan
        # Project/Aggregate: single child.
        import copy

        clone = copy.copy(plan)
        clone.child = self._restrict(for_children[0], method)  # type: ignore[attr-defined]
        return clone

    def choose(self, plan: LogicalPlan, catalog: Catalog) -> SteeringChoice:
        """Pick an arm via Thompson sampling and produce its plan."""
        x = self._featurize(plan, catalog)
        sampled = [arm.sample_prediction(x, self._rng) for arm in self._arms]
        best_arm = int(np.argmax(sampled))
        name, method, _ = self.ARMS[best_arm]
        optimizer = self._optimizer_for_arm(best_arm)
        candidate = self._restrict(plan, method)
        plan_cost = optimizer.optimize(candidate, catalog)
        self._decisions += 1
        self._arm_counts[best_arm] += 1
        self.tracer.counter("optimizer.decisions")
        return SteeringChoice(arm=best_arm, arm_name=name, plan_cost=plan_cost)

    def learn(
        self, choice: SteeringChoice, observed_work: float, plan: LogicalPlan,
        catalog: Catalog,
    ) -> None:
        """Feed back the observed execution work for a past decision."""
        x = self._featurize(plan, catalog)
        # Reward = negative log work (smaller work is better).
        reward = -float(np.log1p(max(0.0, observed_work)))
        self._arms[choice.arm].update(x, reward)
        self.tracer.counter("optimizer.learn_updates")
