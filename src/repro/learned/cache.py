"""Caches: LRU and LFU baselines vs a learned eviction policy.

§II of the paper lists "learning-based caches" among the actively
explored learned components. The learned policy here predicts each key's
reuse likelihood from its observed inter-access intervals (an online
exponential-average reuse-distance estimate) and evicts the key whose
next access is predicted farthest away — an implementable approximation
of Belady's MIN driven by learned per-key statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / total accesses (0 when never accessed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _BaseCache:
    """Shared plumbing for the fixed-capacity caches."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()

    def __len__(self) -> int:  # pragma: no cover - overridden semantics
        raise NotImplementedError


class LRUCache(_BaseCache):
    """Least-recently-used eviction."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any) -> Optional[Any]:
        """Value for ``key`` or None; updates recency on hit."""
        if key in self._data:
            self._data.move_to_end(key)
            self.stats.hits += 1
            return self._data[key]
        self.stats.misses += 1
        return None

    def put(self, key: Any, value: Any) -> None:
        """Insert/refresh ``key``; evicts the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)


class LFUCache(_BaseCache):
    """Least-frequently-used eviction (ties broken by recency)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._data: Dict[Any, Any] = {}
        self._freq: Dict[Any, int] = {}
        self._clock = 0
        self._last_used: Dict[Any, int] = {}

    def get(self, key: Any) -> Optional[Any]:
        """Value for ``key`` or None; bumps frequency on hit."""
        self._clock += 1
        if key in self._data:
            self._freq[key] += 1
            self._last_used[key] = self._clock
            self.stats.hits += 1
            return self._data[key]
        self.stats.misses += 1
        return None

    def put(self, key: Any, value: Any) -> None:
        """Insert/refresh ``key``; evicts the LFU entry when full."""
        self._clock += 1
        if key not in self._data and len(self._data) >= self.capacity:
            victim = min(self._data, key=lambda k: (self._freq[k], self._last_used[k]))
            del self._data[victim]
            del self._freq[victim]
            del self._last_used[victim]
            self.stats.evictions += 1
        self._data[key] = value
        self._freq[key] = self._freq.get(key, 0) + 1
        self._last_used[key] = self._clock

    def __len__(self) -> int:
        return len(self._data)


class LearnedCache(_BaseCache):
    """Evicts the key with the largest predicted next-access distance.

    Maintains, per key, an exponential moving average of the inter-access
    interval (in accesses). The predicted next access of a key is
    ``last_access + ema_interval``; eviction removes the key whose
    prediction lies farthest in the future. Keys never re-seen inherit a
    pessimistic default, so one-hit wonders get evicted early — the main
    advantage over LRU on scan-polluted workloads.

    Args:
        capacity: Maximum resident entries.
        ema_alpha: Smoothing for the interval estimate (0..1, higher =
            faster adaptation).
    """

    def __init__(self, capacity: int, ema_alpha: float = 0.3) -> None:
        super().__init__(capacity)
        if not 0.0 < ema_alpha <= 1.0:
            raise ConfigurationError(f"ema_alpha must be in (0,1], got {ema_alpha}")
        self._data: Dict[Any, Any] = {}
        self._last_access: Dict[Any, int] = {}
        self._ema_interval: Dict[Any, float] = {}
        self._alpha = ema_alpha
        self._clock = 0

    def _observe(self, key: Any) -> None:
        if key in self._last_access:
            interval = float(self._clock - self._last_access[key])
            prev = self._ema_interval.get(key)
            if prev is None:
                self._ema_interval[key] = interval
            else:
                self._ema_interval[key] = (1 - self._alpha) * prev + self._alpha * interval
        self._last_access[key] = self._clock

    def get(self, key: Any) -> Optional[Any]:
        """Value for ``key`` or None; updates the reuse model either way."""
        self._clock += 1
        self._observe(key)
        if key in self._data:
            self.stats.hits += 1
            return self._data[key]
        self.stats.misses += 1
        return None

    def _predicted_next(self, key: Any) -> float:
        last = self._last_access.get(key, self._clock)
        # Unseen-again keys: assume a long interval (2x capacity).
        interval = self._ema_interval.get(key, 2.0 * self.capacity)
        return last + interval

    def put(self, key: Any, value: Any) -> None:
        """Insert/refresh ``key``; evicts the farthest-future key when full."""
        self._clock += 1
        # The miss-get immediately before a put already observed this key;
        # observing again would inject a bogus interval of ~1 access and
        # make chronically-missing keys look hot.
        if self._last_access.get(key) == self._clock - 1:
            self._last_access[key] = self._clock
        else:
            self._observe(key)
        if key not in self._data and len(self._data) >= self.capacity:
            victim = max(self._data, key=self._predicted_next)
            del self._data[victim]
            self.stats.evictions += 1
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)
