"""Cardinality estimation: traditional histograms vs a learned model.

Three estimators, all satisfying the
:class:`repro.engine.optimizer_base.CardinalityEstimator` protocol:

* :class:`HistogramEstimator` — per-column equi-width histograms with the
  classical independence assumption for conjunctions; the "traditional
  system" baseline.
* :class:`LearnedCardinalityEstimator` — featurizes a query's predicate
  ranges and regresses log-cardinality by online gradient descent; it is
  *supervised*, trained on (query, true-cardinality) labels. The paper's
  §IV highlights that collecting those labels has a measurable cost, so
  the estimator accounts every label it consumes in
  :attr:`label_collection_rows`.
* :class:`TrueCardinalityOracle` — returns exact cardinalities by
  executing the plan; the upper bound ("perfect estimates") used in
  ablations, with its own (large) accounted cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.plans import (
    Aggregate,
    Filter,
    Join,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)
from repro.engine.schema import ColumnType
from repro.errors import NotTrainedError


class HistogramEstimator:
    """Per-column equi-width histograms + independence assumption.

    Call :meth:`analyze` after loading (or significantly changing) a
    table, mirroring a DBMS's ``ANALYZE``. Unanalyzed columns fall back
    to magic selectivity constants — the classical failure mode under
    data drift that learned estimators are meant to fix.
    """

    #: Default selectivity for predicates on unanalyzed columns.
    DEFAULT_SELECTIVITY = 0.1

    def __init__(self, buckets: int = 32) -> None:
        self.buckets = buckets
        self._hist: Dict[Tuple[str, str], Tuple[np.ndarray, np.ndarray]] = {}
        self._distinct: Dict[Tuple[str, str], int] = {}

    def analyze(self, catalog: Catalog, table_name: str) -> None:
        """Build histograms for every numeric column of ``table_name``."""
        table = catalog.get(table_name)
        for col in table.schema.columns:
            if col.ctype == ColumnType.STRING:
                continue
            data = np.asarray(table.column(col.name), dtype=np.float64)
            if data.size == 0:
                continue
            counts, edges = np.histogram(data, bins=self.buckets)
            self._hist[(table_name, col.name)] = (counts.astype(np.float64), edges)
            self._distinct[(table_name, col.name)] = int(len(np.unique(data)))

    # -- selectivity ----------------------------------------------------------

    def _column_selectivity(
        self, table: str, column: str, op: str, value: float
    ) -> float:
        key = (table, column)
        if key not in self._hist:
            return self.DEFAULT_SELECTIVITY
        counts, edges = self._hist[key]
        total = counts.sum()
        if total <= 0:
            return self.DEFAULT_SELECTIVITY
        if op == "=":
            distinct = max(1, self._distinct.get(key, 1))
            return 1.0 / distinct
        if op in ("<", "<="):
            mass = counts[edges[1:] <= value].sum()
            partial_bucket = np.searchsorted(edges, value) - 1
            if 0 <= partial_bucket < len(counts) and edges[partial_bucket + 1] > value:
                width = edges[partial_bucket + 1] - edges[partial_bucket]
                frac = (value - edges[partial_bucket]) / max(width, 1e-12)
                mass += counts[partial_bucket] * np.clip(frac, 0.0, 1.0)
            return float(np.clip(mass / total, 0.0, 1.0))
        if op in (">", ">="):
            return float(
                np.clip(1.0 - self._column_selectivity(table, column, "<=", value), 0.0, 1.0)
            )
        if op == "!=":
            return 1.0 - self._column_selectivity(table, column, "=", value)
        return self.DEFAULT_SELECTIVITY

    def _predicate_selectivity(self, plan: Filter, table_names: List[str]) -> float:
        leaves = plan.predicate.selectivity_features()
        if not leaves:
            return self.DEFAULT_SELECTIVITY
        selectivity = 1.0
        for column, op, value in leaves:
            best = self.DEFAULT_SELECTIVITY
            for table in table_names:
                if (table, column) in self._hist:
                    best = self._column_selectivity(table, column, op, value)
                    break
            selectivity *= best
        return float(np.clip(selectivity, 1e-9, 1.0))

    # -- CardinalityEstimator protocol ---------------------------------------------

    def estimate(self, plan: LogicalPlan, catalog: Catalog) -> float:
        """Estimated output cardinality of ``plan``."""
        if isinstance(plan, Scan):
            return float(catalog.row_count(plan.table_name))
        if isinstance(plan, Filter):
            child = self.estimate(plan.children()[0], catalog)
            return child * self._predicate_selectivity(plan, plan.tables())
        if isinstance(plan, (Project, Sort)):
            return self.estimate(plan.children()[0], catalog)
        if isinstance(plan, Aggregate):
            return 1.0
        if isinstance(plan, Join):
            left = self.estimate(plan.left, catalog)
            right = self.estimate(plan.right, catalog)
            # Classic equi-join estimate: |L||R| / max(ndv_left, ndv_right).
            ndv = 1.0
            for table in plan.tables():
                for column in (plan.left_col, plan.right_col):
                    key = (table, column)
                    if key in self._distinct:
                        ndv = max(ndv, float(self._distinct[key]))
            return max(1.0, left * right / ndv)
        return 1.0


@dataclass
class _TrainingExample:
    """One supervised example: feature vector and log-cardinality label."""

    features: np.ndarray
    log_card: float


class LearnedCardinalityEstimator:
    """Online linear regression over query features → log cardinality.

    Features per tracked column: normalized range bounds implied by the
    query's predicates. Join presence and table sizes enter as extra
    features. Training examples arrive via :meth:`observe` (ground-truth
    cardinalities from executed plans) and the model performs mini-batch
    gradient steps; the label-collection footprint is accounted in
    :attr:`label_collection_rows` per §IV of the paper.

    Args:
        tracked_columns: Numeric columns featurized as range bounds.
        learning_rate: SGD step size.
        l2: Ridge regularization strength.
    """

    def __init__(
        self,
        tracked_columns: List[Tuple[str, str]],
        learning_rate: float = 0.05,
        l2: float = 1e-4,
    ) -> None:
        self.tracked_columns = list(tracked_columns)
        self.learning_rate = learning_rate
        self.l2 = l2
        self._bounds: Dict[Tuple[str, str], Tuple[float, float]] = {}
        # Features: [bias, join?, log(left rows), log(right rows)] +
        # [lo, hi, hi-lo] per tracked column.
        self._dim = 4 + 3 * len(self.tracked_columns)
        self._weights = np.zeros(self._dim, dtype=np.float64)
        self._trained_examples = 0
        self.label_collection_rows = 0

    @property
    def trained_examples(self) -> int:
        """Number of supervised examples consumed so far."""
        return self._trained_examples

    def bind_statistics(self, catalog: Catalog) -> None:
        """Record column min/max for feature normalization."""
        for table, column in self.tracked_columns:
            if table in catalog:
                tbl = catalog.get(table)
                if tbl.schema.has(column) and tbl.row_count:
                    self._bounds[(table, column)] = tbl.numeric_stats(column)

    # -- featurization -------------------------------------------------------------

    def featurize(self, plan: LogicalPlan, catalog: Catalog) -> np.ndarray:
        """Feature vector for ``plan``."""
        features = np.zeros(self._dim, dtype=np.float64)
        features[0] = 1.0  # bias
        joins = self._collect_joins(plan)
        features[1] = float(len(joins) > 0)
        tables = plan.tables()
        sizes = sorted(
            (float(catalog.row_count(t)) for t in tables if t in catalog), reverse=True
        )
        features[2] = np.log1p(sizes[0]) if sizes else 0.0
        features[3] = np.log1p(sizes[1]) if len(sizes) > 1 else 0.0
        ranges = self._collect_ranges(plan)
        for i, key in enumerate(self.tracked_columns):
            lo_n, hi_n = 0.0, 1.0
            if key in ranges:
                lo, hi = ranges[key]
                bound = self._bounds.get(key)
                if bound and bound[1] > bound[0]:
                    span = bound[1] - bound[0]
                    lo_n = float(np.clip((lo - bound[0]) / span, 0.0, 1.0))
                    hi_n = float(np.clip((hi - bound[0]) / span, 0.0, 1.0))
            base = 4 + 3 * i
            features[base] = lo_n
            features[base + 1] = hi_n
            features[base + 2] = max(0.0, hi_n - lo_n)
        return features

    @staticmethod
    def _collect_joins(plan: LogicalPlan) -> List[Join]:
        out = []
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, Join):
                out.append(node)
            stack.extend(node.children())
        return out

    def _collect_ranges(
        self, plan: LogicalPlan
    ) -> Dict[Tuple[str, str], Tuple[float, float]]:
        """Range bounds per tracked column implied by the plan's filters."""
        ranges: Dict[Tuple[str, str], Tuple[float, float]] = {}
        stack = [plan]
        filters: List[Filter] = []
        while stack:
            node = stack.pop()
            if isinstance(node, Filter):
                filters.append(node)
            stack.extend(node.children())
        for filt in filters:
            tables = filt.tables()
            for column, op, value in filt.predicate.selectivity_features():
                for table in tables:
                    key = (table, column)
                    if key not in dict.fromkeys(
                        (t, c) for t, c in self.tracked_columns
                    ):
                        continue
                    lo, hi = ranges.get(key, (-np.inf, np.inf))
                    if op in (">", ">="):
                        lo = max(lo, value)
                    elif op in ("<", "<="):
                        hi = min(hi, value)
                    elif op == "=":
                        lo, hi = value, value
                    ranges[key] = (lo, hi)
        # Replace infinities with the column bounds.
        out: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for key, (lo, hi) in ranges.items():
            bound = self._bounds.get(key, (0.0, 1.0))
            out[key] = (
                bound[0] if not np.isfinite(lo) else lo,
                bound[1] if not np.isfinite(hi) else hi,
            )
        return out

    # -- training -----------------------------------------------------------------

    def observe(
        self, plan: LogicalPlan, true_cardinality: float, catalog: Catalog
    ) -> None:
        """Consume one ground-truth label; take a normalized-LMS step.

        The step is normalized by the feature norm (NLMS), which keeps the
        online update stable regardless of feature scale.
        """
        features = self.featurize(plan, catalog)
        target = float(np.log1p(max(0.0, true_cardinality)))
        prediction = float(self._weights @ features)
        error = prediction - target
        norm = float(features @ features) + 1e-9
        self._weights -= self.learning_rate * (error / norm) * features
        self._weights -= self.learning_rate * self.l2 * self._weights
        self._trained_examples += 1
        self.label_collection_rows += int(true_cardinality)

    def train_batch(
        self,
        plans: List[LogicalPlan],
        cards: List[float],
        catalog: Catalog,
        epochs: int = 30,
    ) -> float:
        """Batch-train on labeled plans; returns final mean abs log error.

        Uses the closed-form ridge solution (the model is linear, so one
        solve dominates any number of gradient epochs); ``epochs`` is kept
        for interface stability but ignored.
        """
        examples = [
            _TrainingExample(self.featurize(p, catalog), float(np.log1p(max(0.0, c))))
            for p, c in zip(plans, cards)
        ]
        if not examples:
            return 0.0
        X = np.stack([e.features for e in examples])
        y = np.asarray([e.log_card for e in examples])
        gram = X.T @ X + self.l2 * len(examples) * np.eye(self._dim)
        self._weights = np.linalg.solve(gram, X.T @ y)
        self._trained_examples += len(examples)
        self.label_collection_rows += int(sum(cards))
        final = np.abs(X @ self._weights - y).mean()
        return float(final)

    # -- CardinalityEstimator protocol ----------------------------------------------

    def estimate(self, plan: LogicalPlan, catalog: Catalog) -> float:
        """Predicted cardinality (>= 0)."""
        if self._trained_examples == 0:
            raise NotTrainedError(
                "LearnedCardinalityEstimator.estimate before any training"
            )
        features = self.featurize(plan, catalog)
        log_card = float(self._weights @ features)
        return float(max(0.0, np.expm1(np.clip(log_card, 0.0, 30.0))))

    def q_error(self, plan: LogicalPlan, true_cardinality: float, catalog: Catalog) -> float:
        """Q-error of the model on one labeled plan (>= 1)."""
        est = max(1.0, self.estimate(plan, catalog))
        true = max(1.0, float(true_cardinality))
        return float(max(est / true, true / est))


class TrueCardinalityOracle:
    """Exact cardinalities by executing the plan (ablation upper bound).

    Every estimate executes the plan, so the accounted cost
    (:attr:`rows_executed`) grows quickly — the point the paper makes
    about ground-truth collection being expensive.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._executor = Executor(catalog)
        self.rows_executed = 0

    def estimate(self, plan: LogicalPlan, catalog: Catalog) -> float:
        """True output cardinality of ``plan`` (via execution)."""
        result = self._executor.execute(plan)
        self.rows_executed += int(result.work)
        return float(result.table.row_count)
