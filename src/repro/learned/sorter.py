"""Learned sorting (Kristo et al., "The Case for a Learned Sorting
Algorithm", SIGMOD 2020 — cited in §II of the paper).

A CDF model trained on a sample routes each record to a bucket in one
pass; because the CDF is monotone, buckets are totally ordered, so
sorting each bucket independently and concatenating yields the final
order. When the model fits the data well, buckets are balanced and the
per-bucket sorts are nearly free; when the data distribution shifts away
from the training sample, buckets become unbalanced and the learned sort
loses its edge — the same specialize-vs-adapt trade-off the benchmark
measures for whole systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.indexes.models import CDFModel


@dataclass(frozen=True)
class SortReport:
    """Work accounting for one learned-sort invocation.

    Attributes:
        n: Input size.
        model_placements: Records routed via the CDF model (= n).
        touchup_moves: Within-bucket sorting work, in element-move units
            (insertion-sort moves for small buckets; ``b*log2(b)`` units
            for overflowing buckets handled by comparison-sort fallback).
        overflow_buckets: Buckets too large for insertion sort (a symptom
            of model/data mismatch).
        max_bucket_fill: Largest bucket size relative to the balanced
            target (1.0 = perfectly balanced).
    """

    n: int
    model_placements: int
    touchup_moves: int
    overflow_buckets: int
    max_bucket_fill: float

    @property
    def work_units(self) -> float:
        """Abstract work: placements + within-bucket sorting moves."""
        return float(self.model_placements + self.touchup_moves)


class LearnedSorter:
    """CDF-model bucket sort with per-bucket touch-up.

    Args:
        sample_size: Training-sample size drawn from the input when
            :meth:`fit` has not been called with external data (e.g.,
            yesterday's keys — how the drift experiments use it).
        bucket_size: Target records per bucket; buckets beyond
            ``overflow_factor`` times this fall back to comparison sort.
        overflow_factor: Insertion-sort cutoff multiplier.
    """

    def __init__(
        self,
        sample_size: int = 2048,
        bucket_size: int = 16,
        overflow_factor: float = 4.0,
    ) -> None:
        if sample_size < 2:
            raise ConfigurationError("sample_size must be >= 2")
        if bucket_size < 2:
            raise ConfigurationError("bucket_size must be >= 2")
        if overflow_factor < 1.0:
            raise ConfigurationError("overflow_factor must be >= 1.0")
        self.sample_size = sample_size
        self.bucket_size = bucket_size
        self.overflow_factor = overflow_factor
        self._model: Optional[CDFModel] = None

    @property
    def is_fitted(self) -> bool:
        """Whether a CDF model is available."""
        return self._model is not None

    def fit(self, sample: Sequence[float]) -> "LearnedSorter":
        """Train the CDF model on ``sample``."""
        self._model = CDFModel(sample)
        return self

    def sort(
        self, data: Sequence[float], rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, SortReport]:
        """Sort ``data``; returns ``(sorted array, SortReport)``.

        Trains on a random sample of the input when :meth:`fit` has not
        been called.
        """
        arr = np.asarray(list(data), dtype=np.float64)
        n = int(arr.size)
        if n == 0:
            return arr, SortReport(0, 0, 0, 0, 0.0)
        model = self._model
        if model is None:
            rng = rng or np.random.default_rng(0)
            take = min(self.sample_size, n)
            model = CDFModel(rng.choice(arr, size=take, replace=False))
        n_buckets = max(1, n // self.bucket_size)
        bucket_ids = np.minimum(
            (model.predict_array(arr) * n_buckets).astype(np.int64), n_buckets - 1
        )
        # Group values by bucket (monotone CDF => buckets are ordered).
        order = np.argsort(bucket_ids, kind="stable")
        sorted_ids = bucket_ids[order]
        grouped = arr[order]
        boundaries = np.searchsorted(sorted_ids, np.arange(n_buckets + 1))
        cutoff = int(self.bucket_size * self.overflow_factor)
        moves = 0
        overflow = 0
        max_fill = 0.0
        pieces: List[np.ndarray] = []
        for b in range(n_buckets):
            lo, hi = int(boundaries[b]), int(boundaries[b + 1])
            size = hi - lo
            if size == 0:
                continue
            max_fill = max(max_fill, size / self.bucket_size)
            chunk = grouped[lo:hi]
            if size <= cutoff:
                sorted_chunk, chunk_moves = _insertion_sort(chunk)
                moves += chunk_moves
            else:
                overflow += 1
                sorted_chunk = np.sort(chunk)
                moves += int(np.ceil(size * np.log2(max(2, size))))
            pieces.append(sorted_chunk)
        result = np.concatenate(pieces) if pieces else arr[:0]
        report = SortReport(
            n=n,
            model_placements=n,
            touchup_moves=int(moves),
            overflow_buckets=overflow,
            max_bucket_fill=float(max_fill),
        )
        return result, report


def _insertion_sort(arr: np.ndarray) -> Tuple[np.ndarray, int]:
    """Insertion sort, counting element moves. O(size + inversions)."""
    out = arr.copy()
    moves = 0
    for i in range(1, out.size):
        value = out[i]
        j = i - 1
        while j >= 0 and out[j] > value:
            out[j + 1] = out[j]
            j -= 1
            moves += 1
        out[j + 1] = value
    return out, moves


def comparison_sort_work(n: int) -> float:
    """Abstract work units for a classical comparison sort of size n."""
    if n <= 1:
        return float(n)
    return float(n * np.log2(n))
