"""Concrete systems under test.

Key-value SUTs (driven by :class:`repro.core.driver.VirtualClockDriver`):

* :class:`~repro.suts.kv_learned.LearnedKVStore` — workload-specialized
  RMI with drift detection and online/offline retraining.
* :class:`~repro.suts.kv_learned.StaticLearnedKVStore` — the same store
  with adaptation disabled (the Lesson-1 overfitting strawman).
* :class:`~repro.suts.kv_traditional.TraditionalKVStore` — B+ tree store
  with step-wise DBA tuning levels.
* :class:`~repro.suts.kv_traditional.HashKVStore` — hash-index store.

Analytic SUTs (driven by :class:`repro.suts.analytic.AnalyticDriver`):

* :class:`~repro.suts.analytic.LearnedOptimizerSUT` — bandit-steered
  optimizer over the relational engine.
* :class:`~repro.suts.analytic.TraditionalOptimizerSUT` — cost-based
  optimizer with histogram cardinalities.
"""

from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticQuery,
    AnalyticSUT,
    LearnedOptimizerSUT,
    TraditionalOptimizerSUT,
)
from repro.suts.cost_models import WORK_UNIT_SECONDS, KVCostModel
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import HashKVStore, TraditionalKVStore
from repro.suts.kv_variants import AlexKVStore, PGMKVStore

__all__ = [
    "KVCostModel",
    "WORK_UNIT_SECONDS",
    "LearnedKVStore",
    "StaticLearnedKVStore",
    "TraditionalKVStore",
    "HashKVStore",
    "AlexKVStore",
    "PGMKVStore",
    "AnalyticDriver",
    "AnalyticQuery",
    "AnalyticSUT",
    "LearnedOptimizerSUT",
    "TraditionalOptimizerSUT",
]
