"""Traditional key-value systems under test.

:class:`TraditionalKVStore` is the B+ tree system the learned stores are
compared against. It never trains; instead, a database administrator can
raise its *tuning level* (§V-D3's step function of manual optimization
effort), each step buying a fixed service-time speedup — page-size,
fill-factor, and cache tuning rolled into one knob. The Fig 1d experiment
prices those steps with :class:`repro.metrics.cost.DBAModel`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.indexes.btree import BPlusTree
from repro.indexes.hashindex import HashIndex
from repro.suts.cost_models import KVCostModel
from repro.suts.kv_base import KVStoreBase


class TraditionalKVStore(KVStoreBase):
    """B+ tree key-value store with DBA tuning levels.

    Args:
        name: SUT name (defaults to ``btree-kv``).
        order: B+ tree fanout.
        tuning_level: Initial DBA tuning level (0 = shipped defaults).
        cost_model: Cost constants (shared across compared SUTs).
    """

    def __init__(
        self,
        name: str = "btree-kv",
        order: int = 64,
        tuning_level: int = 0,
        cost_model: Optional[KVCostModel] = None,
    ) -> None:
        model = cost_model or KVCostModel()
        if not 0 <= tuning_level < len(model.tuning_speedups):
            raise ConfigurationError(
                f"tuning_level must be in [0, {len(model.tuning_speedups)}), "
                f"got {tuning_level}"
            )
        super().__init__(
            name, BPlusTree(order=order), cost_model=model, tuning_level=tuning_level
        )

    def tune(self, level: int) -> None:
        """Apply DBA tuning up to ``level`` (monotone; cannot untune)."""
        if not 0 <= level < len(self.cost_model.tuning_speedups):
            raise ConfigurationError(f"invalid tuning level {level}")
        self.tuning_level = max(self.tuning_level, level)


class HashKVStore(KVStoreBase):
    """Hash-index store: O(1) points, catastrophic scans.

    Included so scan-heavy scenarios (YCSB-E) have the classical
    structure-mismatch baseline.
    """

    def __init__(
        self, name: str = "hash-kv", cost_model: Optional[KVCostModel] = None
    ) -> None:
        super().__init__(name, HashIndex(), cost_model=cost_model)
