"""Learned key-value systems under test.

:class:`LearnedKVStore` is the adaptive learned system of the paper's
narrative: a workload-specialized RMI whose leaf capacity follows the
observed access distribution, a KS drift detector watching the query
stream, and a retraining policy that rebuilds the models (charging real
training time) when the distribution moves.

Training budget → model quality is a real mechanism, not a curve: the
offline budget buys leaf-model fanout; fewer leaves mean wider measured
error bounds mean more storage blocks touched per lookup. Fig 1d sweeps
exactly this lever.

:class:`StaticLearnedKVStore` disables adaptation after the initial
training — the "overfit to the benchmark" strawman Lesson 1 warns about:
unbeatable on the distribution it trained for, degrading badly when the
distribution moves.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.indexes.rmi import RecursiveModelIndex
from repro.learned.drift_detector import DriftDetector, DriftVerdict
from repro.suts.cost_models import KVCostModel
from repro.suts.kv_base import KVStoreBase
from repro.workloads.generators import KVQuery


class LearnedKVStore(KVStoreBase):
    """Adaptive learned KV store (workload-specialized RMI).

    Args:
        name: SUT name.
        max_fanout: Leaf-model count a full training budget buys.
        cost_model: Cost constants (shared across compared SUTs).
        adapt: Enable drift detection + online retraining.
        drift_window: Drift-detector window size (observations).
        drift_threshold: KS threshold for declaring drift.
        retrain_cooldown: Minimum virtual seconds between online retrains.
        access_sample_size: Reservoir of recent accesses used to
            specialize leaf boundaries at retrain time.
        delta_threshold: Buffered inserts that trigger a merge retrain.
    """

    def __init__(
        self,
        name: str = "learned-kv",
        max_fanout: int = 1024,
        cost_model: Optional[KVCostModel] = None,
        adapt: bool = True,
        drift_window: int = 512,
        drift_threshold: float = 0.15,
        retrain_cooldown: float = 5.0,
        access_sample_size: int = 2048,
        delta_threshold: int = 4096,
        expected_access_sample: Optional[np.ndarray] = None,
    ) -> None:
        if max_fanout < 1:
            raise ConfigurationError(f"max_fanout must be >= 1, got {max_fanout}")
        super().__init__(
            name,
            RecursiveModelIndex(fanout=max_fanout, max_delta=None),
            cost_model=cost_model,
        )
        self.max_fanout = max_fanout
        self.adapt = adapt
        self.retrain_cooldown = retrain_cooldown
        self.delta_threshold = delta_threshold
        self._detector = DriftDetector(window=drift_window, threshold=drift_threshold)
        self._recent_accesses: Deque[float] = deque(maxlen=access_sample_size)
        self._retrain_requested = False
        self._last_retrain_at = -float("inf")
        self._trained_fanout = max_fanout
        # What the operator *expects* the workload to look like; used to
        # specialize at offline-training time, before any query has been
        # observed. Training on the benchmark's published distribution is
        # precisely the overfitting scenario Lesson 1 warns about.
        self._expected_access_sample = (
            np.asarray(expected_access_sample, dtype=np.float64)
            if expected_access_sample is not None
            else None
        )

    def attach_tracer(self, tracer) -> None:
        """Propagate the run tracer into the drift detector."""
        super().attach_tracer(tracer)
        self._detector.tracer = tracer

    # -- typed view of the index ---------------------------------------------------

    @property
    def rmi(self) -> RecursiveModelIndex:
        """The underlying RMI."""
        assert isinstance(self.index, RecursiveModelIndex)
        return self.index

    @property
    def trained_fanout(self) -> int:
        """Fanout the last training session could afford."""
        return self._trained_fanout

    # -- training --------------------------------------------------------------------

    def _full_budget(self) -> float:
        return self.cost_model.full_retrain_seconds(max(1, self.stored_keys))

    def offline_train(self, budget_seconds: float) -> float:
        """Spend the budget on leaf fanout and retrain the RMI.

        A budget covering the full rebuild buys ``max_fanout`` leaves;
        smaller budgets buy proportionally fewer, and the resulting wider
        error bounds are *measured*, not assumed.
        """
        if budget_seconds <= 0:
            return 0.0
        full = self._full_budget()
        fraction = min(1.0, budget_seconds / full)
        fanout = max(1, int(round(self.max_fanout * fraction)))
        used = full * (fanout / self.max_fanout)
        with self.tracer.span("kv.offline-retrain", phase="train", fanout=fanout):
            self._retrain(fanout)
        self.tracer.counter("kv.retrains")
        self.training.add(used)
        return used

    def _retrain(self, fanout: int) -> None:
        if len(self._recent_accesses) >= fanout:
            sample: Optional[np.ndarray] = np.asarray(self._recent_accesses)
        elif (
            self._expected_access_sample is not None
            and len(self._expected_access_sample) >= fanout
        ):
            sample = self._expected_access_sample
        else:
            sample = None
        self.rmi.set_fanout(fanout)
        self.rmi.retrain(access_sample=sample)
        self._trained_fanout = fanout
        if sample is not None:
            self._detector.reset_reference(sample)

    # -- adaptation --------------------------------------------------------------------

    def _after_execute(self, query: KVQuery, now: float) -> None:
        self._recent_accesses.append(query.key)
        if not self.adapt:
            return
        verdict = self._detector.observe(query.key)
        if verdict == DriftVerdict.DRIFTED:
            self._retrain_requested = True
        if self.rmi.delta_size > self.delta_threshold:
            self._retrain_requested = True

    def _after_execute_slice(self, batch, a: int, b: int) -> None:
        """Vectorized observer: same end state as per-query hooks.

        ``_retrain_requested`` is sticky and only read at ``on_tick``, and
        the delta buffer cannot change during a read run, so batching the
        detector feed is exact.
        """
        keys = batch.keys[a:b]
        self._recent_accesses.extend(keys.tolist())
        if not self.adapt:
            return
        if self._detector.observe_many(keys):
            self._retrain_requested = True
        if self.rmi.delta_size > self.delta_threshold:
            self._retrain_requested = True

    def on_tick(self, now: float) -> Optional[float]:
        """Perform a pending online retrain (charging nominal time)."""
        if not self.adapt or not self._retrain_requested:
            return None
        if now - self._last_retrain_at < self.retrain_cooldown:
            return None
        self._retrain_requested = False
        self._last_retrain_at = now
        fanout = self._trained_fanout if self._trained_fanout > 1 else self.max_fanout
        nominal = self._full_budget() * (fanout / self.max_fanout)
        with self.tracer.span("kv.online-retrain", phase="adapt", fanout=fanout):
            self._retrain(fanout)
        self.tracer.counter("kv.retrains")
        self.tracer.counter("kv.online_retrains")
        self.training.add(nominal)
        return nominal

    def on_crash(self, now: float) -> Optional[float]:
        """Cold restart after a :class:`~repro.faults.CrashFault`.

        Warm state dies with the process: the recent-access reservoir
        and the drift detector's windows are cleared (durable key/value
        data survives). The store then rebuilds its RMI from scratch —
        with no observed accesses left, :meth:`_retrain` falls back to
        the operator's expected sample or an unspecialized index — and
        the cold rebuild's nominal time is returned for the driver to
        charge as outage-extending training.
        """
        self._recent_accesses.clear()
        self._detector.reset_reference(None)
        self._retrain_requested = False
        self._last_retrain_at = now
        fanout = self._trained_fanout if self._trained_fanout > 1 else self.max_fanout
        nominal = self._full_budget() * (fanout / self.max_fanout)
        with self.tracer.span("kv.crash-retrain", phase="fault", fanout=fanout):
            self._retrain(fanout)
        self.tracer.counter("kv.retrains")
        self.tracer.counter("kv.crash_retrains")
        self.training.add(nominal)
        return nominal

    def describe(self) -> dict:
        out = super().describe()
        out.update(
            max_fanout=self.max_fanout,
            trained_fanout=self._trained_fanout,
            adapt=self.adapt,
            drift_checks=self._detector.checks,
            drifts_detected=self._detector.drifts_detected,
        )
        return out


class StaticLearnedKVStore(LearnedKVStore):
    """Learned KV store that never adapts after initial training.

    The Lesson-1 strawman: specialize once, then hope the benchmark never
    changes. Identical to :class:`LearnedKVStore` with ``adapt=False``,
    packaged separately so experiment code reads honestly.
    """

    def __init__(
        self,
        name: str = "static-learned-kv",
        max_fanout: int = 1024,
        cost_model: Optional[KVCostModel] = None,
        expected_access_sample: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(
            name=name,
            max_fanout=max_fanout,
            cost_model=cost_model,
            adapt=False,
            expected_access_sample=expected_access_sample,
        )
