"""Shared machinery for key-value systems under test.

Workload generators sample keys from continuous distributions, so a
requested key almost never exactly equals a stored key. Following YCSB's
convention that operations target existing records, the base SUT *snaps*
each requested key to the nearest stored key (driver-side bookkeeping, no
virtual time charged) and then executes the real operation on the real
index; the index's stats delta is what gets priced into service time.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.core.sut import SystemUnderTest
from repro.indexes.base import OrderedIndex
from repro.suts.cost_models import KVCostModel
from repro.workloads.generators import KV_OP_CODES, KVOperation, KVQuery, QueryBatch

_READ_CODE = KV_OP_CODES[KVOperation.READ]


class KVStoreBase(SystemUnderTest):
    """A key-value SUT wrapping one :class:`OrderedIndex`.

    Args:
        name: SUT name.
        index: The underlying index structure.
        cost_model: Operation-to-seconds conversion.
        tuning_level: DBA tuning level applied to service times
            (traditional systems; learned systems leave it at 0).
    """

    def __init__(
        self,
        name: str,
        index: OrderedIndex,
        cost_model: Optional[KVCostModel] = None,
        tuning_level: int = 0,
    ) -> None:
        super().__init__(name)
        self.index = index
        self.cost_model = cost_model or KVCostModel()
        self.tuning_level = tuning_level
        self._mirror: List[float] = []
        self._mirror_arr: Optional[np.ndarray] = None

    # -- lifecycle --------------------------------------------------------------

    def setup(self, pairs: List[Tuple[float, object]]) -> None:
        self.index.bulk_load(pairs)
        self._mirror = sorted(k for k, _ in pairs)
        self._mirror_arr = None

    def inject(self, pairs: List[Tuple[float, object]]) -> None:
        """Bulk data injection: loads the index, skips the clock."""
        for key, value in pairs:
            self.index.insert(key, value)
            bisect.insort(self._mirror, key)
        self._mirror_arr = None

    def teardown(self) -> None:
        # Flush the index's cumulative work counters into the run's
        # telemetry before releasing state (monotonic totals, so one
        # end-of-run delta is exact).
        stats = self.index.stats
        self.tracer.counter("index.model_evaluations", stats.model_evaluations)
        self.tracer.counter("index.retrains", stats.retrains)
        self.tracer.counter("index.node_accesses", stats.node_accesses)
        self._mirror = []
        self._mirror_arr = None

    # -- key snapping --------------------------------------------------------------

    def _snap(self, key: float) -> Optional[float]:
        """Nearest stored key to ``key`` (None when the store is empty)."""
        if not self._mirror:
            return None
        pos = bisect.bisect_left(self._mirror, key)
        if pos >= len(self._mirror):
            return self._mirror[-1]
        if pos == 0:
            return self._mirror[0]
        before, after = self._mirror[pos - 1], self._mirror[pos]
        return before if key - before <= after - key else after

    def _snap_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_snap` (caller guarantees a non-empty store)."""
        if self._mirror_arr is None:
            self._mirror_arr = np.asarray(self._mirror, dtype=np.float64)
        arr = self._mirror_arr
        n = arr.size
        pos = np.searchsorted(arr, keys, side="left")
        before = arr[np.clip(pos - 1, 0, n - 1)]
        after = arr[np.clip(pos, 0, n - 1)]
        snapped = np.where(keys - before <= after - keys, before, after)
        snapped = np.where(pos >= n, arr[-1], snapped)
        return np.where(pos == 0, arr[0], snapped)

    def _scan_bounds(self, key: float, length: int) -> Tuple[float, float]:
        """Start/end stored keys covering ``length`` items from ``key``."""
        pos = bisect.bisect_left(self._mirror, key)
        pos = min(pos, len(self._mirror) - 1)
        end = min(pos + max(1, length) - 1, len(self._mirror) - 1)
        return self._mirror[pos], self._mirror[end]

    # -- execution --------------------------------------------------------------

    def execute(self, query: KVQuery, now: float) -> float:
        """Run the real operation; return its virtual service time."""
        before = self.index.stats.snapshot()
        writes = 0
        scanned = 0
        if query.op == KVOperation.READ:
            target = self._snap(query.key)
            if target is not None:
                self.index.get(target)
        elif query.op == KVOperation.UPDATE:
            target = self._snap(query.key)
            if target is not None:
                self.index.insert(target, now)
                writes = 1
        elif query.op == KVOperation.INSERT:
            self.index.insert(query.key, now)
            bisect.insort(self._mirror, query.key)
            self._mirror_arr = None
            writes = 1
        elif query.op == KVOperation.SCAN:
            if self._mirror:
                low, high = self._scan_bounds(query.key, query.scan_length)
                scanned = len(self.index.range(low, high))
        elif query.op == KVOperation.READ_MODIFY_WRITE:
            target = self._snap(query.key)
            if target is not None:
                value = self.index.get(target)
                self.index.insert(target, value)
                writes = 1
        delta = self.index.stats.snapshot().diff(before)
        self._after_execute(query, now)
        return self.cost_model.service_time(
            delta,
            writes=writes,
            scanned_items=scanned,
            tuning_level=self.tuning_level,
        )

    def _after_execute(self, query: KVQuery, now: float) -> None:
        """Hook for subclasses (drift observation etc.). Default: none."""

    def execute_batch(self, batch: QueryBatch, now: float) -> np.ndarray:
        """Vectorized execution: bulk read runs, scalar write barriers.

        Consecutive READ queries form runs served by the index's
        ``bulk_lookup`` kernel; every other operation (and any run the
        index declines to serve in bulk) goes through the scalar
        :meth:`execute` path, so results match the per-query loop exactly.
        """
        n = len(batch)
        services = np.empty(n, dtype=np.float64)
        barriers = np.flatnonzero(batch.ops != _READ_CODE)
        pos = 0
        bi = 0
        while pos < n:
            next_barrier = int(barriers[bi]) if bi < barriers.size else n
            if next_barrier > pos:
                self._execute_read_run(batch, pos, next_barrier, services)
                pos = next_barrier
            if pos < n:
                services[pos] = self.execute(
                    batch.query(pos), float(batch.arrivals[pos])
                )
                pos += 1
                bi += 1
        return services

    def _execute_read_run(
        self, batch: QueryBatch, a: int, b: int, services: np.ndarray
    ) -> None:
        """Serve READ queries ``[a, b)`` in bulk (scalar fallback on miss)."""
        self.tracer.counter("kv.read_runs")
        if not self._mirror:
            # Empty store: every read is a snap-miss costing base overhead.
            services[a:b] = self.cost_model.service_time_arrays(
                0, 0, 0, tuning_level=self.tuning_level
            )
            self._after_execute_slice(batch, a, b)
            return
        snapped = self._snap_batch(batch.keys[a:b])
        res = self.index.bulk_lookup(snapped)
        if res is None:
            # Fast-path miss: the run falls back to scalar ``get`` calls.
            self.tracer.counter("kv.bulk_fallback_runs")
            self.tracer.counter("kv.bulk_fallback_queries", b - a)
            for i in range(a, b):
                services[i] = self.execute(batch.query(i), float(batch.arrivals[i]))
            return
        self.tracer.counter("kv.bulk_hit_runs")
        self.tracer.counter("kv.bulk_hit_queries", b - a)
        comps, na, me = res
        services[a:b] = self.cost_model.service_time_arrays(
            comps, na, me, tuning_level=self.tuning_level
        )
        self._after_execute_slice(batch, a, b)

    def _after_execute_slice(self, batch: QueryBatch, a: int, b: int) -> None:
        """Fire :meth:`_after_execute` for queries ``[a, b)``, in order.

        Deferring the hook to the end of a read run is exact because the
        hooks cannot change intra-run lookup costs and the driver never
        lets a run cross an ``on_tick`` boundary. Subclasses with a
        vectorized observer override this.
        """
        if type(self)._after_execute is KVStoreBase._after_execute:
            return
        for i in range(a, b):
            self._after_execute(batch.query(i), float(batch.arrivals[i]))

    # -- introspection --------------------------------------------------------------

    @property
    def stored_keys(self) -> int:
        """Number of keys currently stored."""
        return len(self._mirror)

    def describe(self) -> dict:
        out = super().describe()
        out.update(index=self.index.name, tuning_level=self.tuning_level)
        return out
