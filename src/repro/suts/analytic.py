"""Analytic (query-optimization) systems under test.

These SUTs host the learned-query-optimization experiments from §II of
the paper: the same relational engine executes every plan, but *which*
physical plan runs is chosen either by a traditional cost-based
optimizer with (potentially stale) histogram statistics, or by a learned
component — Bao-style bandit steering, optionally fed by a learned
cardinality model that trains online from executed queries' observed
cardinalities.

The analytic path has its own small driver (:class:`AnalyticDriver`)
because its queries are plans, not KV operations; it produces the same
:class:`~repro.core.results.RunResult` records, so every Fig 1 metric
applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.queueing import fifo_single_server
from repro.core.results import ColumnarRecorder, RunResult
from repro.core.sut import TrainingSummary
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.optimizer_base import CostBasedOptimizer
from repro.engine.plans import Aggregate, Filter, Join, LogicalPlan, Scan
from repro.errors import ConfigurationError
from repro.faults import FaultClock, FaultPlan, StallFault
from repro.faults.plan import PointFault
from repro.learned.cardinality import HistogramEstimator, LearnedCardinalityEstimator
from repro.learned.optimizer import BanditPlanSteering
from repro.observability import NULL_TRACER
from repro.suts.cost_models import WORK_UNIT_SECONDS
from repro.workloads.drift import DriftModel


@dataclass(frozen=True)
class AnalyticQuery:
    """One analytic query instance.

    Attributes:
        plan: The logical plan to optimize and execute.
        arrival_time: Virtual arrival timestamp.
        kind: Template label ("filter" or "join").
    """

    plan: LogicalPlan
    arrival_time: float
    kind: str


class AnalyticWorkload:
    """Generates filter/join queries with drifting predicate ranges.

    Queries follow two templates over an orders/customers schema:

    * ``filter``: ``SELECT avg(amount) FROM orders WHERE amount BETWEEN
      θ AND θ+w`` with θ drawn from a (driftable) distribution.
    * ``join``: the same filter joined to ``customers`` on ``cid``.

    Args:
        threshold_drift: Distribution (over the ``amount`` domain) the
            filter's lower bound is drawn from; drifting it changes
            which selectivity regime queries hit.
        window: Width of the BETWEEN range.
        join_fraction: Share of queries using the join template.
        seed: Generator seed.
    """

    def __init__(
        self,
        threshold_drift: DriftModel,
        window: float = 50.0,
        join_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= join_fraction <= 1.0:
            raise ConfigurationError("join_fraction must be in [0,1]")
        self.threshold_drift = threshold_drift
        self.window = window
        self.join_fraction = join_fraction
        self._rng = np.random.default_rng(seed)

    def next_query(self, t: float) -> AnalyticQuery:
        """Generate the query arriving at virtual time ``t``."""
        theta = float(self.threshold_drift.at(t).sample(self._rng, 1)[0])
        use_join = bool(self._rng.uniform() < self.join_fraction)
        return self._build(t, theta, use_join)

    def next_batch(self, times: np.ndarray) -> List[AnalyticQuery]:
        """Generate the queries arriving at ``times`` in one pass.

        Thresholds are drawn in bulk from the drift model, then the
        template coin flips — so the per-query random streams differ from
        repeated :meth:`next_query` calls, but the batch is deterministic
        at a fixed seed and statistically identical.
        """
        times = np.asarray(times, dtype=np.float64)
        thetas = self.threshold_drift.sample_at(self._rng, times)
        joins = self._rng.uniform(0.0, 1.0, times.size) < self.join_fraction
        return [
            self._build(float(t), float(theta), bool(use_join))
            for t, theta, use_join in zip(times, thetas, joins)
        ]

    def _build(self, t: float, theta: float, use_join: bool) -> AnalyticQuery:
        predicate = col("amount").between(theta, theta + self.window)
        filtered = Filter(Scan("orders"), predicate)
        if use_join:
            joined = Join(filtered, Scan("customers"), "cid", "cid")
            plan: LogicalPlan = Aggregate(joined, "count")
            kind = "join"
        else:
            plan = Aggregate(filtered, "avg", "amount")
            kind = "filter"
        return AnalyticQuery(plan=plan, arrival_time=t, kind=kind)


class AnalyticSUT:
    """Base analytic system: owns a catalog, executes chosen plans."""

    def __init__(self, name: str, catalog: Catalog) -> None:
        self.name = name
        self.catalog = catalog
        self.executor = Executor(catalog)
        self.training = TrainingSummary()
        self.tracer = NULL_TRACER

    def attach_tracer(self, tracer) -> None:
        """Adopt the driver's tracer for the duration of a run."""
        self.tracer = tracer

    def setup(self) -> None:
        """Called once before a run (statistics collection etc.)."""

    def execute(self, query: AnalyticQuery, now: float) -> float:
        """Optimize + execute; return virtual service time."""
        raise NotImplementedError

    def execute_batch(
        self, queries: List[AnalyticQuery], arrivals: np.ndarray
    ) -> np.ndarray:
        """Execute a batch of queries; returns per-query service times.

        The default loops over :meth:`execute` with each query's arrival
        time as ``now`` — plan optimization and execution are inherently
        per-plan, so the batched driver's win comes from queueing and
        recording, not from this hook.
        """
        return np.asarray(
            [
                self.execute(q, float(t))
                for q, t in zip(queries, np.asarray(arrivals, dtype=np.float64))
            ],
            dtype=np.float64,
        )

    def on_crash(self, now: float) -> Optional[float]:
        """Crash/restart hook (see :class:`~repro.faults.CrashFault`).

        Discard warm state that would not survive a process restart;
        return nominal seconds of extra blocking recovery work, or
        ``None``. Default: stateless restart.
        """
        return None

    def describe(self) -> dict:
        """JSON-friendly description."""
        return {"name": self.name, "class": type(self).__name__}


class TraditionalOptimizerSUT(AnalyticSUT):
    """Cost-based optimizer over histogram statistics.

    Statistics are collected once at :meth:`setup` (``ANALYZE``); if the
    data changes afterwards, the estimates go stale — the classical
    failure mode that motivates learned cardinalities.

    Args:
        name: SUT name.
        catalog: Tables to query.
        plan_overhead_s: Virtual seconds charged per optimization call.
    """

    def __init__(
        self,
        catalog: Catalog,
        name: str = "traditional-optimizer",
        plan_overhead_s: float = 100e-6,
    ) -> None:
        super().__init__(name, catalog)
        self.estimator = HistogramEstimator()
        self.optimizer = CostBasedOptimizer(self.estimator)
        self.plan_overhead_s = plan_overhead_s

    def setup(self) -> None:
        for table_name in self.catalog.names():
            self.estimator.analyze(self.catalog, table_name)

    def execute(self, query: AnalyticQuery, now: float) -> float:
        chosen = self.optimizer.optimize(query.plan, self.catalog)
        result = self.executor.execute(chosen.plan)
        return self.plan_overhead_s + result.work * WORK_UNIT_SECONDS


class LearnedOptimizerSUT(AnalyticSUT):
    """Bandit plan steering, optionally with learned cardinalities.

    Every executed query feeds back its observed work to the bandit and
    (when enabled) its observed per-node cardinalities to the learned
    cardinality model — online learning whose early exploration cost is
    visible to the adaptability metrics.

    Args:
        catalog: Tables to query.
        name: SUT name.
        use_learned_cardinality: Train/use a learned estimator for the
            steering arms' cost model (after a warm-up of observed
            queries); otherwise arms use histograms.
        seed: Bandit RNG seed.
        plan_overhead_s: Virtual seconds charged per optimization call.
        warmup_queries: Observed queries before the learned estimator
            replaces the histogram inside the arms.
    """

    def __init__(
        self,
        catalog: Catalog,
        name: str = "learned-optimizer",
        use_learned_cardinality: bool = True,
        seed: int = 0,
        plan_overhead_s: float = 150e-6,
        warmup_queries: int = 50,
    ) -> None:
        super().__init__(name, catalog)
        self.histograms = HistogramEstimator()
        self.use_learned_cardinality = use_learned_cardinality
        self.warmup_queries = warmup_queries
        self.learned_cards = LearnedCardinalityEstimator(
            tracked_columns=[("orders", "amount")]
        )
        self.steering = BanditPlanSteering(self.histograms, seed=seed)
        self.plan_overhead_s = plan_overhead_s
        self._seed = seed
        self._observed = 0

    def attach_tracer(self, tracer) -> None:
        """Propagate the run tracer into the bandit steering."""
        super().attach_tracer(tracer)
        self.steering.tracer = tracer

    def setup(self) -> None:
        for table_name in self.catalog.names():
            self.histograms.analyze(self.catalog, table_name)
        self.learned_cards.bind_statistics(self.catalog)

    def execute(self, query: AnalyticQuery, now: float) -> float:
        if (
            self.use_learned_cardinality
            and self._observed >= self.warmup_queries
        ):
            self.steering._estimator = self.learned_cards  # switched-in model
        choice = self.steering.choose(query.plan, self.catalog)
        executed = choice.plan_cost.plan
        result = self.executor.execute(executed)
        self.steering.learn(choice, result.work, query.plan, self.catalog)
        if self.use_learned_cardinality:
            # Ground truth collected during execution, per §IV: every
            # Filter/Join node of the executed plan yields one label.
            stack = [executed]
            while stack:
                node = stack.pop()
                if isinstance(node, (Filter, Join)):
                    card = result.cardinalities.get(node.canonical())
                    if card is not None:
                        self.learned_cards.observe(node, float(card), self.catalog)
                stack.extend(node.children())
        self._observed += 1
        return self.plan_overhead_s + result.work * WORK_UNIT_SECONDS

    def on_crash(self, now: float) -> Optional[float]:
        """Cold restart: the online-learned state dies with the process.

        The bandit's arm statistics and the learned cardinality model
        are in-memory artifacts of the query stream, so a crash resets
        both (and the warm-up counter); the histogram statistics are
        treated as durable (rebuilt cheaply from the catalog). No extra
        virtual recovery time is charged — the cost of the crash shows
        up as renewed exploration, which is exactly what the Fig 1c
        adaptability metrics measure.
        """
        self._observed = 0
        self.learned_cards = LearnedCardinalityEstimator(
            tracked_columns=[("orders", "amount")]
        )
        self.learned_cards.bind_statistics(self.catalog)
        self.steering = BanditPlanSteering(self.histograms, seed=self._seed)
        self.steering.tracer = self.tracer
        self.tracer.counter("optimizer.crash_resets")
        return None

    def describe(self) -> dict:
        out = super().describe()
        out.update(
            arm_counts=self.steering.arm_counts,
            learned_examples=self.learned_cards.trained_examples,
        )
        return out


class AnalyticDriver:
    """Virtual-clock driver for analytic SUTs.

    Mirrors :class:`~repro.core.driver.VirtualClockDriver` (open-loop
    arrivals into a single-server FIFO queue) for plan-shaped queries.

    Segments are ``(label, workload, duration, rate)`` tuples executed
    back to back.

    Args:
        seed: Arrival-process seed.
        use_batching: Serve each segment as one batch (``execute_batch``
            + vectorized FIFO + block append). ``False`` keeps the
            scalar reference loop; both consume the same query batch, so
            results are bit-identical at a fixed seed.
        tracer: Observability sink (defaults to the no-op
            :data:`~repro.observability.NULL_TRACER`); spans are emitted
            per segment, never per query, so tracing stays off the
            batched hot path.
        fault_plan: Optional :class:`~repro.faults.FaultPlan` applied
            during the run. Window faults perturb service times via the
            shared :class:`~repro.faults.FaultClock` kernel; point
            faults block the single server (a crash also fires
            ``sut.on_crash``, and any returned nominal recovery seconds
            extend the outage directly — this driver has no hardware
            scaling). Both paths split execution at fault times, so
            results stay bit-identical at a fixed seed.
    """

    def __init__(
        self,
        seed: int = 0,
        use_batching: bool = True,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.seed = seed
        self.use_batching = use_batching
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._fault_clock = FaultClock(fault_plan) if fault_plan else None

    def run(
        self,
        sut: AnalyticSUT,
        segments: List[Tuple[str, AnalyticWorkload, float, float]],
        scenario_name: str = "analytic",
        segment_hooks: Optional[dict] = None,
    ) -> RunResult:
        """Run the segment schedule against ``sut``.

        Args:
            segment_hooks: Optional ``{label: callable}`` map; a hook runs
                once when its segment starts (e.g., to inject data into
                the catalog mid-run — the stale-statistics scenario).
        """
        recorder = ColumnarRecorder()
        boundaries = self._execute(sut, segments, segment_hooks, recorder)
        with self.tracer.span("collect-result", phase="report"):
            return RunResult(
                sut_name=sut.name,
                scenario_name=scenario_name,
                columns=recorder.build(),
                segments=boundaries,
                training_events=[],
                sut_description=sut.describe(),
            )

    def run_streaming(
        self,
        sut: AnalyticSUT,
        segments: List[Tuple[str, AnalyticWorkload, float, float]],
        scenario_name: str = "analytic",
        segment_hooks: Optional[dict] = None,
        accumulators=None,
        sla: Optional[float] = None,
        spill_dir=None,
        spill_format: str = "npz",
    ):
        """Run the schedule in bounded memory; return the summary.

        Same execution as :meth:`run` (same RNG streams and fault
        semantics), but completed blocks fold into online metric
        accumulators instead of a result buffer. Analytic schedules
        carry no :class:`~repro.core.scenario.Scenario`, so the default
        accumulator set is the scenario-free subset: throughput, the
        cumulative curve, latency stats, plus SLA bands when ``sla`` is
        given and a recovery probe at the first segment boundary when
        the schedule has several segments.
        """
        from repro.core.streaming import (
            ColumnSpiller,
            StreamingRecorder,
            StreamingRunSummary,
        )

        if accumulators is None:
            from repro.metrics import (
                OnlineCumulativeCurve,
                OnlineLatencyBands,
                OnlineLatencyStats,
                OnlineRecovery,
                OnlineThroughput,
            )

            accumulators = [
                OnlineThroughput(),
                OnlineCumulativeCurve(),
                OnlineLatencyStats(),
            ]
            if len(segments) > 1:
                accumulators.append(OnlineRecovery(float(segments[0][2])))
            if sla is not None:
                accumulators.append(OnlineLatencyBands(sla))
        spiller = (
            ColumnSpiller(spill_dir, fmt=spill_format)
            if spill_dir is not None
            else None
        )
        recorder = StreamingRecorder(accumulators=accumulators, spiller=spiller)
        boundaries = self._execute(sut, segments, segment_hooks, recorder)
        recorder.flush()
        with self.tracer.span("collect-result", phase="report"):
            duration = boundaries[-1][2] if boundaries else 0.0
            horizon = max(duration, recorder.max_completion)
            return StreamingRunSummary(
                sut_name=sut.name,
                scenario_name=scenario_name,
                segments=boundaries,
                training_events=[],
                sut_description=sut.describe(),
                num_queries=recorder.count,
                max_completion=recorder.max_completion,
                op_counts=recorder.op_counts(),
                segment_counts=recorder.segment_counts(),
                metrics={
                    acc.name: acc.finalize(horizon)
                    for acc in recorder.accumulators
                },
                spill=(
                    spiller.finish(recorder.op_vocab, recorder.segment_vocab)
                    if spiller is not None
                    else None
                ),
            )

    def _execute(
        self,
        sut: AnalyticSUT,
        segments: List[Tuple[str, AnalyticWorkload, float, float]],
        segment_hooks: Optional[dict],
        recorder,
    ) -> List[Tuple[str, float, float]]:
        """Drive the schedule, appending into ``recorder``.

        Recorder-agnostic core shared by :meth:`run` and
        :meth:`run_streaming`; returns the segment boundaries.
        """
        tracer = self.tracer
        sut.attach_tracer(tracer)
        with tracer.span("setup", phase="serve", sut=sut.name):
            sut.setup()
        rng = np.random.default_rng(self.seed)
        boundaries: List[Tuple[str, float, float]] = []
        server_free = 0.0
        seg_start = 0.0
        hooks = segment_hooks or {}
        for seg_index, (label, workload, duration, rate) in enumerate(segments):
            with tracer.span(f"segment:{label}", phase="serve", index=seg_index):
                if label in hooks:
                    hooks[label]()
                if duration <= 0 or rate < 0:
                    raise ConfigurationError("duration must be > 0 and rate >= 0")
                count = int(rate * duration)
                arrivals = np.sort(
                    rng.uniform(seg_start, seg_start + duration, count)
                )
                recorder.reserve(arrivals.size)
                segment_code = recorder.intern_segment(label)
                queries = workload.next_batch(arrivals)
                tracer.counter("driver.segments")
                tracer.counter("driver.queries", arrivals.size)
                fault_clock = self._fault_clock
                seg_faults: List[PointFault] = (
                    fault_clock.point_faults_in(seg_start, seg_start + duration)
                    if fault_clock is not None
                    else []
                )
                if self.use_batching:
                    tracer.counter("driver.batches")
                    tracer.counter("driver.batched_queries", arrivals.size)
                    with tracer.span("batch", phase="serve", queries=len(queries)):
                        services = np.maximum(
                            1e-9,
                            np.asarray(
                                sut.execute_batch(queries, arrivals),
                                dtype=np.float64,
                            ),
                        )
                    if fault_clock is not None and fault_clock.has_window_faults:
                        services = np.maximum(
                            1e-9, fault_clock.perturb_batch(services, arrivals)
                        )
                    # Split the segment batch at point-fault times so the
                    # FIFO kernel sees the same server-blocking sequence
                    # as the scalar loop (fault fires before any query
                    # with arrival >= fault time).
                    n = arrivals.size
                    starts = np.empty(n, dtype=np.float64)
                    completions = np.empty(n, dtype=np.float64)
                    pos = 0
                    for fault in seg_faults:
                        cut = int(np.searchsorted(arrivals, fault.at, side="left"))
                        if cut > pos:
                            (
                                starts[pos:cut],
                                completions[pos:cut],
                                server_free,
                            ) = fifo_single_server(
                                arrivals[pos:cut], services[pos:cut], server_free
                            )
                            pos = cut
                        server_free = self._fire_fault(sut, fault, server_free)
                    if pos < n:
                        (
                            starts[pos:],
                            completions[pos:],
                            server_free,
                        ) = fifo_single_server(
                            arrivals[pos:], services[pos:], server_free
                        )
                    op_codes = np.asarray(
                        [recorder.intern_op(q.kind) for q in queries],
                        dtype=np.int32,
                    )
                    recorder.append_block(
                        arrivals, starts, completions, op_codes, segment_code
                    )
                else:
                    fi = 0
                    for i, query in enumerate(queries):
                        arrival = float(arrivals[i])
                        while fi < len(seg_faults) and seg_faults[fi].at <= arrival:
                            server_free = self._fire_fault(
                                sut, seg_faults[fi], server_free
                            )
                            fi += 1
                        start = max(arrival, server_free)
                        service = max(1e-9, sut.execute(query, arrival))
                        if fault_clock is not None:
                            service = max(
                                1e-9, fault_clock.perturb(service, arrival)
                            )
                        completion = start + service
                        server_free = completion
                        recorder.append(
                            arrival,
                            start,
                            completion,
                            recorder.intern_op(query.kind),
                            segment_code,
                        )
                    while fi < len(seg_faults):
                        server_free = self._fire_fault(
                            sut, seg_faults[fi], server_free
                        )
                        fi += 1
                boundaries.append((label, seg_start, seg_start + duration))
                seg_start += duration
        return boundaries

    def _fire_fault(
        self, sut: AnalyticSUT, fault: PointFault, server_free: float
    ) -> float:
        """Apply one point fault to the single server; return its free time.

        New service is blocked until the outage ends; a crash fires
        ``sut.on_crash`` and any returned nominal recovery seconds extend
        the outage directly (this driver charges nominal == wall).
        """
        self.tracer.counter("driver.faults")
        if isinstance(fault, StallFault):
            self.tracer.counter("driver.fault_stalls")
            self.tracer.start_span(
                "fault:stall", phase="fault", at=fault.at, duration=fault.duration
            )
            self.tracer.end_span()
            return max(server_free, fault.at + fault.duration)
        self.tracer.counter("driver.fault_crashes")
        self.tracer.start_span(
            "fault:crash",
            phase="fault",
            at=fault.at,
            recovery_seconds=fault.recovery_seconds,
        )
        try:
            nominal = sut.on_crash(fault.at)
        finally:
            self.tracer.end_span()
        resume = max(server_free, fault.at + fault.recovery_seconds)
        if nominal and nominal > 0:
            resume += float(nominal)
        return resume


def build_analytic_catalog(
    n_orders: int = 4000, n_customers: int = 400, seed: int = 0
) -> Catalog:
    """Standard orders/customers catalog for the analytic experiments."""
    from repro.engine.schema import ColumnType, Schema
    from repro.engine.table import Table

    rng = np.random.default_rng(seed)
    orders = Table.from_columns(
        "orders",
        Schema.of(
            ("oid", ColumnType.INT),
            ("cid", ColumnType.INT),
            ("amount", ColumnType.FLOAT),
        ),
        {
            "oid": np.arange(n_orders),
            "cid": rng.integers(0, n_customers, n_orders),
            "amount": rng.exponential(100.0, n_orders),
        },
    )
    customers = Table.from_columns(
        "customers",
        Schema.of(("cid", ColumnType.INT), ("region", ColumnType.INT)),
        {
            "cid": np.arange(n_customers),
            "region": rng.integers(0, 10, n_customers),
        },
    )
    catalog = Catalog()
    catalog.register(orders)
    catalog.register(customers)
    return catalog
