"""Virtual-time cost models.

The bridge between real data-structure work and the driver's virtual
clock: a SUT executes each operation on its actual index, reads the
:class:`~repro.indexes.base.IndexStats` delta, and converts the counted
work into seconds with :class:`KVCostModel`.

Calibration targets a storage-bound in-memory system (page-granular node
touches dominate), which puts absolute throughputs in the low thousands
of queries/second — commensurate with the arrival rates the scenarios
use, so queueing effects (the substance of Fig 1b/1c) actually occur.
The *ratios* are what matter and follow the literature: a well-trained
learned index substitutes a handful of model evaluations plus a narrow
bounded search for a root-to-leaf page walk (Kraska et al. report ~1.5-3x
speedups), and loses that edge as its error bounds widen.

All constants are plain dataclass fields; ablation studies override them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.indexes.base import IndexStats

#: Seconds per abstract work unit for analytic (row-at-a-time) execution.
WORK_UNIT_SECONDS = 2e-6


@dataclass(frozen=True)
class KVCostModel:
    """Operation-cost constants for key-value SUTs.

    Attributes:
        base_overhead_s: Fixed per-query dispatch/parse overhead.
        node_access_s: One index node / storage block touch.
        comparison_s: One key comparison.
        model_eval_s: One learned-model evaluation.
        insert_extra_s: Additional write overhead per insert/update.
        scan_per_item_s: Per-returned-item scan cost.
        train_per_key_s: Nominal training seconds per stored key for a
            full model rebuild (drives offline budgets and online
            retraining charges).
        tuning_speedups: Service-time divisor per DBA tuning level for
            traditional systems (level 0 = shipped defaults).
    """

    base_overhead_s: float = 20e-6
    node_access_s: float = 100e-6
    comparison_s: float = 0.2e-6
    model_eval_s: float = 5e-6
    insert_extra_s: float = 50e-6
    scan_per_item_s: float = 2e-6
    train_per_key_s: float = 40e-6
    tuning_speedups: tuple = (1.0, 1.2, 1.45, 1.65)

    def __post_init__(self) -> None:
        if min(
            self.base_overhead_s,
            self.node_access_s,
            self.comparison_s,
            self.model_eval_s,
            self.insert_extra_s,
            self.scan_per_item_s,
            self.train_per_key_s,
        ) < 0:
            raise ConfigurationError("cost constants must be >= 0")
        if any(s <= 0 for s in self.tuning_speedups):
            raise ConfigurationError("tuning speedups must be > 0")

    def service_time(
        self,
        delta: IndexStats,
        writes: int = 0,
        scanned_items: int = 0,
        tuning_level: int = 0,
    ) -> float:
        """Convert an index-stats delta into virtual seconds.

        Args:
            delta: Counter increments attributable to the operation.
            writes: Number of write ops included (insert/update/delete).
            scanned_items: Items returned by scans in the operation.
            tuning_level: DBA tuning level (index into
                :attr:`tuning_speedups`).
        """
        raw = (
            self.base_overhead_s
            + delta.node_accesses * self.node_access_s
            + delta.comparisons * self.comparison_s
            + delta.model_evaluations * self.model_eval_s
            + writes * self.insert_extra_s
            + scanned_items * self.scan_per_item_s
        )
        level = min(max(0, tuning_level), len(self.tuning_speedups) - 1)
        return raw / self.tuning_speedups[level]

    def service_time_arrays(
        self,
        comparisons,
        node_accesses,
        model_evaluations,
        writes=0,
        scanned_items=0,
        tuning_level: int = 0,
    ):
        """Vectorized :meth:`service_time` over per-query counter arrays.

        The arithmetic expression and evaluation order match the scalar
        method exactly (integer counts × float constants are exact in
        float64 below 2**53), so results are bit-identical per element.
        """
        raw = (
            self.base_overhead_s
            + node_accesses * self.node_access_s
            + comparisons * self.comparison_s
            + model_evaluations * self.model_eval_s
            + writes * self.insert_extra_s
            + scanned_items * self.scan_per_item_s
        )
        level = min(max(0, tuning_level), len(self.tuning_speedups) - 1)
        return raw / self.tuning_speedups[level]

    def full_retrain_seconds(self, n_keys: int) -> float:
        """Nominal CPU-seconds to fully rebuild models over ``n_keys``."""
        return max(0.0, n_keys) * self.train_per_key_s
