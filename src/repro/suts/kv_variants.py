"""Additional learned KV store variants.

* :class:`AlexKVStore` — backed by the updatable ALEX-like index: inserts
  land in gapped arrays via model predictions (no delta buffer, no bulk
  retrains), which is the write-optimized learned design point.
* :class:`PGMKVStore` — backed by the ε-bounded PGM index: worst-case
  lookup cost is bounded by ε regardless of data shape, the robust
  design point.

Both make the benchmark's design-space comparisons (bench A4/A5) honest:
the same driver, cost model, and metrics, different learned structures.
"""

from __future__ import annotations

from typing import Optional

from repro.indexes.alex import AdaptiveLearnedIndex
from repro.indexes.pgm import PGMIndex
from repro.suts.cost_models import KVCostModel
from repro.suts.kv_base import KVStoreBase


class AlexKVStore(KVStoreBase):
    """KV store over the ALEX-like gapped-array learned index.

    Adapts *structurally* (node splits and local model rebuilds happen
    inline as data arrives) rather than via scheduled retraining, so it
    needs no drift detector; its training cost is implicit in the
    per-operation work the cost model already charges.
    """

    def __init__(
        self,
        name: str = "alex-kv",
        node_capacity: int = 256,
        density: float = 0.7,
        cost_model: Optional[KVCostModel] = None,
    ) -> None:
        super().__init__(
            name,
            AdaptiveLearnedIndex(node_capacity=node_capacity, density=density),
            cost_model=cost_model,
        )


class PGMKVStore(KVStoreBase):
    """KV store over the ε-bounded PGM index.

    Lookup cost is capped by ε by construction, so this store trades the
    RMI's best-case speed for worst-case robustness. Inserts buffer into
    a delta merged on ``offline_train`` or when the delta exceeds
    ``max_delta`` (charged inline by the index's counted work).
    """

    def __init__(
        self,
        name: str = "pgm-kv",
        epsilon: int = 32,
        max_delta: int = 4096,
        cost_model: Optional[KVCostModel] = None,
    ) -> None:
        super().__init__(
            name,
            PGMIndex(epsilon=epsilon, max_delta=max_delta),
            cost_model=cost_model,
        )

    def offline_train(self, budget_seconds: float) -> float:
        """Rebuild the PLA within the budget (linear in stored keys)."""
        if budget_seconds <= 0:
            return 0.0
        need = self.cost_model.full_retrain_seconds(max(1, self.stored_keys))
        if budget_seconds < need:
            return 0.0  # partial PLA builds are not meaningful
        index = self.index
        assert isinstance(index, PGMIndex)
        index.retrain()
        self.training.add(need)
        return need
