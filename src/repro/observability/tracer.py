"""Phase-aware tracing: spans, traces, and the no-op default.

The paper's metrics need to know *where time and work go* — training vs.
adaptation vs. serving vs. reporting, plus injected fault handling — so
every instrumented layer wraps its work in a :class:`Span` tagged with
one of the benchmark phases (:data:`PHASES`). Spans nest; a finished run yields a :class:`Trace`
holding the span forest plus the run's monotonic counters, and the trace
is a JSON-exchangeable artifact like every other benchmark record.

Two tracer implementations share the same duck-typed surface:

* :class:`Tracer` — the real thing. Wall-clock spans (monotonic clock,
  clamped so durations can never be negative), a span stack for nesting,
  and a :class:`~repro.observability.counters.CounterRegistry`.
* :class:`NullTracer` — the default everywhere. Every method is a no-op
  returning a shared singleton context manager, so the driver's batched
  hot path pays one attribute lookup and a ``with`` on a ``__slots__``
  object per *slice* (never per query), and allocates nothing.

Phase accounting uses **self time**: a span contributes its duration
minus its direct children's durations to its own phase, so a serve-phase
segment span containing a train-phase retrain span never double-counts
the retrain seconds as serving time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.observability.counters import CounterRegistry

#: The benchmark's execution phases, in pipeline order; "fault" tags
#: injected-fault handling (stalls, crash recovery) from repro.faults.
PHASES = ("train", "adapt", "serve", "report", "fault")

_PHASE_SET = frozenset(PHASES)


@dataclass
class Span:
    """One timed, phase-tagged unit of work.

    Attributes:
        name: What the work was (e.g. ``"segment:ramp-up"``).
        phase: One of :data:`PHASES`.
        start: Wall-clock start (tracer clock; seconds).
        end: Wall-clock end; equals ``start`` until the span closes.
        attrs: Free-form JSON-friendly annotations (the driver's
            training spans carry ``nominal_seconds`` / ``hardware`` /
            ``virtual_start`` / ``online`` here so cost metrics can
            rebuild measured :class:`~repro.core.phases.TrainingEvent`
            objects from the trace).
        children: Spans opened while this one was the innermost.
    """

    name: str
    phase: str
    start: float
    end: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall seconds between open and close (>= 0 by construction)."""
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration not covered by direct children (phase accounting)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant (depth-first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            phase=data["phase"],
            start=data["start"],
            end=data["end"],
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


@dataclass
class Trace:
    """A finished run's telemetry: span forest + counters.

    Traces are mergeable (matrix workers each produce one; the manifest
    folds them together) and JSON round-trippable, so a stored manifest
    can be re-analyzed without re-running anything.
    """

    spans: List[Span] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)

    def walk(self) -> Iterator[Span]:
        """Every span in the forest, depth-first."""
        for span in self.spans:
            yield from span.walk()

    def phase_seconds(self) -> Dict[str, float]:
        """Wall seconds per phase (self-time attribution; see module doc).

        Every known phase is present in the result (0.0 when unused), so
        rollups and reports have a stable shape.
        """
        totals = dict.fromkeys(PHASES, 0.0)
        for span in self.walk():
            totals[span.phase] = totals.get(span.phase, 0.0) + span.self_seconds
        return totals

    def counter(self, name: str, default: float = 0) -> float:
        """Value of one counter (``default`` when absent)."""
        return self.counters.get(name, default)

    def merge(self, other: "Trace") -> "Trace":
        """New trace: concatenated span forests, summed counters."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        return Trace(spans=list(self.spans) + list(other.spans), counters=counters)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (inverse of :meth:`from_dict`)."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(self.counters),
            "phase_seconds": self.phase_seconds(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output.

        ``phase_seconds`` in the payload is derived data and ignored on
        load (it is recomputed from the spans).
        """
        return cls(
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            counters=dict(data.get("counters", {})),
        )


class _SpanContext:
    """Context manager pairing one ``start_span`` with its ``end_span``."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._tracer.end_span()
        return False


class Tracer:
    """Collects nested phase-tagged spans and monotonic counters.

    Args:
        clock: Seconds-returning callable (default
            :func:`time.perf_counter`). Readings are clamped to be
            non-decreasing, so span durations are never negative even
            under an adversarial clock — a property the hypothesis suite
            exercises directly.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._last = float("-inf")
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        self._registry = CounterRegistry()

    # -- time ------------------------------------------------------------------------

    def _now(self) -> float:
        now = float(self._clock())
        if now < self._last:
            return self._last
        self._last = now
        return now

    # -- spans -----------------------------------------------------------------------

    def start_span(self, name: str, phase: str = "serve", **attrs: Any) -> Span:
        """Open a span; it becomes the parent of spans opened after it."""
        if phase not in _PHASE_SET:
            raise ConfigurationError(
                f"unknown phase {phase!r}; expected one of {PHASES}"
            )
        now = self._now()
        span = Span(name=name, phase=phase, start=now, end=now, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        return span

    def end_span(self) -> Optional[Span]:
        """Close the innermost open span (``None`` when nothing is open)."""
        if not self._stack:
            return None
        span = self._stack.pop()
        span.end = self._now()
        return span

    def span(self, name: str, phase: str = "serve", **attrs: Any) -> _SpanContext:
        """``with tracer.span("segment:x", phase="serve"): ...``"""
        return _SpanContext(self, self.start_span(name, phase, **attrs))

    @property
    def open_spans(self) -> int:
        """Depth of the current span stack."""
        return len(self._stack)

    # -- counters --------------------------------------------------------------------

    def counter(self, name: str, delta: float = 1) -> None:
        """Increment monotonic counter ``name`` by ``delta`` (>= 0)."""
        self._registry.increment(name, delta)

    @property
    def counters(self) -> Dict[str, float]:
        """Current counter values (copy)."""
        return self._registry.as_dict()

    # -- completion ------------------------------------------------------------------

    def finish(self) -> Trace:
        """Close any open spans and return the collected :class:`Trace`.

        The tracer stays usable afterwards; spans opened later start a
        fresh forest appended to subsequent :meth:`finish` calls' output.
        """
        while self._stack:
            self.end_span()
        return Trace(spans=list(self._roots), counters=self._registry.as_dict())


class _NullSpanContext:
    """Shared, stateless stand-in for :class:`_SpanContext`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """No-op tracer: the default wherever a tracer can be attached.

    Every call site stays a plain method call on a ``__slots__`` object
    and every ``span`` returns the same shared context manager, so the
    disabled path allocates nothing and costs nanoseconds — benchmarked
    against the PR-3 batched-driver baseline in
    ``benchmarks/bench_driver_batching.py``.
    """

    __slots__ = ()

    enabled = False

    def start_span(self, name: str, phase: str = "serve", **attrs: Any) -> None:
        return None

    def end_span(self) -> None:
        return None

    def span(self, name: str, phase: str = "serve", **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def counter(self, name: str, delta: float = 1) -> None:
        return None

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    def finish(self) -> Trace:
        return Trace()


#: Shared no-op tracer instance (stateless, safe to share globally).
NULL_TRACER = NullTracer()
