"""Monotonic counter registry.

Counters are the cheap half of the observability layer: named,
monotonically increasing numbers (retrain count, drift checks, bulk
fast-path hits). They are kept in a plain dict so incrementing one is a
dictionary update, and merging registries from parallel matrix workers
is a plain sum — which makes the merge associative and commutative, a
property the telemetry aggregation tests pin down.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ConfigurationError


class CounterRegistry:
    """Named monotonic counters.

    Deltas must be non-negative: a counter is a tally of events, not a
    gauge, so merged values from independent workers always add up to
    the fleet-wide total.
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: Mapping[str, float] = ()) -> None:
        self._counts: Dict[str, float] = {}
        for name, value in dict(initial).items():
            self.increment(name, value)

    def increment(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` (>= 0) to counter ``name`` (created at 0)."""
        if delta < 0:
            raise ConfigurationError(
                f"counter {name!r} is monotonic; negative delta {delta}"
            )
        self._counts[name] = self._counts.get(name, 0) + delta

    def get(self, name: str, default: float = 0) -> float:
        """Current value of ``name`` (``default`` when never touched)."""
        return self._counts.get(name, default)

    def merge(self, other: "CounterRegistry") -> "CounterRegistry":
        """New registry with per-name sums (associative across workers)."""
        merged = CounterRegistry(self._counts)
        for name, value in other._counts.items():
            merged.increment(name, value)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Copy of the underlying ``{name: value}`` mapping."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self._counts.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterRegistry({self._counts!r})"
