"""Benchmark observability: phase-aware tracing, counters, run telemetry.

The paper makes training a first-class benchmark phase and prices runs
by where their time goes (Fig 1d); this package is the measurement spine
that feeds those metrics from *observed* work instead of hand-built
fixtures. See DESIGN.md §7 for the span/phase model and the zero-cost
``NullTracer`` default.

Public surface:

* :class:`Tracer` / :class:`NullTracer` / :data:`NULL_TRACER` — span and
  counter collection (real vs. no-op).
* :class:`Span` / :class:`Trace` — the collected telemetry, JSON
  round-trippable and mergeable across matrix workers.
* :class:`CounterRegistry` — named monotonic counters with associative
  merges.
* :data:`PHASES` — the five benchmark phases
  (``train | adapt | serve | report | fault``).

The ``fault`` phase was added with the fault-injection subsystem
(:mod:`repro.faults`): drivers open a ``fault:<kind>`` span for every
fired point fault and bump ``driver.faults`` counters, so
:meth:`Trace.phase_seconds` decomposes a chaos run's virtual time into
productive work vs. injected outage. Phase accounting is self-time
based, so a serve-phase segment span containing a fault span never
double-counts.
"""

from repro.observability.counters import CounterRegistry
from repro.observability.tracer import (
    NULL_TRACER,
    PHASES,
    NullTracer,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "CounterRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASES",
    "Span",
    "Trace",
    "Tracer",
]
