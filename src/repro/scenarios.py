"""Canonical scenario builders for the paper's experiments.

Each experiment in DESIGN.md §4 (F1a-F1d, L1-L4) uses one of these
builders, and the examples reuse them, so the exact scenario definitions
live in one place.

All builders are deterministic for a given seed and scale with ``rate``
and ``duration`` so tests can run them small and benchmarks large.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.data.datasets import Dataset, build_dataset
from repro.workloads.distributions import HotspotDistribution, ZipfDistribution
from repro.workloads.drift import GradualDrift, NoDrift
from repro.workloads.generators import (
    KVOperation,
    OperationMix,
    WorkloadSpec,
    blend_specs,
    simple_spec,
)
from repro.workloads.patterns import BurstyArrivals, ConstantArrivals


def hotspot(dataset: Dataset, position: float, width: float = 0.05,
            fraction: float = 0.9) -> HotspotDistribution:
    """A hotspot at ``position`` (0-1 of the key span) of the dataset."""
    span = dataset.high - dataset.low
    return HotspotDistribution(
        dataset.low,
        dataset.high,
        hot_start=dataset.low + position * span,
        hot_width=width * span,
        hot_fraction=fraction,
    )


def specialization_ladder(
    dataset: Dataset,
    rate: float = 2000.0,
    segment_duration: float = 20.0,
    positions: Tuple[float, ...] = (0.1, 0.15, 0.3, 0.5, 0.8),
    holdout_position: float = 0.95,
    train_budget: float = 10.0,
    seed: int = 11,
) -> Tuple[Scenario, str]:
    """The Fig 1a scenario: a ladder of increasingly distant hotspots.

    Segment 0 is the baseline distribution (the one the SUT trains on);
    later segments move the hotspot further away, increasing Φ. The last
    segment is the hold-out distribution.

    Returns:
        (scenario, hold-out segment label).
    """
    segments: List[Segment] = []
    for i, pos in enumerate(positions):
        dist = hotspot(dataset, pos)
        segments.append(
            Segment(
                spec=simple_spec(f"dist-{i}", dist, rate=rate, read_fraction=1.0),
                duration=segment_duration,
            )
        )
    holdout_label = "holdout"
    segments.append(
        Segment(
            spec=simple_spec(
                holdout_label, hotspot(dataset, holdout_position, width=0.02),
                rate=rate, read_fraction=1.0,
            ),
            duration=segment_duration,
        )
    )
    scenario = Scenario(
        name="specialization-ladder",
        segments=segments,
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
    )
    return scenario, holdout_label


def abrupt_shift(
    dataset: Dataset,
    rate: float = 3500.0,
    segment_duration: float = 40.0,
    position_a: float = 0.1,
    position_b: float = 0.7,
    train_budget: float = 10.0,
    seed: int = 11,
) -> Scenario:
    """The Fig 1b/1c scenario: an abrupt hotspot shift mid-run."""
    return Scenario(
        name="abrupt-shift",
        segments=[
            Segment(
                spec=simple_spec(
                    "dist-A", hotspot(dataset, position_a), rate=rate,
                    read_fraction=1.0,
                ),
                duration=segment_duration,
            ),
            Segment(
                spec=simple_spec(
                    "dist-B", hotspot(dataset, position_b), rate=rate,
                    read_fraction=1.0,
                ),
                duration=segment_duration,
            ),
        ],
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
    )


def gradual_shift(
    dataset: Dataset,
    rate: float = 3000.0,
    total_duration: float = 80.0,
    transition_fraction: float = 0.4,
    seed: int = 13,
    train_budget: float = 10.0,
) -> Scenario:
    """§V-B's gradual-transition variant: a linear mixing ramp.

    A single segment whose key distribution ramps from hotspot A to
    hotspot B over the middle ``transition_fraction`` of the run.
    """
    ramp_start = total_duration * (0.5 - transition_fraction / 2.0)
    ramp = GradualDrift(
        before=hotspot(dataset, 0.1),
        after=hotspot(dataset, 0.7),
        start=ramp_start,
        duration=total_duration * transition_fraction,
    )
    spec = WorkloadSpec(
        name="gradual",
        mix=OperationMix.read_only(),
        key_drift=ramp,
        arrivals=ConstantArrivals(rate),
    )
    return Scenario(
        name="gradual-shift",
        segments=[Segment(spec=spec, duration=total_duration)],
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
    )


def training_budget_scenario(
    dataset: Dataset,
    budget_seconds: float,
    rate: float = 3000.0,
    duration: float = 30.0,
    seed: int = 17,
) -> Scenario:
    """The Fig 1d scenario: fixed workload, variable training budget."""
    return Scenario(
        name=f"budget-{budget_seconds:g}s",
        segments=[
            Segment(
                spec=simple_spec(
                    "steady", hotspot(dataset, 0.1), rate=rate, read_fraction=1.0
                ),
                duration=duration,
            )
        ],
        initial_training=TrainingPhase(budget_seconds=budget_seconds),
        initial_keys=dataset.keys,
        seed=seed,
    )


def bursty_diurnal(
    dataset: Dataset,
    base_rate: float = 1500.0,
    duration: float = 120.0,
    seed: int = 23,
    train_budget: float = 10.0,
) -> Scenario:
    """Load-pattern stressor: diurnal wave with bursts + Zipf keys."""
    arrivals = BurstyArrivals(
        base=base_rate,
        bursts=[(duration * 0.3, duration * 0.05, 3.0),
                (duration * 0.7, duration * 0.05, 3.0)],
    )
    spec = WorkloadSpec(
        name="bursty",
        mix=OperationMix.read_write(0.95),
        key_drift=NoDrift(
            ZipfDistribution(dataset.low, dataset.high, theta=0.99, n_items=10_000)
        ),
        arrivals=arrivals,
    )
    return Scenario(
        name="bursty-diurnal",
        segments=[Segment(spec=spec, duration=duration)],
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
    )


def drift_axis_specs(
    dataset: Dataset, rate: float = 3000.0
) -> Tuple[WorkloadSpec, WorkloadSpec]:
    """The (base, target) workload specs the drift-factor axis spans.

    The base is the read-only hotspot workload every other scenario
    trains against (hotspot at 0.1 of the key span); the target moves
    the hotspot to 0.8 *and* changes the operation mix (writes + scans),
    so a factor sweep exercises both the data and workload halves of Φ.
    """
    base = simple_spec("axis-base", hotspot(dataset, 0.1), rate=rate,
                       read_fraction=1.0)
    target = WorkloadSpec(
        name="axis-target",
        mix=OperationMix({
            KVOperation.READ: 0.6,
            KVOperation.UPDATE: 0.25,
            KVOperation.INSERT: 0.1,
            KVOperation.SCAN: 0.05,
        }),
        key_drift=NoDrift(hotspot(dataset, 0.8)),
        arrivals=ConstantArrivals(rate),
        scan_length_mean=8,
    )
    return base, target


def drift_axis(
    dataset: Dataset,
    factor: float = 0.5,
    rate: float = 3000.0,
    segment_duration: float = 30.0,
    train_budget: float = 10.0,
    seed: int = 19,
) -> Scenario:
    """The drift-factor scenario: base segment, then a blended segment.

    Segment 0 ("base") always runs the base workload (what the SUT
    trains on); segment 1 ("drifted") runs
    :func:`~repro.workloads.generators.blend_specs` of the base/target
    pair at ``factor``. At ``factor`` 0/1 the drifted segment *is* the
    base/target spec object, so the realized query columns are
    bit-identical to :func:`drift_axis_reference`'s endpoints.

    The factor is recorded on ``Scenario.drift_factor`` (and in the
    scenario name), so every point of a sweep fingerprints — and
    result-caches — distinctly.
    """
    base, target = drift_axis_specs(dataset, rate)
    drifted = blend_specs(base, target, factor, name="axis-drifted")
    return Scenario(
        name=f"drift-axis@{float(factor):g}",
        segments=[
            Segment(spec=base, duration=segment_duration, label="base"),
            Segment(spec=drifted, duration=segment_duration, label="drifted"),
        ],
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
        drift_factor=float(factor),
    )


def drift_axis_reference(
    dataset: Dataset,
    endpoint: str = "base",
    rate: float = 3000.0,
    segment_duration: float = 30.0,
    train_budget: float = 10.0,
    seed: int = 19,
) -> Scenario:
    """The unblended twin of :func:`drift_axis` at one endpoint.

    Same segment structure, labels, seed, and specs as ``drift_axis``
    with factor 0 (``endpoint="base"``) or 1 (``endpoint="target"``) —
    but with ``drift_factor`` left unset, the way a pre-axis scenario
    would have been written. The endpoint bit-identity tests drive both
    through the driver and compare query columns; the fingerprint tests
    check the two differ *only* by the ``drift_factor`` key.
    """
    if endpoint not in ("base", "target"):
        raise ValueError(f"endpoint must be 'base' or 'target', got {endpoint!r}")
    base, target = drift_axis_specs(dataset, rate)
    drifted = base if endpoint == "base" else target
    return Scenario(
        name=f"drift-axis-{endpoint}",
        segments=[
            Segment(spec=base, duration=segment_duration, label="base"),
            Segment(spec=drifted, duration=segment_duration, label="drifted"),
        ],
        initial_training=TrainingPhase(budget_seconds=train_budget),
        initial_keys=dataset.keys,
        seed=seed,
    )


def expected_access_sample(
    scenario: Scenario, size: int = 4096, seed: int = 99
) -> np.ndarray:
    """A sample of the first segment's access distribution.

    This is what a vendor 'teaching to the test' would train on (the
    benchmark's published baseline distribution), and what an honest
    operator would use as the best-available workload forecast for the
    offline training phase.
    """
    rng = np.random.default_rng(seed)
    first = scenario.segments[0]
    return first.spec.key_drift.at(0.0).sample(rng, size)


def default_dataset(n: int = 100_000, seed: int = 7) -> Dataset:
    """The flagship dataset for the dynamic experiments.

    ``osm`` is the lumpy, hard-for-learned-structures dataset (mirroring
    SOSD's findings); it maximizes the contrast between specialized and
    mis-specialized models, which is what the paper's metrics measure.
    """
    return build_dataset("osm", n=n, seed=seed)
