"""Predicate expression trees.

Predicates evaluate vectorized over a :class:`~repro.engine.table.Table`,
returning a boolean row mask. Each node also contributes structural
features to ``signature()`` — the tokens used by the Jaccard workload
similarity (the paper suggests "the Jaccard similarity between the sets
of all subtrees of the query tree").
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, List, Tuple

import numpy as np

from repro.engine.table import Table


class CompareOp(enum.Enum):
    """Comparison operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class Predicate(ABC):
    """A boolean expression over table rows."""

    @abstractmethod
    def evaluate(self, table: Table) -> np.ndarray:
        """Boolean mask: which rows satisfy the predicate."""

    @abstractmethod
    def signature(self) -> FrozenSet[Tuple]:
        """Structural feature tokens for similarity estimation."""

    @abstractmethod
    def columns(self) -> List[str]:
        """Column names the predicate references."""

    def selectivity_features(self) -> List[Tuple[str, str, float]]:
        """Flat list of ``(column, op, value)`` leaves (numeric only).

        Used to featurize queries for learned cardinality estimation;
        non-numeric comparisons are skipped.
        """
        out: List[Tuple[str, str, float]] = []
        self._collect_leaves(out)
        return out

    def _collect_leaves(self, out: List[Tuple[str, str, float]]) -> None:
        """Default: no leaves; overridden by leaf and branch nodes."""


class ColumnRef:
    """Reference to a column by name (helper for building comparisons)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: Any):  # type: ignore[override]
        return Comparison(self.name, CompareOp.EQ, other)

    def __ne__(self, other: Any):  # type: ignore[override]
        return Comparison(self.name, CompareOp.NE, other)

    def __lt__(self, other: Any):
        return Comparison(self.name, CompareOp.LT, other)

    def __le__(self, other: Any):
        return Comparison(self.name, CompareOp.LE, other)

    def __gt__(self, other: Any):
        return Comparison(self.name, CompareOp.GT, other)

    def __ge__(self, other: Any):
        return Comparison(self.name, CompareOp.GE, other)

    def between(self, low: Any, high: Any) -> "Between":
        """Inclusive range predicate ``low <= column <= high``."""
        return Between(self.name, low, high)

    def __hash__(self) -> int:
        return hash(("ColumnRef", self.name))


class Literal:
    """A literal value (wrapper kept for API symmetry/readability)."""

    def __init__(self, value: Any) -> None:
        self.value = value


def _unwrap(value: Any) -> Any:
    return value.value if isinstance(value, Literal) else value


class Comparison(Predicate):
    """``column <op> literal``."""

    def __init__(self, column: str, op: CompareOp, value: Any) -> None:
        self.column = column
        self.op = op
        self.value = _unwrap(value)

    def evaluate(self, table: Table) -> np.ndarray:
        data = table.column(self.column)
        if isinstance(data, list):
            arr = np.asarray(data, dtype=object)
            value = str(self.value)
        else:
            arr = data
            value = self.value
        if self.op == CompareOp.EQ:
            return arr == value
        if self.op == CompareOp.NE:
            return arr != value
        if self.op == CompareOp.LT:
            return arr < value
        if self.op == CompareOp.LE:
            return arr <= value
        if self.op == CompareOp.GT:
            return arr > value
        return arr >= value

    def signature(self) -> FrozenSet[Tuple]:
        return frozenset({("cmp", self.column, self.op.value)})

    def columns(self) -> List[str]:
        return [self.column]

    def _collect_leaves(self, out: List[Tuple[str, str, float]]) -> None:
        if isinstance(self.value, (int, float)) and not isinstance(self.value, bool):
            out.append((self.column, self.op.value, float(self.value)))

    def __repr__(self) -> str:
        return f"{self.column} {self.op.value} {self.value!r}"


class Between(Predicate):
    """Inclusive range predicate ``low <= column <= high``."""

    def __init__(self, column: str, low: Any, high: Any) -> None:
        self.column = column
        self.low = _unwrap(low)
        self.high = _unwrap(high)

    def evaluate(self, table: Table) -> np.ndarray:
        data = table.column(self.column)
        if isinstance(data, list):
            arr = np.asarray(data, dtype=object)
            lo, hi = str(self.low), str(self.high)
        else:
            arr = data
            lo, hi = self.low, self.high
        return (arr >= lo) & (arr <= hi)

    def signature(self) -> FrozenSet[Tuple]:
        return frozenset({("between", self.column)})

    def columns(self) -> List[str]:
        return [self.column]

    def _collect_leaves(self, out: List[Tuple[str, str, float]]) -> None:
        if isinstance(self.low, (int, float)):
            out.append((self.column, ">=", float(self.low)))
        if isinstance(self.high, (int, float)):
            out.append((self.column, "<=", float(self.high)))

    def __repr__(self) -> str:
        return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"


class _BooleanPair(Predicate):
    """Common machinery for binary boolean connectives."""

    _token = ""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def columns(self) -> List[str]:
        return sorted(set(self.left.columns()) | set(self.right.columns()))

    def signature(self) -> FrozenSet[Tuple]:
        child = self.left.signature() | self.right.signature()
        return child | {(self._token, tuple(sorted(map(str, child))))}

    def _collect_leaves(self, out: List[Tuple[str, str, float]]) -> None:
        self.left._collect_leaves(out)
        self.right._collect_leaves(out)


class And(_BooleanPair):
    """Logical conjunction."""

    _token = "and"

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) & self.right.evaluate(table)

    def __repr__(self) -> str:
        return f"({self.left!r}) AND ({self.right!r})"


class Or(_BooleanPair):
    """Logical disjunction."""

    _token = "or"

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) | self.right.evaluate(table)

    def __repr__(self) -> str:
        return f"({self.left!r}) OR ({self.right!r})"


def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)
