"""Catalog: the set of tables known to an engine instance."""

from __future__ import annotations

from typing import Dict, List

from repro.engine.table import Table
from repro.errors import SchemaError


class Catalog:
    """Name → table registry with simple statistics access."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table) -> None:
        """Add (or replace) a table under its own name."""
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Fetch a table.

        Raises:
            SchemaError: If no table has that name.
        """
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r}; have {self.names()}")
        return self._tables[name]

    def names(self) -> List[str]:
        """Registered table names, sorted."""
        return sorted(self._tables.keys())

    def row_count(self, name: str) -> int:
        """Row count of a table (the optimizer's base statistic)."""
        return self.get(name).row_count

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
