"""Logical query plans.

Plans are immutable trees of relational operators. Two uses:

* Execution — :class:`~repro.engine.executor.Executor` walks the tree.
* Similarity — :func:`plan_subtrees` enumerates every subtree as a
  canonical string, the ingredient for the paper's Jaccard workload
  similarity ("the sets of all subtrees of the query tree for all
  queries in the workload").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List, Optional, Sequence

from repro.engine.expressions import Predicate
from repro.errors import PlanError


class LogicalPlan(ABC):
    """A node in a logical query plan tree."""

    @abstractmethod
    def children(self) -> List["LogicalPlan"]:
        """Child plans (empty for leaves)."""

    @abstractmethod
    def label(self) -> str:
        """Canonical single-node label (operator + own parameters)."""

    def tables(self) -> List[str]:
        """All base-table names in the subtree, sorted."""
        out = set()
        stack: List[LogicalPlan] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                out.add(node.table_name)
            stack.extend(node.children())
        return sorted(out)

    def canonical(self) -> str:
        """Canonical string for the whole subtree."""
        kids = ",".join(c.canonical() for c in self.children())
        return f"{self.label()}({kids})" if kids else self.label()

    def __repr__(self) -> str:
        return self.canonical()


class Scan(LogicalPlan):
    """Full scan of a base table."""

    def __init__(self, table_name: str) -> None:
        self.table_name = table_name

    def children(self) -> List[LogicalPlan]:
        return []

    def label(self) -> str:
        return f"Scan[{self.table_name}]"


class Filter(LogicalPlan):
    """Predicate filter over a child plan."""

    def __init__(self, child: LogicalPlan, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def label(self) -> str:
        sig = sorted(map(str, self.predicate.signature()))
        return f"Filter[{';'.join(sig)}]"


class Project(LogicalPlan):
    """Column projection."""

    def __init__(self, child: LogicalPlan, columns: Sequence[str]) -> None:
        if not columns:
            raise PlanError("projection needs at least one column")
        self.child = child
        self.columns = list(columns)

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def label(self) -> str:
        return f"Project[{','.join(self.columns)}]"


class Join(LogicalPlan):
    """Equi-join of two child plans on ``left_col = right_col``.

    ``method`` may be ``"hash"``, ``"nl"`` (nested loops), or ``None``
    (optimizer decides).
    """

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        left_col: str,
        right_col: str,
        method: Optional[str] = None,
    ) -> None:
        if method not in (None, "hash", "nl"):
            raise PlanError(f"unknown join method {method!r}")
        self.left = left
        self.right = right
        self.left_col = left_col
        self.right_col = right_col
        self.method = method

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def label(self) -> str:
        method = self.method or "?"
        return f"Join[{self.left_col}={self.right_col};{method}]"

    def with_method(self, method: str) -> "Join":
        """Copy of this join with a fixed physical method."""
        return Join(self.left, self.right, self.left_col, self.right_col, method)


class Aggregate(LogicalPlan):
    """Aggregate over a child plan.

    ``agg`` is one of ``count | sum | avg | min | max``; ``column`` is
    required for all but ``count``.
    """

    _AGGS = ("count", "sum", "avg", "min", "max")

    def __init__(
        self, child: LogicalPlan, agg: str, column: Optional[str] = None
    ) -> None:
        if agg not in self._AGGS:
            raise PlanError(f"unknown aggregate {agg!r}; expected one of {self._AGGS}")
        if agg != "count" and column is None:
            raise PlanError(f"aggregate {agg!r} requires a column")
        self.child = child
        self.agg = agg
        self.column = column

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def label(self) -> str:
        return f"Agg[{self.agg}:{self.column or '*'}]"


class Sort(LogicalPlan):
    """Sort the child's rows by a numeric column (ascending).

    The executor may run this with a comparison sort or a learned CDF
    sort (§II's learned-sorting component); the choice is a physical
    property of the executor, not of the plan.
    """

    def __init__(self, child: LogicalPlan, column: str) -> None:
        self.child = child
        self.column = column

    def children(self) -> List["LogicalPlan"]:
        return [self.child]

    def label(self) -> str:
        return f"Sort[{self.column}]"


def plan_subtrees(plan: LogicalPlan) -> FrozenSet[str]:
    """The set of canonical strings of every subtree of ``plan``.

    This is the feature set over which
    :func:`repro.metrics.similarity.jaccard_similarity` compares
    workloads, exactly as §V-D proposes. Node labels are included on
    their own as well, so two plans sharing operators but not shapes
    still overlap partially.
    """
    out = set()
    stack: List[LogicalPlan] = [plan]
    while stack:
        node = stack.pop()
        out.add(node.canonical())
        out.add(node.label())
        stack.extend(node.children())
    return frozenset(out)


def workload_subtrees(plans: Sequence[LogicalPlan]) -> FrozenSet[str]:
    """Union of subtree sets across all queries in a workload."""
    out: set = set()
    for plan in plans:
        out |= plan_subtrees(plan)
    return frozenset(out)
