"""Cost-based query optimization with a pluggable cardinality estimator.

The traditional optimizer baseline: estimate every candidate physical
plan's cost from cardinality estimates and pick the cheapest. Candidate
plans vary join method (hash vs nested loops) and two-way join order.
The quality of its decisions is exactly as good as its cardinality
estimates — which is the hook the learned-cardinality experiments use:
plugging a better estimator into the *same* optimizer yields better
plans, and the benchmark's virtual-time charge reflects the resulting
work difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.engine.catalog import Catalog
from repro.engine.plans import (
    Aggregate,
    Filter,
    Join,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)
from repro.errors import PlanError


class CardinalityEstimator(Protocol):
    """Anything that can guess how many rows a plan node emits."""

    def estimate(self, plan: LogicalPlan, catalog: Catalog) -> float:
        """Estimated output cardinality of ``plan``."""
        ...


@dataclass(frozen=True)
class PlanCost:
    """A costed physical plan candidate.

    Attributes:
        plan: The physical plan (all join methods fixed).
        cost: Estimated abstract work units.
        estimated_rows: Estimated output cardinality.
    """

    plan: LogicalPlan
    cost: float
    estimated_rows: float


class CostBasedOptimizer:
    """Chooses join methods/order to minimize estimated work.

    Args:
        estimator: Cardinality estimator consulted for every node.
    """

    def __init__(self, estimator: CardinalityEstimator) -> None:
        self.estimator = estimator

    def optimize(self, plan: LogicalPlan, catalog: Catalog) -> PlanCost:
        """Return the cheapest physical alternative for ``plan``."""
        candidates = self.enumerate_candidates(plan)
        if not candidates:
            raise PlanError("no candidate plans generated")
        best: Optional[PlanCost] = None
        for candidate in candidates:
            cost, rows = self._cost(candidate, catalog)
            if best is None or cost < best.cost:
                best = PlanCost(plan=candidate, cost=cost, estimated_rows=rows)
        assert best is not None
        return best

    # -- candidate enumeration ---------------------------------------------------

    def enumerate_candidates(self, plan: LogicalPlan) -> List[LogicalPlan]:
        """All physical variants of ``plan`` (join methods × join swaps)."""
        if isinstance(plan, Scan):
            return [plan]
        if isinstance(plan, Filter):
            return [Filter(c, plan.predicate) for c in self.enumerate_candidates(plan.child)]
        if isinstance(plan, Project):
            return [Project(c, plan.columns) for c in self.enumerate_candidates(plan.child)]
        if isinstance(plan, Aggregate):
            return [
                Aggregate(c, plan.agg, plan.column)
                for c in self.enumerate_candidates(plan.child)
            ]
        if isinstance(plan, Sort):
            return [
                Sort(c, plan.column) for c in self.enumerate_candidates(plan.child)
            ]
        if isinstance(plan, Join):
            lefts = self.enumerate_candidates(plan.left)
            rights = self.enumerate_candidates(plan.right)
            # A join whose method is already fixed (an optimizer hint,
            # e.g. from learned steering) is not re-opened.
            methods = (plan.method,) if plan.method else ("hash", "nl")
            out: List[LogicalPlan] = []
            for left in lefts:
                for right in rights:
                    for method in methods:
                        out.append(
                            Join(left, right, plan.left_col, plan.right_col, method)
                        )
                        # Swapped operand order (matters for nested loops).
                        out.append(
                            Join(right, left, plan.right_col, plan.left_col, method)
                        )
            return out
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # -- costing ---------------------------------------------------------------------

    def _cost(self, plan: LogicalPlan, catalog: Catalog) -> Tuple[float, float]:
        """(estimated work, estimated output rows) for a physical plan."""
        rows = max(0.0, self.estimator.estimate(plan, catalog))
        if isinstance(plan, Scan):
            return float(catalog.row_count(plan.table_name)), rows
        if isinstance(plan, (Filter, Aggregate)):
            child_cost, child_rows = self._cost(plan.children()[0], catalog)
            return child_cost + child_rows, rows
        if isinstance(plan, Sort):
            child_cost, child_rows = self._cost(plan.children()[0], catalog)
            import numpy as np

            sort_work = child_rows * max(1.0, np.log2(max(2.0, child_rows)))
            return child_cost + sort_work, rows
        if isinstance(plan, Project):
            child_cost, child_rows = self._cost(plan.children()[0], catalog)
            return child_cost + 0.1 * child_rows, rows
        if isinstance(plan, Join):
            left_cost, left_rows = self._cost(plan.left, catalog)
            right_cost, right_rows = self._cost(plan.right, catalog)
            if plan.method == "nl":
                join_work = left_rows * max(1.0, right_rows)
            else:
                join_work = left_rows + right_rows + rows
            return left_cost + right_cost + join_work, rows
        raise PlanError(f"unknown plan node {type(plan).__name__}")
