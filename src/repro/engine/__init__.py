"""Minimal in-memory relational engine.

The substrate hosting the learned-query-optimization experiments: typed
columnar tables, an expression/predicate language, logical and physical
query plans (whose subtree sets feed the paper's Jaccard workload
similarity), a pull-based executor, and a cost-based optimizer with a
pluggable cardinality estimator.
"""

from repro.engine.catalog import Catalog
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Literal,
    Or,
    Predicate,
)
from repro.engine.optimizer_base import CostBasedOptimizer, PlanCost
from repro.engine.plans import (
    Aggregate,
    Filter,
    Join,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    plan_subtrees,
)
from repro.engine.schema import Column, ColumnType, Schema
from repro.engine.table import Table

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "Predicate",
    "ColumnRef",
    "Literal",
    "Comparison",
    "Between",
    "And",
    "Or",
    "LogicalPlan",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "Sort",
    "Aggregate",
    "plan_subtrees",
    "Executor",
    "ExecutionResult",
    "Catalog",
    "CostBasedOptimizer",
    "PlanCost",
]
