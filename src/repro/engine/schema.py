"""Schemas and column types for the relational substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def qualified(self, table: str) -> str:
        """Return the ``table.column`` qualified name."""
        return f"{table}.{self.name}"


class Schema:
    """An ordered collection of uniquely named columns."""

    def __init__(self, columns: Sequence[Column]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns: List[Column] = list(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self._columns)}

    @classmethod
    def of(cls, *specs: Tuple[str, ColumnType]) -> "Schema":
        """Build a schema from ``(name, type)`` tuples."""
        return cls([Column(name, ctype) for name, ctype in specs])

    @property
    def columns(self) -> List[Column]:
        """The columns, in declaration order."""
        return list(self._columns)

    @property
    def names(self) -> List[str]:
        """Column names, in declaration order."""
        return [c.name for c in self._columns]

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the schema.

        Raises:
            SchemaError: If the column does not exist.
        """
        if name not in self._index:
            raise SchemaError(f"unknown column {name!r}; have {self.names}")
        return self._index[name]

    def column(self, name: str) -> Column:
        """The column named ``name``."""
        return self._columns[self.index_of(name)]

    def has(self, name: str) -> bool:
        """Whether the schema contains ``name``."""
        return name in self._index

    def concat(self, other: "Schema", prefix_self: str, prefix_other: str) -> "Schema":
        """Concatenate for a join output, prefixing clashing names."""
        taken = set()
        out: List[Column] = []
        for prefix, schema in ((prefix_self, self), (prefix_other, other)):
            for col in schema.columns:
                name = col.name
                if name in taken:
                    name = f"{prefix}_{name}"
                if name in taken:
                    raise SchemaError(f"cannot disambiguate column {col.name!r}")
                taken.add(name)
                out.append(Column(name, col.ctype))
        return Schema(out)

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({cols})"
