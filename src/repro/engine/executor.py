"""Pull-based plan executor.

Executes a :class:`~repro.engine.plans.LogicalPlan` against a
:class:`~repro.engine.catalog.Catalog`. Physical decisions that the plan
leaves open (join method) default to hash join. The executor counts the
work it does — rows scanned, rows joined, hash probes — in
:class:`ExecutionResult.work`, and that count is what the benchmark's
analytic cost model converts into virtual service time: a bad plan does
more work, so it is charged more time, exactly the feedback loop a
learned optimizer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.plans import (
    Aggregate,
    Filter,
    Join,
    LogicalPlan,
    Project,
    Scan,
    Sort,
)
from repro.engine.schema import Column, ColumnType, Schema
from repro.engine.table import Table
from repro.errors import PlanError


@dataclass
class ExecutionResult:
    """The output of executing a plan.

    Attributes:
        table: Result rows (a transient :class:`Table`).
        scalar: Aggregate result when the plan root is an
            :class:`Aggregate`, else ``None``.
        work: Abstract work units performed (rows touched + hash ops).
        cardinalities: Observed output cardinality per plan node
            (canonical string → rows), the ground-truth labels that
            supervised cardinality estimators train on — collected during
            execution as §IV of the paper describes.
    """

    table: Table
    scalar: Optional[float]
    work: float
    cardinalities: Dict[str, int] = field(default_factory=dict)


class Executor:
    """Executes logical plans against a catalog.

    Args:
        catalog: Tables to execute against.
        learned_sorter: When set, :class:`~repro.engine.plans.Sort` nodes
            run through the learned CDF sort (its reported work units are
            charged) instead of a comparison sort (charged n·log2 n).
    """

    def __init__(self, catalog: Catalog, learned_sorter=None) -> None:
        self.catalog = catalog
        self.learned_sorter = learned_sorter

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        """Run ``plan`` and return rows, work, and per-node cardinalities."""
        cards: Dict[str, int] = {}
        table, work, scalar = self._run(plan, cards)
        return ExecutionResult(table=table, scalar=scalar, work=work, cardinalities=cards)

    # -- node dispatch ---------------------------------------------------------

    def _run(
        self, plan: LogicalPlan, cards: Dict[str, int]
    ) -> Tuple[Table, float, Optional[float]]:
        if isinstance(plan, Scan):
            result = self._scan(plan)
            work = float(result.row_count)
            scalar = None
        elif isinstance(plan, Filter):
            child, child_work, _ = self._run(plan.child, cards)
            result = self._filter(plan, child)
            work = child_work + child.row_count
            scalar = None
        elif isinstance(plan, Project):
            child, child_work, _ = self._run(plan.child, cards)
            result = self._project(plan, child)
            work = child_work + 0.1 * child.row_count
            scalar = None
        elif isinstance(plan, Join):
            left, lwork, _ = self._run(plan.left, cards)
            right, rwork, _ = self._run(plan.right, cards)
            result, join_work = self._join(plan, left, right)
            work = lwork + rwork + join_work
            scalar = None
        elif isinstance(plan, Sort):
            child, child_work, _ = self._run(plan.child, cards)
            result, sort_work = self._sort(plan, child)
            work = child_work + sort_work
            scalar = None
        elif isinstance(plan, Aggregate):
            child, child_work, _ = self._run(plan.child, cards)
            scalar = self._aggregate(plan, child)
            result = Table.from_columns(
                "agg",
                Schema([Column("value", ColumnType.FLOAT)]),
                {"value": [scalar]},
            )
            work = child_work + child.row_count
        else:
            raise PlanError(f"unknown plan node {type(plan).__name__}")
        cards[plan.canonical()] = result.row_count
        return result, work, scalar

    # -- operators -----------------------------------------------------------------

    def _scan(self, plan: Scan) -> Table:
        return self.catalog.get(plan.table_name)

    @staticmethod
    def _filter(plan: Filter, child: Table) -> Table:
        mask = plan.predicate.evaluate(child)
        return child.select_rows(np.asarray(mask, dtype=bool))

    @staticmethod
    def _project(plan: Project, child: Table) -> Table:
        cols = {name: child.column(name) for name in plan.columns}
        schema = Schema([child.schema.column(name) for name in plan.columns])
        return Table.from_columns(child.name, schema, cols)

    def _sort(self, plan: Sort, child: Table) -> Tuple[Table, float]:
        """Sort rows by a numeric column; returns (table, work units)."""
        data = child.column(plan.column)
        if isinstance(data, list):
            raise PlanError(f"cannot Sort by string column {plan.column!r}")
        if child.row_count == 0:
            return child, 0.0
        if self.learned_sorter is not None:
            _, report = self.learned_sorter.sort(np.asarray(data))
            order = np.argsort(data, kind="stable")
            work = report.work_units
        else:
            order = np.argsort(data, kind="stable")
            n = child.row_count
            work = float(n * max(1.0, np.log2(max(2, n))))
        return child.select_rows(order), work

    def _join(self, plan: Join, left: Table, right: Table) -> Tuple[Table, float]:
        method = plan.method or "hash"
        if method == "hash":
            return self._hash_join(plan, left, right)
        return self._nl_join(plan, left, right)

    def _hash_join(self, plan: Join, left: Table, right: Table) -> Tuple[Table, float]:
        # Build on the smaller side.
        build, probe = (right, left) if right.row_count <= left.row_count else (left, right)
        build_col = plan.right_col if build is right else plan.left_col
        probe_col = plan.left_col if build is right else plan.right_col
        ht: Dict[Any, List[int]] = {}
        build_keys = build.column(build_col)
        for i in range(build.row_count):
            ht.setdefault(self._key(build_keys, i), []).append(i)
        probe_keys = probe.column(probe_col)
        probe_idx: List[int] = []
        build_idx: List[int] = []
        for i in range(probe.row_count):
            for j in ht.get(self._key(probe_keys, i), ()):
                probe_idx.append(i)
                build_idx.append(j)
        work = float(build.row_count + probe.row_count + len(probe_idx))
        left_idx = probe_idx if probe is left else build_idx
        right_idx = build_idx if build is right else probe_idx
        return self._materialize_join(left, right, left_idx, right_idx), work

    def _nl_join(self, plan: Join, left: Table, right: Table) -> Tuple[Table, float]:
        left_keys = left.column(plan.left_col)
        right_keys = right.column(plan.right_col)
        left_idx: List[int] = []
        right_idx: List[int] = []
        for i in range(left.row_count):
            ki = self._key(left_keys, i)
            for j in range(right.row_count):
                if ki == self._key(right_keys, j):
                    left_idx.append(i)
                    right_idx.append(j)
        work = float(left.row_count * max(1, right.row_count))
        return self._materialize_join(left, right, left_idx, right_idx), work

    @staticmethod
    def _key(column: Any, i: int) -> Any:
        value = column[i]
        return float(value) if isinstance(value, (int, float, np.integer, np.floating)) else value

    @staticmethod
    def _materialize_join(
        left: Table, right: Table, left_idx: List[int], right_idx: List[int]
    ) -> Table:
        schema = left.schema.concat(right.schema, left.name, right.name)
        out_cols: Dict[str, Any] = {}
        names = schema.names
        pos = 0
        for col in left.schema.columns:
            data = left.column(col.name)
            if isinstance(data, list):
                out_cols[names[pos]] = [data[i] for i in left_idx]
            else:
                out_cols[names[pos]] = data[np.asarray(left_idx, dtype=np.int64)] if left_idx else data[:0]
            pos += 1
        for col in right.schema.columns:
            data = right.column(col.name)
            if isinstance(data, list):
                out_cols[names[pos]] = [data[j] for j in right_idx]
            else:
                out_cols[names[pos]] = data[np.asarray(right_idx, dtype=np.int64)] if right_idx else data[:0]
            pos += 1
        return Table.from_columns("join", schema, out_cols)

    @staticmethod
    def _aggregate(plan: Aggregate, child: Table) -> float:
        if plan.agg == "count":
            return float(child.row_count)
        data = child.column(plan.column)  # type: ignore[arg-type]
        if isinstance(data, list):
            raise PlanError(f"cannot {plan.agg} a string column {plan.column!r}")
        if len(data) == 0:
            return 0.0
        if plan.agg == "sum":
            return float(np.sum(data))
        if plan.agg == "avg":
            return float(np.mean(data))
        if plan.agg == "min":
            return float(np.min(data))
        return float(np.max(data))
