"""Columnar in-memory tables."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

import numpy as np

from repro.engine.schema import ColumnType, Schema
from repro.errors import SchemaError


class Table:
    """A named, columnar table.

    Numeric columns are stored as numpy arrays; string columns as Python
    lists. Rows are addressed by position.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._columns: Dict[str, Any] = {}
        for col in schema.columns:
            if col.ctype == ColumnType.STRING:
                self._columns[col.name] = []
            else:
                dtype = np.int64 if col.ctype == ColumnType.INT else np.float64
                self._columns[col.name] = np.empty(0, dtype=dtype)
        self._row_count = 0

    @classmethod
    def from_columns(
        cls, name: str, schema: Schema, columns: Dict[str, Sequence[Any]]
    ) -> "Table":
        """Build a table directly from column data."""
        table = cls(name, schema)
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        missing = set(schema.names) - set(columns.keys())
        if missing:
            raise SchemaError(f"missing columns: {sorted(missing)}")
        for col in schema.columns:
            data = columns[col.name]
            if col.ctype == ColumnType.STRING:
                table._columns[col.name] = [str(v) for v in data]
            else:
                dtype = np.int64 if col.ctype == ColumnType.INT else np.float64
                table._columns[col.name] = np.asarray(data, dtype=dtype)
        table._row_count = lengths.pop() if lengths else 0
        return table

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return self._row_count

    def column(self, name: str) -> Any:
        """The raw column data (numpy array or list of str)."""
        self.schema.index_of(name)  # validates
        return self._columns[name]

    def append_rows(self, rows: Sequence[Dict[str, Any]]) -> None:
        """Append dict-shaped rows (all schema columns required)."""
        if not rows:
            return
        for col in self.schema.columns:
            new_vals = []
            for row in rows:
                if col.name not in row:
                    raise SchemaError(f"row missing column {col.name!r}")
                new_vals.append(row[col.name])
            if col.ctype == ColumnType.STRING:
                self._columns[col.name].extend(str(v) for v in new_vals)
            else:
                dtype = np.int64 if col.ctype == ColumnType.INT else np.float64
                self._columns[col.name] = np.concatenate(
                    [self._columns[col.name], np.asarray(new_vals, dtype=dtype)]
                )
        self._row_count += len(rows)

    def row(self, i: int) -> Tuple[Any, ...]:
        """Row ``i`` as a tuple in schema order."""
        if not 0 <= i < self._row_count:
            raise IndexError(f"row {i} out of range [0, {self._row_count})")
        return tuple(self._columns[c.name][i] for c in self.schema.columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate all rows as tuples."""
        for i in range(self._row_count):
            yield self.row(i)

    def select_rows(self, mask_or_indices: Any) -> "Table":
        """New table containing the masked/indexed rows."""
        out = Table(self.name, self.schema)
        indices = np.asarray(mask_or_indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        for col in self.schema.columns:
            data = self._columns[col.name]
            if col.ctype == ColumnType.STRING:
                out._columns[col.name] = [data[i] for i in indices]
            else:
                out._columns[col.name] = data[indices]
        out._row_count = int(indices.size)
        return out

    def numeric_stats(self, name: str) -> Tuple[float, float]:
        """(min, max) of a numeric column (0, 0 when empty)."""
        col = self.schema.column(name)
        if col.ctype == ColumnType.STRING:
            raise SchemaError(f"column {name!r} is not numeric")
        data = self._columns[name]
        if len(data) == 0:
            return 0.0, 0.0
        return float(np.min(data)), float(np.max(data))

    def __len__(self) -> int:
        return self._row_count

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self._row_count}, {self.schema!r})"
