"""Sorted-array index with binary search.

The simplest ordered baseline: keys live in one sorted Python list and
lookups binary-search it. Inserts shift elements, which is O(n) — exactly
the trade-off a B+ tree or an updatable learned index is meant to beat,
so this structure anchors the cost-model calibration.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import KeyNotFoundError
from repro.indexes.base import OrderedIndex


class SortedArrayIndex(OrderedIndex):
    """Binary-searched sorted array of key/value pairs."""

    def __init__(self) -> None:
        super().__init__()
        self._keys: List[float] = []
        self._values: List[Any] = []
        self._bulk_cache: Optional[np.ndarray] = None

    def _locate(self, key: float) -> int:
        """Return the insertion point for ``key``, counting comparisons."""
        lo, hi = 0, len(self._keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        self.stats.node_accesses += 1
        pos = self._locate(key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return self._values[pos]
        raise KeyNotFoundError(key)

    def bulk_lookup(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorized masked binary search replicating :meth:`_locate`.

        The lockstep search takes the same branch per key per round as
        the scalar loop, so per-key comparison counts match exactly.
        """
        n = len(self._keys)
        if n == 0:
            return None
        if self._bulk_cache is None:
            self._bulk_cache = np.asarray(self._keys, dtype=np.float64)
        arr = self._bulk_cache
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        m = keys.size
        lo = np.zeros(m, dtype=np.int64)
        hi = np.full(m, n, dtype=np.int64)
        comps = np.zeros(m, dtype=np.int64)
        active = lo < hi
        while active.any():
            mid = (lo + hi) // 2
            comps[active] += 1
            go_right = np.zeros(m, dtype=bool)
            go_right[active] = arr[mid[active]] < keys[active]
            lo = np.where(active & go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        if not (arr[np.minimum(lo, n - 1)] == keys).all() or bool((lo >= n).any()):
            return None
        self.stats.lookups += m
        self.stats.node_accesses += m
        self.stats.comparisons += int(comps.sum())
        return comps, np.ones(m, dtype=np.int64), np.zeros(m, dtype=np.int64)

    def insert(self, key: float, value: Any) -> None:
        pos = self._locate(key)
        if pos < len(self._keys) and self._keys[pos] == key:
            self._values[pos] = value
        else:
            self._keys.insert(pos, key)
            self._values.insert(pos, value)
            self._bulk_cache = None
        self.stats.inserts += 1
        self.stats.node_accesses += 1

    def delete(self, key: float) -> None:
        pos = self._locate(key)
        if pos >= len(self._keys) or self._keys[pos] != key:
            raise KeyNotFoundError(key)
        del self._keys[pos]
        del self._values[pos]
        self._bulk_cache = None
        self.stats.deletes += 1

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_right(self._keys, high)
        self.stats.comparisons += max(1, (len(self._keys)).bit_length() * 2)
        self.stats.node_accesses += max(1, hi - lo)
        return list(zip(self._keys[lo:hi], self._values[lo:hi]))

    def items(self) -> Iterator[Tuple[float, Any]]:
        return iter(zip(list(self._keys), list(self._values)))

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        ordered = sorted(pairs, key=lambda kv: kv[0])
        self._keys = []
        self._values = []
        self._bulk_cache = None
        for key, value in ordered:
            if self._keys and self._keys[-1] == key:
                self._values[-1] = value  # last value wins
            else:
                self._keys.append(key)
                self._values.append(value)
        self.stats.inserts += len(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def position_of(self, key: float) -> int:
        """Return the rank of ``key`` (insertion point), without stats."""
        return bisect.bisect_left(self._keys, key)
