"""Index substrates: traditional and learned ordered indexes.

This subpackage provides the data-access structures the benchmark's
systems under test are built on:

* :class:`~repro.indexes.base.OrderedIndex` — the common interface.
* :class:`~repro.indexes.btree.BPlusTree` — classic B+ tree baseline.
* :class:`~repro.indexes.sorted_array.SortedArrayIndex` — binary search.
* :class:`~repro.indexes.hashindex.HashIndex` — unordered hash baseline.
* :class:`~repro.indexes.rmi.RecursiveModelIndex` — two-layer RMI
  (Kraska et al., "The Case for Learned Index Structures").
* :class:`~repro.indexes.pgm.PGMIndex` — piecewise-linear ε-bounded index.
* :class:`~repro.indexes.alex.AdaptiveLearnedIndex` — updatable learned
  index with gapped arrays (simplified ALEX).
"""

from repro.indexes.alex import AdaptiveLearnedIndex
from repro.indexes.base import IndexStats, OrderedIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.hashindex import HashIndex
from repro.indexes.pgm import PGMIndex
from repro.indexes.rmi import RecursiveModelIndex
from repro.indexes.sorted_array import SortedArrayIndex

__all__ = [
    "IndexStats",
    "OrderedIndex",
    "BPlusTree",
    "SortedArrayIndex",
    "HashIndex",
    "RecursiveModelIndex",
    "PGMIndex",
    "AdaptiveLearnedIndex",
]
