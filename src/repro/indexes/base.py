"""Common interface for ordered key-value indexes.

Every index in :mod:`repro.indexes` implements :class:`OrderedIndex` so the
key-value systems under test (:mod:`repro.suts`) can swap structures freely.
Keys are numeric (``float`` or ``int``); values are arbitrary objects.

Indexes also expose :class:`IndexStats`, a per-operation cost accounting
record used by the virtual-time cost models: a lookup reports how many
node probes / comparisons it performed, and the cost model converts those
counts into simulated service time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Tuple


@dataclass
class IndexStats:
    """Cumulative operation counters for an index.

    Attributes:
        lookups: Number of point lookups served.
        inserts: Number of successful inserts.
        deletes: Number of successful deletes.
        range_scans: Number of range scans served.
        comparisons: Total key comparisons performed (search work).
        node_accesses: Total node/block touches (memory-hierarchy work).
        model_evaluations: Total learned-model evaluations (learned
            indexes only; zero for traditional structures).
        retrains: Number of times the structure rebuilt or retrained.
        last_search_window: Width of the bounded search window used by
            the most recent learned lookup (0 for exact model hits).
    """

    lookups: int = 0
    inserts: int = 0
    deletes: int = 0
    range_scans: int = 0
    comparisons: int = 0
    node_accesses: int = 0
    model_evaluations: int = 0
    retrains: int = 0
    last_search_window: int = 0

    def snapshot(self) -> "IndexStats":
        """Return a copy of the current counters."""
        return IndexStats(
            lookups=self.lookups,
            inserts=self.inserts,
            deletes=self.deletes,
            range_scans=self.range_scans,
            comparisons=self.comparisons,
            node_accesses=self.node_accesses,
            model_evaluations=self.model_evaluations,
            retrains=self.retrains,
            last_search_window=self.last_search_window,
        )

    def diff(self, earlier: "IndexStats") -> "IndexStats":
        """Return counters accumulated since an ``earlier`` snapshot."""
        return IndexStats(
            lookups=self.lookups - earlier.lookups,
            inserts=self.inserts - earlier.inserts,
            deletes=self.deletes - earlier.deletes,
            range_scans=self.range_scans - earlier.range_scans,
            comparisons=self.comparisons - earlier.comparisons,
            node_accesses=self.node_accesses - earlier.node_accesses,
            model_evaluations=self.model_evaluations - earlier.model_evaluations,
            retrains=self.retrains - earlier.retrains,
            last_search_window=self.last_search_window,
        )


class OrderedIndex(ABC):
    """Abstract ordered index over numeric keys.

    Implementations must keep :attr:`stats` up to date; the benchmark's
    cost models read those counters to charge virtual time per operation.
    """

    def __init__(self) -> None:
        self.stats = IndexStats()

    # -- required interface -------------------------------------------------

    @abstractmethod
    def get(self, key: float) -> Any:
        """Return the value stored under ``key``.

        Raises:
            KeyNotFoundError: If ``key`` is absent.
        """

    @abstractmethod
    def insert(self, key: float, value: Any) -> None:
        """Insert ``key`` → ``value``; overwrite if the key exists."""

    @abstractmethod
    def delete(self, key: float) -> None:
        """Remove ``key``.

        Raises:
            KeyNotFoundError: If ``key`` is absent.
        """

    @abstractmethod
    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        """Return all ``(key, value)`` pairs with ``low <= key <= high``,
        in ascending key order."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[float, Any]]:
        """Iterate all pairs in ascending key order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of keys stored."""

    # -- optional interface --------------------------------------------------

    def bulk_lookup(self, keys) -> "Any":
        """Vectorized point lookups over a float64 key array, or ``None``.

        Contract: when supported and *every* key is found, perform the
        lookups, commit exactly the counter increments the equivalent
        sequence of :meth:`get` calls would have made to :attr:`stats`,
        and return a ``(comparisons, node_accesses, model_evaluations)``
        tuple of per-key int arrays. Return ``None`` — with :attr:`stats`
        untouched — when the bulk path is unsupported or any key would
        miss; the caller then falls back to scalar :meth:`get` calls.
        Default: unsupported.
        """
        return None

    def contains(self, key: float) -> bool:
        """Return whether ``key`` is present (default: probe ``get``)."""
        from repro.errors import KeyNotFoundError

        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        """Load sorted-or-unsorted pairs; default inserts one by one.

        Structures with faster bottom-up builds override this.
        """
        for key, value in sorted(pairs, key=lambda kv: kv[0]):
            self.insert(key, value)

    def keys(self) -> List[float]:
        """Return all keys in ascending order."""
        return [key for key, _ in self.items()]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the *index structure*.

        Counts keys, pointers, and model parameters at 8 bytes each
        (values are excluded — all structures store the same payload).
        Feeds the size-vs-latency Pareto comparison (SOSD's headline
        plot) and memory-aware TCO accounting. Default: 16 bytes per
        stored key (key + pointer).
        """
        return 16 * len(self)

    def index_overhead_bytes(self) -> int:
        """Structure size beyond the raw sorted (key, pointer) payload.

        SOSD's framing: the data itself (16 bytes/record) is the same for
        every structure; what differs is the *auxiliary* index — a B+
        tree's whole node graph vs an RMI's few model parameters. Never
        negative.
        """
        return max(0, self.size_bytes() - 16 * len(self))

    @property
    def name(self) -> str:
        """Short human-readable structure name."""
        return type(self).__name__


@dataclass
class _Entry:
    """Internal key/value pair used by array-backed structures."""

    key: float
    value: Any = field(default=None)
