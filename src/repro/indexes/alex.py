"""Updatable adaptive learned index (simplified ALEX).

Implements the core ideas of Ding et al., "ALEX: An Updatable Adaptive
Learned Index" (SIGMOD 2020), which the paper cites as the learned index
with update support:

* Data nodes are **gapped arrays**: each node reserves empty slots so a
  model-predicted insert usually lands in (or near) a free slot without
  shifting the whole array.
* Each data node owns a **linear model** from key to slot, retrained when
  the node is rebuilt.
* A node that exceeds its density bound or accumulates too much model
  error **splits** into two children; routing happens through a sorted
  list of node boundaries (a simplified inner structure).

This captures the performance anatomy the benchmark needs — model-based
search whose cost tracks model error, cheap inserts into gaps, occasional
local rebuilds — without the full ALEX machinery (cost-model-driven
split/expand decisions, adaptive RMI inner nodes).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.indexes.base import OrderedIndex
from repro.indexes.models import LinearModel, fit_linear


class _DataNode:
    """A gapped-array leaf with its own linear key→slot model."""

    __slots__ = ("slots", "vals", "occupied", "model", "count", "capacity")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.slots: List[float] = [0.0] * capacity
        self.vals: List[Any] = [None] * capacity
        self.occupied: List[bool] = [False] * capacity
        self.model = LinearModel(0.0, 0.0)
        self.count = 0

    def rebuild(self, pairs: List[Tuple[float, Any]], density: float) -> None:
        """Re-lay out ``pairs`` evenly in a gapped array at ``density``."""
        n = len(pairs)
        self.capacity = max(8, int(np.ceil(n / density)) if n else 8)
        self.slots = [0.0] * self.capacity
        self.vals = [None] * self.capacity
        self.occupied = [False] * self.capacity
        self.count = n
        if n == 0:
            self.model = LinearModel(0.0, 0.0)
            return
        stride = self.capacity / n
        keys = np.asarray([k for k, _ in pairs], dtype=np.float64)
        slot_ids = np.minimum((np.arange(n) * stride).astype(np.int64), self.capacity - 1)
        # Resolve collisions from integer truncation by pushing right.
        used = -1
        for i, (k, v) in enumerate(pairs):
            s = max(int(slot_ids[i]), used + 1)
            s = min(s, self.capacity - 1)
            while self.occupied[s]:
                s += 1
            self.slots[s] = k
            self.vals[s] = v
            self.occupied[s] = True
            used = s
        placed = np.asarray(
            [i for i in range(self.capacity) if self.occupied[i]], dtype=np.float64
        )
        self.model = fit_linear(keys, placed)

    def pairs(self) -> List[Tuple[float, Any]]:
        """All live pairs in slot (== key) order."""
        return [
            (self.slots[i], self.vals[i])
            for i in range(self.capacity)
            if self.occupied[i]
        ]

    def min_key(self) -> Optional[float]:
        for i in range(self.capacity):
            if self.occupied[i]:
                return self.slots[i]
        return None


class AdaptiveLearnedIndex(OrderedIndex):
    """Gapped-array learned index with model-based inserts (ALEX-like).

    Args:
        node_capacity: Target maximum live keys per data node before split.
        density: Fill factor applied when (re)building a node's gapped array.
    """

    def __init__(self, node_capacity: int = 256, density: float = 0.7) -> None:
        super().__init__()
        if node_capacity < 8:
            raise ConfigurationError(f"node_capacity must be >= 8, got {node_capacity}")
        if not 0.1 <= density <= 0.95:
            raise ConfigurationError(f"density must be in [0.1, 0.95], got {density}")
        self._node_capacity = node_capacity
        self._density = density
        first = _DataNode(capacity=8)
        first.rebuild([], density)
        self._nodes: List[_DataNode] = [first]
        self._boundaries: List[float] = []  # boundaries[i] = min key of nodes[i+1]
        self._size = 0

    @property
    def node_count(self) -> int:
        """Number of data nodes."""
        return len(self._nodes)

    # -- routing ------------------------------------------------------------------

    def _node_for(self, key: float) -> int:
        self.stats.comparisons += max(1, len(self._boundaries).bit_length())
        return bisect.bisect_right(self._boundaries, key)

    def _search_node(self, node: _DataNode, key: float) -> Optional[int]:
        """Exponential search around the model prediction; slot or None."""
        if node.count == 0:
            return None
        self.stats.model_evaluations += 1
        pred = int(node.model.predict(key))
        pred = min(node.capacity - 1, max(0, pred))
        # Walk to the nearest occupied slot, then exponential-search outward.
        probes = 0
        lo = hi = pred
        window = 1
        best = None
        while lo >= 0 or hi < node.capacity:
            for s in (lo, hi):
                if 0 <= s < node.capacity and node.occupied[s]:
                    probes += 1
                    self.stats.comparisons += 1
                    if node.slots[s] == key:
                        self.stats.last_search_window = max(1, probes)
                        return s
            lo -= 1
            hi += 1
            window += 1
            if window > node.capacity:
                break
        self.stats.last_search_window = max(1, probes)
        return best

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        self.stats.node_accesses += 1
        node = self._nodes[self._node_for(key)]
        slot = self._search_node(node, key)
        if slot is None:
            raise KeyNotFoundError(key)
        return node.vals[slot]

    def bulk_lookup(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Batched lookups: vectorized routing + per-node probe loop.

        Routing (the boundary bisect) is one ``searchsorted``; the gapped
        exponential probe is inherently sequential, so it runs per key with
        its comparison/model-evaluation deltas captured. On any miss the
        counters are restored to the pre-call snapshot and ``None`` is
        returned so the caller can fall back to scalar ``get`` calls.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        m = keys.size
        route_bits = max(1, len(self._boundaries).bit_length())
        snap = self.stats.snapshot()
        comps = np.empty(m, dtype=np.int64)
        me = np.empty(m, dtype=np.int64)
        barr = np.asarray(self._boundaries, dtype=np.float64)
        node_idx = np.searchsorted(barr, keys, side="right")
        for i in range(m):
            c0 = self.stats.comparisons
            e0 = self.stats.model_evaluations
            node = self._nodes[int(node_idx[i])]
            slot = self._search_node(node, float(keys[i]))
            if slot is None:
                self.stats.comparisons = snap.comparisons
                self.stats.model_evaluations = snap.model_evaluations
                self.stats.last_search_window = snap.last_search_window
                return None
            comps[i] = route_bits + (self.stats.comparisons - c0)
            me[i] = self.stats.model_evaluations - e0
        self.stats.lookups += m
        self.stats.node_accesses += m
        self.stats.comparisons += route_bits * m
        return comps, np.ones(m, dtype=np.int64), me

    # -- insert ------------------------------------------------------------------

    def insert(self, key: float, value: Any) -> None:
        self.stats.inserts += 1
        self.stats.node_accesses += 1
        node_idx = self._node_for(key)
        node = self._nodes[node_idx]
        existing = self._search_node(node, key)
        if existing is not None:
            node.vals[existing] = value
            return
        self.stats.model_evaluations += 1
        pred = int(node.model.predict(key))
        pred = min(node.capacity - 1, max(0, pred))
        slot = self._find_free_slot(node, pred, key)
        if slot is None:
            self._rebuild_or_split(node_idx, extra=(key, value))
        else:
            self._place(node, slot, key, value)
        self._size += 1
        if node.count > self._node_capacity:
            self._rebuild_or_split(node_idx, extra=None)

    def _place(self, node: _DataNode, slot: int, key: float, value: Any) -> None:
        """Put ``key`` at ``slot``, locally shifting to preserve order."""
        node.slots[slot] = key
        node.vals[slot] = value
        node.occupied[slot] = True
        node.count += 1

    def _find_free_slot(
        self, node: _DataNode, pred: int, key: float
    ) -> Optional[int]:
        """Find a free slot near ``pred`` that keeps slot order consistent.

        Scans outward; a candidate free slot is valid when every occupied
        slot left of it holds a smaller key and every occupied slot right
        of it holds a larger key within the scanned neighborhood.
        """
        cap = node.capacity
        for dist in range(cap):
            moved = 0
            for s in (pred - dist, pred + dist):
                if not 0 <= s < cap or node.occupied[s]:
                    continue
                moved += 1
                self.stats.comparisons += 1
                if self._slot_ok(node, s, key):
                    self.stats.last_search_window = dist + 1
                    return s
            if moved == 0 and pred - dist < 0 and pred + dist >= cap:
                break
        return None

    @staticmethod
    def _slot_ok(node: _DataNode, slot: int, key: float) -> bool:
        left = slot - 1
        while left >= 0 and not node.occupied[left]:
            left -= 1
        if left >= 0 and node.slots[left] > key:
            return False
        right = slot + 1
        while right < node.capacity and not node.occupied[right]:
            right += 1
        if right < node.capacity and node.slots[right] < key:
            return False
        return True

    def _rebuild_or_split(
        self, node_idx: int, extra: Optional[Tuple[float, Any]]
    ) -> None:
        """Rebuild a full node; split it when it exceeds capacity."""
        node = self._nodes[node_idx]
        pairs = node.pairs()
        if extra is not None:
            pos = bisect.bisect_left([k for k, _ in pairs], extra[0])
            pairs.insert(pos, extra)
        self.stats.retrains += 1
        if len(pairs) <= self._node_capacity:
            node.rebuild(pairs, self._density)
            return
        mid = len(pairs) // 2
        left_pairs, right_pairs = pairs[:mid], pairs[mid:]
        node.rebuild(left_pairs, self._density)
        right = _DataNode(capacity=8)
        right.rebuild(right_pairs, self._density)
        self._nodes.insert(node_idx + 1, right)
        self._boundaries.insert(node_idx, right_pairs[0][0])

    # -- delete ------------------------------------------------------------------

    def delete(self, key: float) -> None:
        node = self._nodes[self._node_for(key)]
        slot = self._search_node(node, key)
        if slot is None:
            raise KeyNotFoundError(key)
        node.occupied[slot] = False
        node.vals[slot] = None
        node.count -= 1
        self._size -= 1
        self.stats.deletes += 1

    # -- range / iteration ----------------------------------------------------------

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        start = self._node_for(low)
        out: List[Tuple[float, Any]] = []
        for node in self._nodes[start:]:
            self.stats.node_accesses += 1
            node_min = node.min_key()
            if node_min is not None and node_min > high:
                break
            for k, v in node.pairs():
                if low <= k <= high:
                    out.append((k, v))
                elif k > high:
                    return out
        return out

    def items(self) -> Iterator[Tuple[float, Any]]:
        for node in self._nodes:
            for k, v in node.pairs():
                yield k, v

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        ordered = sorted(pairs, key=lambda kv: kv[0])
        dedup: List[Tuple[float, Any]] = []
        for k, v in ordered:
            if dedup and dedup[-1][0] == k:
                dedup[-1] = (k, v)
            else:
                dedup.append((k, v))
        self._nodes = []
        self._boundaries = []
        self._size = len(dedup)
        self.stats.inserts += len(dedup)
        chunk_size = max(8, int(self._node_capacity * self._density))
        if not dedup:
            node = _DataNode(capacity=8)
            node.rebuild([], self._density)
            self._nodes = [node]
            return
        for start in range(0, len(dedup), chunk_size):
            chunk = dedup[start : start + chunk_size]
            node = _DataNode(capacity=8)
            node.rebuild(chunk, self._density)
            if self._nodes:
                self._boundaries.append(chunk[0][0])
            self._nodes.append(node)
        self.stats.retrains += 1

    def size_bytes(self) -> int:
        """Gapped slots (keys + values + occupancy) + models + routing."""
        slots = sum(node.capacity for node in self._nodes)
        return slots * 17 + len(self._nodes) * 32 + len(self._boundaries) * 8

    def __len__(self) -> int:
        return self._size
