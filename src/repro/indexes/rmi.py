"""Two-layer Recursive Model Index (RMI).

Implements the structure of Kraska et al., "The Case for Learned Index
Structures" (SIGMOD 2018), which the paper cites as the canonical learned
index: a root linear model routes each key to one of ``fanout`` leaf
linear models; each leaf model predicts a position in the underlying
sorted array and records its maximum error, so a lookup does a bounded
binary search within ``[pred - err_lo, pred + err_hi]``.

The RMI is read-optimized: inserts go to a sorted delta buffer and a
retrain (rebuild) merges the delta into the learned structure. The delta
size and the per-leaf error bounds are what the benchmark's cost model
uses to charge virtual time — a model trained on the *wrong* distribution
has large error bounds and therefore slow lookups, which is exactly the
specialization/adaptability behaviour the paper's metrics measure.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError, NotTrainedError
from repro.indexes.base import OrderedIndex
from repro.indexes.models import LinearModel, fit_linear, max_abs_error


class RecursiveModelIndex(OrderedIndex):
    """Two-layer learned index over a sorted array.

    Args:
        fanout: Number of second-layer (leaf) models.
        max_delta: Inserts buffered before an automatic retrain; ``None``
            disables auto-retraining (the caller controls retrains).
    """

    def __init__(self, fanout: int = 64, max_delta: Optional[int] = 1024) -> None:
        super().__init__()
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self._fanout = fanout
        self._max_delta = max_delta
        self._keys: np.ndarray = np.empty(0, dtype=np.float64)
        self._values: List[Any] = []
        self._root: Optional[LinearModel] = None
        self._leaves: List[LinearModel] = []
        self._errors: List[Tuple[int, int]] = []
        self._delta_keys: List[float] = []
        self._delta_values: List[Any] = []
        self._tombstones: set = set()
        # Optional workload-aware routing: leaf boundary keys derived
        # from access-sample quantiles (hot regions get more leaves).
        self._boundaries: Optional[np.ndarray] = None
        # (retrains, gathered per-leaf params) for bulk lookups.
        self._param_cache: Optional[Tuple[int, tuple]] = None

    # -- training ---------------------------------------------------------------

    @property
    def fanout(self) -> int:
        """Number of leaf models."""
        return self._fanout

    def set_fanout(self, fanout: int) -> None:
        """Change the leaf-model count; takes effect at the next retrain.

        Training budgets buy fanout: more leaf models cost more training
        work but shrink per-leaf error bounds (faster lookups).
        """
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self._fanout = int(fanout)

    @property
    def is_trained(self) -> bool:
        """Whether the learned structure has been (re)built."""
        return bool(self._leaves)

    @property
    def uses_access_routing(self) -> bool:
        """Whether leaf routing follows access-sample quantiles."""
        return self._boundaries is not None

    @property
    def delta_size(self) -> int:
        """Number of buffered (unlearned) inserts."""
        return len(self._delta_keys)

    def max_error_bound(self) -> int:
        """Worst-case bounded-search window over all leaf models."""
        if not self._errors:
            return 0
        return max(lo + hi for lo, hi in self._errors)

    def mean_error_bound(self) -> float:
        """Average bounded-search window across leaf models."""
        if not self._errors:
            return 0.0
        return float(np.mean([lo + hi for lo, hi in self._errors]))

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        """Sort, dedupe (last value wins) and train on ``pairs``."""
        ordered = sorted(pairs, key=lambda kv: kv[0])
        keys: List[float] = []
        values: List[Any] = []
        for k, v in ordered:
            if keys and keys[-1] == k:
                values[-1] = v
            else:
                keys.append(k)
                values.append(v)
        self._keys = np.asarray(keys, dtype=np.float64)
        self._values = values
        self._delta_keys = []
        self._delta_values = []
        self._tombstones = set()
        self._boundaries = None
        self.stats.inserts += len(keys)
        self._train()

    def retrain(self, access_sample: Optional[np.ndarray] = None) -> None:
        """Merge the delta buffer into the array and refit all models.

        Args:
            access_sample: When given, leaf boundaries are placed at the
                quantiles of this sample of *accessed* keys instead of
                uniformly over stored keys — frequently accessed regions
                get more (and therefore more precise) leaf models. This
                is the workload-specialization mechanism the benchmark's
                Fig 1a/1b experiments exercise: a model specialized to
                one access distribution has large error (slow lookups)
                under a different one until retrained.
        """
        if self._delta_keys or self._tombstones:
            merged_keys: List[float] = []
            merged_values: List[Any] = []
            di = 0
            dk = self._delta_keys
            dv = self._delta_values
            for k, v in zip(self._keys.tolist(), self._values):
                while di < len(dk) and dk[di] < k:
                    if dk[di] not in self._tombstones:
                        merged_keys.append(dk[di])
                        merged_values.append(dv[di])
                    di += 1
                if di < len(dk) and dk[di] == k:
                    # Delta overwrites the base value.
                    v = dv[di]
                    di += 1
                if k not in self._tombstones:
                    merged_keys.append(k)
                    merged_values.append(v)
            while di < len(dk):
                if dk[di] not in self._tombstones:
                    merged_keys.append(dk[di])
                    merged_values.append(dv[di])
                di += 1
            self._keys = np.asarray(merged_keys, dtype=np.float64)
            self._values = merged_values
            self._delta_keys = []
            self._delta_values = []
            self._tombstones = set()
        self._train(access_sample)

    def _train(self, access_sample: Optional[np.ndarray] = None) -> None:
        n = len(self._keys)
        positions = np.arange(n, dtype=np.float64)
        if n == 0:
            self._root = LinearModel(0.0, 0.0)
            self._leaves = [LinearModel(0.0, 0.0)] * self._fanout
            self._errors = [(0, 0)] * self._fanout
            self._boundaries = None
            self.stats.retrains += 1
            return
        if access_sample is not None and len(access_sample) >= self._fanout:
            # Workload-aware routing: boundaries at access quantiles.
            qs = np.linspace(0.0, 1.0, self._fanout + 1)[1:-1]
            self._boundaries = np.quantile(
                np.asarray(access_sample, dtype=np.float64), qs
            )
            self._root = None
            assignments = np.searchsorted(self._boundaries, self._keys, side="right")
        elif access_sample is None and self._boundaries is not None:
            # Delta-merge retrain without a fresh sample: keep the
            # existing workload-aware boundaries.
            assignments = np.searchsorted(self._boundaries, self._keys, side="right")
        else:
            # Data-linear routing: root model predicts the leaf id.
            self._boundaries = None
            scaled = positions * (self._fanout / max(1, n))
            self._root = fit_linear(self._keys, scaled)
            assignments = np.clip(
                self._root.predict_array(self._keys).astype(np.int64),
                0,
                self._fanout - 1,
            )
        self._leaves = []
        self._errors = []
        for leaf_id in range(self._fanout):
            mask = assignments == leaf_id
            leaf_keys = self._keys[mask]
            leaf_pos = positions[mask]
            model = fit_linear(leaf_keys, leaf_pos)
            self._leaves.append(model)
            self._errors.append(max_abs_error(model, leaf_keys, leaf_pos))
        self.stats.retrains += 1

    # -- lookup -------------------------------------------------------------------

    def _leaf_for(self, key: float) -> int:
        if self._boundaries is not None:
            return int(np.searchsorted(self._boundaries, key, side="right"))
        assert self._root is not None
        raw = int(self._root.predict(key))
        return min(self._fanout - 1, max(0, raw))

    def _learned_search(self, key: float) -> Optional[int]:
        """Bounded search for ``key`` in the learned array; None if absent."""
        n = len(self._keys)
        if n == 0:
            # An empty (or never-loaded) learned array holds nothing; a
            # lookup is a clean miss, not a training error.
            return None
        if not self._leaves:
            raise NotTrainedError("RMI has data but no trained models")
        leaf_id = self._leaf_for(key)
        self.stats.model_evaluations += 2  # root (or boundary search) + leaf
        model = self._leaves[leaf_id]
        err_lo, err_hi = self._errors[leaf_id]
        pred = int(model.predict(key))
        lo = max(0, pred - err_hi)
        hi = min(n, pred + err_lo + 1)
        if lo >= hi:
            lo, hi = max(0, min(lo, n - 1)), min(n, max(hi, 1))
        window = hi - lo
        self.stats.last_search_window = window
        self.stats.comparisons += max(1, window.bit_length())
        # Last-mile search touches every storage block the error window
        # spans (256 keys/block): model quality directly sets lookup cost.
        self.stats.node_accesses += max(1, (window + 255) // 256)
        idx = lo + int(np.searchsorted(self._keys[lo:hi], key))
        if idx < n and self._keys[idx] == key:
            return idx
        # Model error bounds can be stale only for keys outside the trained
        # set; fall back to a full binary search to preserve correctness.
        idx = int(np.searchsorted(self._keys, key))
        self.stats.comparisons += max(1, n.bit_length())
        if idx < n and self._keys[idx] == key:
            return idx
        return None

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        if key in self._tombstones:
            raise KeyNotFoundError(key)
        # Delta buffer first: most-recent writes win.
        dpos = bisect.bisect_left(self._delta_keys, key)
        self.stats.comparisons += max(1, len(self._delta_keys).bit_length())
        if dpos < len(self._delta_keys) and self._delta_keys[dpos] == key:
            return self._delta_values[dpos]
        idx = self._learned_search(key)
        if idx is None:
            raise KeyNotFoundError(key)
        return self._values[idx]

    def _leaf_params(self) -> Optional[tuple]:
        """Gathered per-leaf model params, cached per retrain generation."""
        if self._param_cache is not None and self._param_cache[0] == self.stats.retrains:
            return self._param_cache[1]
        if not self._leaves:
            return None
        payload = (
            np.asarray([mdl.slope for mdl in self._leaves], dtype=np.float64),
            np.asarray([mdl.intercept for mdl in self._leaves], dtype=np.float64),
            np.asarray([e[0] for e in self._errors], dtype=np.int64),
            np.asarray([e[1] for e in self._errors], dtype=np.int64),
        )
        self._param_cache = (self.stats.retrains, payload)
        return payload

    def bulk_lookup(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorized :meth:`get` over found keys; stats match exactly.

        Routing, truncation, window clamping, and the bounded search all
        mirror the scalar expressions (``lo + searchsorted(keys[lo:hi], k)``
        equals ``clip(searchsorted(keys, k), lo, hi)`` on a sorted array),
        so per-key comparison / node-access / model-evaluation counts are
        the ones the equivalent ``get`` sequence would have produced.
        """
        if self._tombstones:
            return None
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        m = keys.size
        d = len(self._delta_keys)
        d_bits = max(1, d.bit_length())
        comps = np.full(m, d_bits, dtype=np.int64)
        na = np.zeros(m, dtype=np.int64)
        me = np.zeros(m, dtype=np.int64)
        if d:
            darr = np.asarray(self._delta_keys, dtype=np.float64)
            dpos = np.searchsorted(darr, keys)
            delta_hit = (dpos < d) & (darr[np.minimum(dpos, d - 1)] == keys)
        else:
            delta_hit = np.zeros(m, dtype=bool)
        learned = ~delta_hit
        last_window = None
        if m and learned.any():
            n = len(self._keys)
            if n == 0 or not self._leaves:
                return None
            params = self._leaf_params()
            if params is None:
                return None
            slopes, intercepts, err_lo, err_hi = params
            lk = keys[learned]
            if self._boundaries is not None:
                leaf = np.searchsorted(
                    self._boundaries, lk, side="right"
                ).astype(np.int64)
            else:
                assert self._root is not None
                raw = self._root.slope * lk + self._root.intercept
                if not np.isfinite(raw).all():
                    return None
                leaf = np.clip(np.trunc(raw), 0, self._fanout - 1).astype(np.int64)
            pred_f = np.trunc(slopes[leaf] * lk + intercepts[leaf])
            if not np.isfinite(pred_f).all():
                return None
            pred = np.clip(pred_f, -(2.0**62), 2.0**62).astype(np.int64)
            lo = np.maximum(0, pred - err_hi[leaf])
            hi = np.minimum(n, pred + err_lo[leaf] + 1)
            bad = lo >= hi
            if bad.any():
                lo = np.where(bad, np.maximum(0, np.minimum(lo, n - 1)), lo)
                hi = np.where(bad, np.minimum(n, np.maximum(hi, 1)), hi)
            window = hi - lo  # always >= 1 after the clamp
            lcomps = np.frexp(window.astype(np.float64))[1].astype(np.int64)
            lna = (window + 255) // 256
            ss = np.searchsorted(self._keys, lk)
            idx = np.clip(ss, lo, hi)
            found = (idx < n) & (self._keys[np.minimum(idx, n - 1)] == lk)
            fail = ~found
            if fail.any():
                # Replicate the scalar full-binary-search fallback.
                lcomps[fail] += max(1, n.bit_length())
                ss_f = ss[fail]
                found2 = (ss_f < n) & (self._keys[np.minimum(ss_f, n - 1)] == lk[fail])
                if not found2.all():
                    return None
            comps[learned] += lcomps
            na[learned] += lna
            me[learned] += 2
            last_window = int(window[-1])
        self.stats.lookups += m
        self.stats.comparisons += int(comps.sum())
        self.stats.node_accesses += int(na.sum())
        self.stats.model_evaluations += int(me.sum())
        if last_window is not None:
            self.stats.last_search_window = last_window
        return comps, na, me

    # -- mutation -------------------------------------------------------------------

    def insert(self, key: float, value: Any) -> None:
        self.stats.inserts += 1
        self._tombstones.discard(key)
        dpos = bisect.bisect_left(self._delta_keys, key)
        if dpos < len(self._delta_keys) and self._delta_keys[dpos] == key:
            self._delta_values[dpos] = value
        else:
            self._delta_keys.insert(dpos, key)
            self._delta_values.insert(dpos, value)
        self.stats.node_accesses += 1
        if self._max_delta is not None and len(self._delta_keys) > self._max_delta:
            self.retrain()

    def delete(self, key: float) -> None:
        dpos = bisect.bisect_left(self._delta_keys, key)
        in_delta = dpos < len(self._delta_keys) and self._delta_keys[dpos] == key
        if in_delta:
            del self._delta_keys[dpos]
            del self._delta_values[dpos]
            self.stats.deletes += 1
            return
        idx = self._learned_search(key) if self._leaves else None
        if idx is None or key in self._tombstones:
            raise KeyNotFoundError(key)
        self._tombstones.add(key)
        self.stats.deletes += 1

    # -- range / iteration -------------------------------------------------------------

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        out = dict()
        if len(self._keys):
            lo = int(np.searchsorted(self._keys, low, side="left"))
            hi = int(np.searchsorted(self._keys, high, side="right"))
            self.stats.model_evaluations += 2
            self.stats.node_accesses += max(1, hi - lo)
            for i in range(lo, hi):
                k = float(self._keys[i])
                if k not in self._tombstones:
                    out[k] = self._values[i]
        dlo = bisect.bisect_left(self._delta_keys, low)
        dhi = bisect.bisect_right(self._delta_keys, high)
        for i in range(dlo, dhi):
            out[self._delta_keys[i]] = self._delta_values[i]
        return sorted(out.items(), key=lambda kv: kv[0])

    def items(self) -> Iterator[Tuple[float, Any]]:
        lowest = float("-inf")
        highest = float("inf")
        return iter(self.range(lowest, highest))

    def size_bytes(self) -> int:
        """Key array + value pointers + 4 params per model + delta."""
        base = len(self._keys) * 16
        models = (1 + len(self._leaves)) * 32 + len(self._errors) * 16
        boundaries = 0 if self._boundaries is None else len(self._boundaries) * 8
        delta = len(self._delta_keys) * 16
        return base + models + boundaries + delta

    def __len__(self) -> int:
        base = len(self._keys) - len(self._tombstones & set(self._keys.tolist()))
        overlap = 0
        if len(self._keys):
            key_set = set(self._keys.tolist())
            overlap = sum(1 for k in self._delta_keys if k in key_set)
        return base + len(self._delta_keys) - overlap
