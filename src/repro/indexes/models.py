"""Model-fitting utilities shared by the learned indexes.

The learned indexes map a key to an approximate position in a sorted key
array via small regression models. This module provides:

* :class:`LinearModel` — least-squares line fit over (key, position) pairs.
* :class:`CDFModel` — an empirical-CDF model built from a sample, used by
  the learned sorter and by workload/data similarity estimation.
* :func:`fit_linear` — vectorized least-squares helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import NotTrainedError


@dataclass(frozen=True)
class LinearModel:
    """An affine model ``position ~= slope * key + intercept``."""

    slope: float
    intercept: float

    def predict(self, key: float) -> float:
        """Predict the (fractional) position of ``key``."""
        return self.slope * key + self.intercept

    def predict_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict`."""
        return self.slope * keys + self.intercept


def fit_linear(keys: np.ndarray, positions: np.ndarray) -> LinearModel:
    """Least-squares fit of ``positions ~ keys``.

    Degenerate inputs (empty, single point, or constant keys) fall back to
    a flat model through the mean position, which keeps learned indexes
    well-defined on pathological segments.
    """
    n = len(keys)
    if n == 0:
        return LinearModel(0.0, 0.0)
    if n == 1:
        return LinearModel(0.0, float(positions[0]))
    kx = np.asarray(keys, dtype=np.float64)
    py = np.asarray(positions, dtype=np.float64)
    var = kx.var()
    if var <= 0.0:
        return LinearModel(0.0, float(py.mean()))
    slope = float(((kx - kx.mean()) * (py - py.mean())).sum() / (var * n))
    intercept = float(py.mean() - slope * kx.mean())
    return LinearModel(slope, intercept)


class CDFModel:
    """Empirical CDF over a key sample, with linear interpolation.

    ``predict(key)`` returns the estimated quantile of ``key`` in [0, 1].
    Used to place records in roughly sorted order (learned sorting) and to
    model data distributions.
    """

    def __init__(self, sample: Sequence[float]) -> None:
        arr = np.sort(np.asarray(list(sample), dtype=np.float64))
        if arr.size == 0:
            raise NotTrainedError("CDFModel requires a non-empty sample")
        self._xs = arr
        self._n = arr.size

    def predict(self, key: float) -> float:
        """Estimated CDF value of ``key`` (clamped to [0, 1])."""
        pos = float(np.searchsorted(self._xs, key, side="right"))
        return min(1.0, max(0.0, pos / self._n))

    def predict_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict`."""
        pos = np.searchsorted(self._xs, np.asarray(keys, dtype=np.float64), side="right")
        return np.clip(pos / self._n, 0.0, 1.0)

    def quantile(self, q: float) -> float:
        """Inverse CDF: the key at quantile ``q`` in [0, 1]."""
        q = min(1.0, max(0.0, q))
        idx = min(self._n - 1, int(q * self._n))
        return float(self._xs[idx])

    def __len__(self) -> int:
        return self._n


def max_abs_error(
    model: LinearModel, keys: np.ndarray, positions: np.ndarray
) -> Tuple[int, int]:
    """Return (max under-prediction, max over-prediction) in positions.

    The pair bounds the bounded-search window a learned index must scan
    around the model's prediction to guarantee it finds the key.
    """
    if len(keys) == 0:
        return 0, 0
    predictions = model.predict_array(np.asarray(keys, dtype=np.float64))
    errors = np.asarray(positions, dtype=np.float64) - predictions
    under = int(np.ceil(max(0.0, float(errors.max()))))
    over = int(np.ceil(max(0.0, float(-errors.min()))))
    return under, over
