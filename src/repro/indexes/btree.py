"""A classic B+ tree.

This is the traditional baseline structure the learned indexes are
compared against throughout the benchmark. It is a textbook in-memory
B+ tree: all values live in leaves, leaves are chained for range scans,
inner nodes hold separator keys, and nodes split at ``order`` entries.

Deletes use lazy underflow handling (merge with a sibling when a node
drops below half capacity) which keeps the structure valid without the
full rebalancing zoo; the benchmark exercises read/insert-heavy paths.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.indexes.base import OrderedIndex


class _Node:
    """A B+ tree node; ``leaf`` nodes carry values, inner nodes children."""

    __slots__ = ("keys", "children", "values", "next", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: List[float] = []
        self.children: List["_Node"] = []
        self.values: List[Any] = []
        self.next: Optional["_Node"] = None


class BPlusTree(OrderedIndex):
    """In-memory B+ tree with configurable fanout.

    Args:
        order: Maximum number of keys per node (>= 3). Smaller orders make
            deeper trees, useful for testing; 64 approximates a cache-line
            conscious in-memory tree.
    """

    def __init__(self, order: int = 64) -> None:
        super().__init__()
        if order < 3:
            raise ConfigurationError(f"B+ tree order must be >= 3, got {order}")
        self._order = order
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1
        self._bulk_cache = None

    @property
    def order(self) -> int:
        """Maximum number of keys per node."""
        return self._order

    @property
    def height(self) -> int:
        """Current tree height (1 = root is a leaf)."""
        return self._height

    # -- search ---------------------------------------------------------------

    def _find_leaf(self, key: float) -> _Node:
        """Descend from the root to the leaf responsible for ``key``."""
        node = self._root
        while not node.leaf:
            self.stats.node_accesses += 1
            idx = bisect.bisect_right(node.keys, key)
            self.stats.comparisons += max(1, len(node.keys).bit_length())
            node = node.children[idx]
        self.stats.node_accesses += 1
        return node

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        self.stats.comparisons += max(1, len(leaf.keys).bit_length())
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(key)

    # -- bulk lookup -----------------------------------------------------------

    def _build_bulk_cache(self):
        """Flatten the tree for vectorized routing.

        An in-order walk yields every inner separator in sorted order (one
        per leaf boundary), which makes the per-node ``bisect_right``
        descent equivalent to one global ``searchsorted`` over the
        flattened separators. Per-leaf comparison/node-access totals are
        precomputed along each root-to-leaf path. Returns ``False`` if the
        separator invariant does not hold (unsupported shape).
        """
        seps: List[float] = []
        leaves: List[Tuple[_Node, int, int]] = []

        def dfs(node: _Node, comps: int, depth: int) -> None:
            if node.leaf:
                leaves.append((node, comps, depth))
                return
            step = max(1, len(node.keys).bit_length())
            for i, child in enumerate(node.children):
                if i > 0:
                    seps.append(node.keys[i - 1])
                dfs(child, comps + step, depth + 1)

        dfs(self._root, 0, 0)
        sep_arr = np.asarray(seps, dtype=np.float64)
        if sep_arr.size and (np.diff(sep_arr) < 0).any():
            return False
        sizes = np.asarray([len(leaf.keys) for leaf, _, _ in leaves], dtype=np.int64)
        ends = np.cumsum(sizes)
        starts = ends - sizes
        all_keys = np.asarray(
            [k for leaf, _, _ in leaves for k in leaf.keys], dtype=np.float64
        )
        if all_keys.size > 1 and (np.diff(all_keys) < 0).any():
            return False
        leaf_comps = np.asarray(
            [
                comps + max(1, len(leaf.keys).bit_length())
                for leaf, comps, _ in leaves
            ],
            dtype=np.int64,
        )
        leaf_na = np.asarray([depth + 1 for _, _, depth in leaves], dtype=np.int64)
        return sep_arr, all_keys, starts, ends, leaf_comps, leaf_na

    def bulk_lookup(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorized point lookups via one global separator search."""
        if self._bulk_cache is None:
            self._bulk_cache = self._build_bulk_cache()
        cache = self._bulk_cache
        if cache is False:
            return None
        sep_arr, all_keys, starts, ends, leaf_comps, leaf_na = cache
        if all_keys.size == 0:
            return None
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        leaf_idx = np.searchsorted(sep_arr, keys, side="right")
        pos = np.searchsorted(all_keys, keys, side="left")
        ok = pos < all_keys.size
        ok &= all_keys[np.minimum(pos, all_keys.size - 1)] == keys
        ok &= (pos >= starts[leaf_idx]) & (pos < ends[leaf_idx])
        if not ok.all():
            return None
        comps = leaf_comps[leaf_idx]
        na = leaf_na[leaf_idx]
        self.stats.lookups += keys.size
        self.stats.comparisons += int(comps.sum())
        self.stats.node_accesses += int(na.sum())
        return comps, na, np.zeros(keys.size, dtype=np.int64)

    # -- insert ---------------------------------------------------------------

    def insert(self, key: float, value: Any) -> None:
        self._bulk_cache = None
        self.stats.inserts += 1
        root = self._root
        result = self._insert_into(root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(
        self, node: _Node, key: float, value: Any
    ) -> Optional[Tuple[float, _Node]]:
        """Insert under ``node``; return (separator, new right node) on split."""
        self.stats.node_accesses += 1
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key)
            self.stats.comparisons += max(1, len(node.keys).bit_length())
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        idx = bisect.bisect_right(node.keys, key)
        self.stats.comparisons += max(1, len(node.keys).bit_length())
        result = self._insert_into(node.children[idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[float, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node: _Node) -> Tuple[float, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- delete ---------------------------------------------------------------

    def delete(self, key: float) -> None:
        self._bulk_cache = None
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(key)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._size -= 1
        self.stats.deletes += 1
        # Lazy underflow: tolerate sparse leaves; collapse an empty root chain.
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1

    # -- range / iteration ------------------------------------------------------

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        leaf: Optional[_Node] = self._find_leaf(low)
        out: List[Tuple[float, Any]] = []
        while leaf is not None:
            self.stats.node_accesses += 1
            for k, v in zip(leaf.keys, leaf.values):
                if k < low:
                    continue
                if k > high:
                    return out
                out.append((k, v))
            leaf = leaf.next
        return out

    def items(self) -> Iterator[Tuple[float, Any]]:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        leaf: Optional[_Node] = node
        while leaf is not None:
            for k, v in zip(list(leaf.keys), list(leaf.values)):
                yield k, v
            leaf = leaf.next

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        """Build bottom-up from sorted pairs (deduplicated by last wins)."""
        self._bulk_cache = None
        ordered = sorted(pairs, key=lambda kv: kv[0])
        dedup: List[Tuple[float, Any]] = []
        for k, v in ordered:
            if dedup and dedup[-1][0] == k:
                dedup[-1] = (k, v)
            else:
                dedup.append((k, v))
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1
        if not dedup:
            return
        per_leaf = max(1, (self._order + 1) // 2)
        leaves: List[_Node] = []
        for start in range(0, len(dedup), per_leaf):
            chunk = dedup[start : start + per_leaf]
            leaf = _Node(leaf=True)
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        self._size = len(dedup)
        self.stats.inserts += len(dedup)
        level: List[_Node] = leaves
        height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            per_inner = max(2, (self._order + 1) // 2 + 1)
            for start in range(0, len(level), per_inner):
                group = level[start : start + per_inner]
                if len(group) == 1 and parents:
                    # Fold a lone trailing child into the previous parent.
                    parents[-1].keys.append(self._min_key(group[0]))
                    parents[-1].children.append(group[0])
                    continue
                parent = _Node(leaf=False)
                parent.children = group
                parent.keys = [self._min_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
            height += 1
        self._root = level[0]
        self._height = height

    @staticmethod
    def _min_key(node: _Node) -> float:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def size_bytes(self) -> int:
        """Keys + child/value pointers + per-node header (64 B)."""
        nodes = 0
        entries = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            entries += len(node.keys)
            if not node.leaf:
                entries += len(node.children)
                stack.extend(node.children)
            else:
                entries += len(node.values)
        return entries * 8 + nodes * 64

    def __len__(self) -> int:
        return self._size
