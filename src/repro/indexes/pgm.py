"""PGM-style piecewise-linear learned index.

Builds an ε-bounded piecewise linear approximation (PLA) of the key→rank
function with a greedy streaming algorithm: each segment is extended while
a feasible slope interval exists such that every covered key's rank is
within ±ε of the segment's prediction (the classic "shrinking cone"
construction used by FITing-tree / PGM-index). Segments are indexed
recursively by another PLA level until one segment remains.

Lookups descend the levels, each time doing an ε-bounded binary search,
so the worst-case probe cost is O(levels * log ε) instead of O(log n).
Like the RMI here, inserts buffer into a delta and merge on retrain.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.indexes.base import OrderedIndex


@dataclass(frozen=True)
class Segment:
    """One linear segment: predicts rank ``slope * (key - key0) + pos0``."""

    key0: float
    pos0: float
    slope: float

    def predict(self, key: float) -> float:
        """Predicted rank of ``key`` within this segment's level."""
        return self.slope * (key - self.key0) + self.pos0


def build_pla(keys: np.ndarray, epsilon: int) -> List[Segment]:
    """Greedy ε-PLA over sorted ``keys`` (ranks are implicit 0..n-1).

    Maintains a feasible slope interval [lo, hi]; starts a new segment
    when adding the next point would empty the interval.
    """
    n = len(keys)
    if n == 0:
        return []
    segments: List[Segment] = []
    start = 0
    slope_lo, slope_hi = -np.inf, np.inf
    for i in range(1, n + 1):
        if i < n:
            dx = float(keys[i] - keys[start])
            dy = float(i - start)
            if dx <= 0:
                # Duplicate-ish keys: force a break to keep slopes finite.
                feasible = False
            else:
                lo_i = (dy - epsilon) / dx
                hi_i = (dy + epsilon) / dx
                new_lo = max(slope_lo, lo_i)
                new_hi = min(slope_hi, hi_i)
                feasible = new_lo <= new_hi
        else:
            feasible = False
        if feasible:
            slope_lo, slope_hi = new_lo, new_hi
        else:
            if slope_lo > slope_hi or not np.isfinite(slope_lo) or not np.isfinite(slope_hi):
                slope = 0.0
            else:
                slope = (slope_lo + slope_hi) / 2.0
            if not np.isfinite(slope):
                slope = 0.0
            segments.append(Segment(float(keys[start]), float(start), slope))
            start = i
            slope_lo, slope_hi = -np.inf, np.inf
    return segments


class PGMIndex(OrderedIndex):
    """Multi-level ε-bounded piecewise-linear learned index.

    Args:
        epsilon: Maximum rank error per segment (bounded-search half-width).
        max_delta: Buffered inserts before automatic retrain; ``None``
            disables auto-retraining.
    """

    def __init__(self, epsilon: int = 32, max_delta: Optional[int] = 1024) -> None:
        super().__init__()
        if epsilon < 1:
            raise ConfigurationError(f"epsilon must be >= 1, got {epsilon}")
        self._epsilon = epsilon
        self._max_delta = max_delta
        self._keys: np.ndarray = np.empty(0, dtype=np.float64)
        self._values: List[Any] = []
        # levels[0] covers the data; levels[k] indexes level k-1's segments.
        self._levels: List[List[Segment]] = []
        # _level_keys[k] = the key0 array of level k's segments.
        self._level_keys: List[np.ndarray] = []
        self._delta_keys: List[float] = []
        self._delta_values: List[Any] = []
        self._tombstones: set = set()
        # (retrains, gathered per-level segment params) for bulk lookups.
        self._param_cache: Optional[Tuple[int, list]] = None

    @property
    def epsilon(self) -> int:
        """Per-segment rank error bound."""
        return self._epsilon

    @property
    def levels(self) -> int:
        """Number of PLA levels (0 when untrained/empty)."""
        return len(self._levels)

    @property
    def segment_count(self) -> int:
        """Number of bottom-level segments."""
        return len(self._levels[0]) if self._levels else 0

    @property
    def delta_size(self) -> int:
        """Number of buffered (unlearned) inserts."""
        return len(self._delta_keys)

    # -- build -----------------------------------------------------------------

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        ordered = sorted(pairs, key=lambda kv: kv[0])
        keys: List[float] = []
        values: List[Any] = []
        for k, v in ordered:
            if keys and keys[-1] == k:
                values[-1] = v
            else:
                keys.append(k)
                values.append(v)
        self._keys = np.asarray(keys, dtype=np.float64)
        self._values = values
        self._delta_keys = []
        self._delta_values = []
        self._tombstones = set()
        self.stats.inserts += len(keys)
        self._train()

    def retrain(self) -> None:
        """Merge delta + tombstones into the base array and rebuild levels."""
        if self._delta_keys or self._tombstones:
            merged = {
                float(k): v
                for k, v in zip(self._keys.tolist(), self._values)
                if k not in self._tombstones
            }
            for k, v in zip(self._delta_keys, self._delta_values):
                if k not in self._tombstones:
                    merged[k] = v
            ordered = sorted(merged.items(), key=lambda kv: kv[0])
            self._keys = np.asarray([k for k, _ in ordered], dtype=np.float64)
            self._values = [v for _, v in ordered]
            self._delta_keys = []
            self._delta_values = []
            self._tombstones = set()
        self._train()

    def _train(self) -> None:
        self._levels = []
        self._level_keys: List[np.ndarray] = []
        if len(self._keys) == 0:
            self.stats.retrains += 1
            return
        level = build_pla(self._keys, self._epsilon)
        self._levels.append(level)
        while len(level) > 1:
            seg_keys = np.asarray([s.key0 for s in level], dtype=np.float64)
            self._level_keys.append(seg_keys)
            level = build_pla(seg_keys, self._epsilon)
            self._levels.append(level)
        self.stats.retrains += 1

    # -- search -----------------------------------------------------------------

    def _bounded_search(
        self, keys: np.ndarray, key: float, pred: float
    ) -> int:
        """ε-bounded left-insertion search around a predicted rank."""
        n = len(keys)
        lo = max(0, min(n, int(pred) - self._epsilon))
        hi = max(lo, min(n, int(pred) + self._epsilon + 2))
        window = max(1, hi - lo)
        self.stats.last_search_window = window
        self.stats.comparisons += max(1, window.bit_length())
        # Widen if the prediction was off (correctness guard for keys the
        # chosen segment does not actually cover).
        if lo >= n or keys[lo] > key:
            lo = 0
        if hi <= 0 or keys[hi - 1] < key:
            hi = n
        return lo + int(np.searchsorted(keys[lo:hi], key))

    def _rank(self, key: float) -> int:
        """Left insertion point of ``key`` in the learned array."""
        if not self._levels:
            return 0
        # Descend from the top level to find the bottom segment. The
        # responsible segment at each level is the last whose key0 <= key
        # (an exact boundary hit belongs to the *starting* segment).
        seg_idx = 0
        for depth in range(len(self._levels) - 1, 0, -1):
            level = self._levels[depth]
            below = self._levels[depth - 1]
            seg = level[min(seg_idx, len(level) - 1)]
            self.stats.model_evaluations += 1
            self.stats.node_accesses += 1  # one block touch per level
            pred = seg.predict(key)
            seg_keys = self._level_keys[depth - 1]
            pos = self._bounded_search(seg_keys, key, pred)
            if pos < len(seg_keys) and seg_keys[pos] == key:
                seg_idx = pos
            else:
                seg_idx = max(0, pos - 1)
            seg_idx = min(seg_idx, len(below) - 1)
        seg = self._levels[0][min(seg_idx, len(self._levels[0]) - 1)]
        self.stats.model_evaluations += 1
        pred = seg.predict(key)
        self.stats.node_accesses += 1
        return self._bounded_search(self._keys, key, pred)

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        if key in self._tombstones:
            raise KeyNotFoundError(key)
        dpos = bisect.bisect_left(self._delta_keys, key)
        self.stats.comparisons += max(1, len(self._delta_keys).bit_length())
        if dpos < len(self._delta_keys) and self._delta_keys[dpos] == key:
            return self._delta_values[dpos]
        n = len(self._keys)
        if n == 0:
            raise KeyNotFoundError(key)
        idx = self._rank(key)
        if idx < n and self._keys[idx] == key:
            return self._values[idx]
        raise KeyNotFoundError(key)

    def _level_params(self) -> Optional[list]:
        """Per-level (key0, pos0, slope) arrays, cached per retrain."""
        if self._param_cache is not None and self._param_cache[0] == self.stats.retrains:
            return self._param_cache[1]
        if not self._levels:
            return None
        payload = [
            (
                np.asarray([s.key0 for s in level], dtype=np.float64),
                np.asarray([s.pos0 for s in level], dtype=np.float64),
                np.asarray([s.slope for s in level], dtype=np.float64),
            )
            for level in self._levels
        ]
        self._param_cache = (self.stats.retrains, payload)
        return payload

    def _vectorized_bounded_search(
        self, seg_keys: np.ndarray, lk: np.ndarray, pred_f: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_bounded_search`; returns (positions, windows).

        Counter updates are left to the caller (windows carry the widths).
        """
        n_k = seg_keys.size
        eps = self._epsilon
        pred = np.clip(np.trunc(pred_f), -(2.0**62), 2.0**62).astype(np.int64)
        lo = np.maximum(0, np.minimum(n_k, pred - eps))
        hi = np.maximum(lo, np.minimum(n_k, pred + eps + 2))
        window = np.maximum(1, hi - lo)
        if n_k:
            widen_lo = (lo >= n_k) | (seg_keys[np.minimum(lo, n_k - 1)] > lk)
            lo = np.where(widen_lo, 0, lo)
            widen_hi = (hi <= 0) | (seg_keys[np.maximum(hi - 1, 0)] < lk)
            hi = np.where(widen_hi, n_k, hi)
        pos = np.clip(np.searchsorted(seg_keys, lk), lo, hi)
        return pos, window

    def bulk_lookup(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorized :meth:`get` over found keys; stats match exactly.

        The level descent runs breadth-wise: every key advances one level
        per pass, with segment params gathered from per-retrain caches.
        """
        if self._tombstones:
            return None
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        m = keys.size
        d = len(self._delta_keys)
        d_bits = max(1, d.bit_length())
        comps = np.full(m, d_bits, dtype=np.int64)
        na = np.zeros(m, dtype=np.int64)
        me = np.zeros(m, dtype=np.int64)
        last_window = None
        if d:
            darr = np.asarray(self._delta_keys, dtype=np.float64)
            dpos = np.searchsorted(darr, keys)
            delta_hit = (dpos < d) & (darr[np.minimum(dpos, d - 1)] == keys)
        else:
            delta_hit = np.zeros(m, dtype=bool)
        learned = ~delta_hit
        if m and learned.any():
            n = len(self._keys)
            if n == 0 or not self._levels:
                return None
            params = self._level_params()
            lk = keys[learned]
            lcomps = np.zeros(lk.size, dtype=np.int64)
            depths = len(self._levels)
            seg_idx = np.zeros(lk.size, dtype=np.int64)
            for depth in range(depths - 1, 0, -1):
                key0, pos0, slope = params[depth]
                si = np.minimum(seg_idx, len(self._levels[depth]) - 1)
                pred_f = slope[si] * (lk - key0[si]) + pos0[si]
                if not np.isfinite(pred_f).all():
                    return None
                seg_keys = self._level_keys[depth - 1]
                pos, window = self._vectorized_bounded_search(seg_keys, lk, pred_f)
                lcomps += np.frexp(window.astype(np.float64))[1].astype(np.int64)
                n_k = seg_keys.size
                hit = (pos < n_k) & (seg_keys[np.minimum(pos, n_k - 1)] == lk)
                seg_idx = np.where(hit, pos, np.maximum(0, pos - 1))
                seg_idx = np.minimum(seg_idx, len(self._levels[depth - 1]) - 1)
            key0, pos0, slope = params[0]
            si = np.minimum(seg_idx, len(self._levels[0]) - 1)
            pred_f = slope[si] * (lk - key0[si]) + pos0[si]
            if not np.isfinite(pred_f).all():
                return None
            idx, window = self._vectorized_bounded_search(self._keys, lk, pred_f)
            lcomps += np.frexp(window.astype(np.float64))[1].astype(np.int64)
            found = (idx < n) & (self._keys[np.minimum(idx, n - 1)] == lk)
            if not found.all():
                return None
            comps[learned] += lcomps
            na[learned] += depths
            me[learned] += depths
            last_window = int(window[-1])
        self.stats.lookups += m
        self.stats.comparisons += int(comps.sum())
        self.stats.node_accesses += int(na.sum())
        self.stats.model_evaluations += int(me.sum())
        if last_window is not None:
            self.stats.last_search_window = last_window
        return comps, na, me

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: float, value: Any) -> None:
        self.stats.inserts += 1
        self._tombstones.discard(key)
        dpos = bisect.bisect_left(self._delta_keys, key)
        if dpos < len(self._delta_keys) and self._delta_keys[dpos] == key:
            self._delta_values[dpos] = value
        else:
            self._delta_keys.insert(dpos, key)
            self._delta_values.insert(dpos, value)
        self.stats.node_accesses += 1
        if self._max_delta is not None and len(self._delta_keys) > self._max_delta:
            self.retrain()

    def delete(self, key: float) -> None:
        dpos = bisect.bisect_left(self._delta_keys, key)
        if dpos < len(self._delta_keys) and self._delta_keys[dpos] == key:
            del self._delta_keys[dpos]
            del self._delta_values[dpos]
            self.stats.deletes += 1
            return
        n = len(self._keys)
        idx = self._rank(key) if n else n
        if idx >= n or self._keys[idx] != key or key in self._tombstones:
            raise KeyNotFoundError(key)
        self._tombstones.add(key)
        self.stats.deletes += 1

    # -- range / iteration ---------------------------------------------------------

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        out = dict()
        if len(self._keys):
            lo = int(np.searchsorted(self._keys, low, side="left"))
            hi = int(np.searchsorted(self._keys, high, side="right"))
            self.stats.node_accesses += max(1, hi - lo)
            for i in range(lo, hi):
                k = float(self._keys[i])
                if k not in self._tombstones:
                    out[k] = self._values[i]
        dlo = bisect.bisect_left(self._delta_keys, low)
        dhi = bisect.bisect_right(self._delta_keys, high)
        for i in range(dlo, dhi):
            out[self._delta_keys[i]] = self._delta_values[i]
        return sorted(out.items(), key=lambda kv: kv[0])

    def items(self) -> Iterator[Tuple[float, Any]]:
        return iter(self.range(float("-inf"), float("inf")))

    def size_bytes(self) -> int:
        """Key array + value pointers + 3 params per segment per level."""
        base = len(self._keys) * 16
        segments = sum(len(level) for level in self._levels) * 24
        level_keys = sum(arr.size for arr in self._level_keys) * 8
        delta = len(self._delta_keys) * 16
        return base + segments + level_keys + delta

    def __len__(self) -> int:
        base_keys = set(self._keys.tolist())
        live_base = len(base_keys - self._tombstones)
        extra = sum(1 for k in self._delta_keys if k not in base_keys)
        return live_base + extra
