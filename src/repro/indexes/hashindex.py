"""Hash index baseline.

An unordered structure backed by a Python dict. Point operations are O(1);
range scans must sort the full key set, which is the classical argument
for keeping an ordered index around — the benchmark's YCSB-E (scan-heavy)
workload makes this trade-off visible.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import KeyNotFoundError
from repro.indexes.base import OrderedIndex


class HashIndex(OrderedIndex):
    """Dict-backed hash index with O(n log n) range scans."""

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[float, Any] = {}

    def get(self, key: float) -> Any:
        self.stats.lookups += 1
        self.stats.node_accesses += 1
        self.stats.comparisons += 1
        try:
            return self._table[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def insert(self, key: float, value: Any) -> None:
        self.stats.inserts += 1
        self.stats.node_accesses += 1
        self._table[key] = value

    def delete(self, key: float) -> None:
        if key not in self._table:
            raise KeyNotFoundError(key)
        del self._table[key]
        self.stats.deletes += 1

    def range(self, low: float, high: float) -> List[Tuple[float, Any]]:
        self.stats.range_scans += 1
        # A hash table has no order: a range scan inspects every key.
        self.stats.node_accesses += max(1, len(self._table))
        self.stats.comparisons += len(self._table)
        hits = [(k, v) for k, v in self._table.items() if low <= k <= high]
        hits.sort(key=lambda kv: kv[0])
        return hits

    def items(self) -> Iterator[Tuple[float, Any]]:
        return iter(sorted(self._table.items(), key=lambda kv: kv[0]))

    def bulk_load(self, pairs: List[Tuple[float, Any]]) -> None:
        for key, value in pairs:
            self._table[key] = value
        self.stats.inserts += len(pairs)

    def __len__(self) -> int:
        return len(self._table)
