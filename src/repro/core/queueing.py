"""Vectorized FIFO queueing kernels for the batched driver.

The scalar driver computes, per query, ``start = max(arrival, free)``,
``completion = start + service``, ``free = completion``. This module
reproduces that recurrence bit-exactly over whole arrays by exploiting
its structure: the timeline decomposes into *idle runs* (every query
starts at its own arrival, so ``completion = arrival + service``
elementwise) and *busy chains* (each query starts at the previous
completion, so completions are a prefix sum seeded with the server's
free time — and ``np.cumsum`` accumulates left-to-right, matching the
scalar addition order exactly). The kernel alternates between the two
regimes with an adaptive chunk size.

The kernel itself is oblivious to ticks and faults: the batched driver
slices each segment's batch at every interrupt boundary (tick
checkpoints and :mod:`repro.faults` point faults), so a single kernel
call never spans an online retrain or an outage, and window-fault
service perturbation happens *before* queueing (arrival-keyed, via
:meth:`repro.faults.FaultClock.perturb_batch`). ``servers > 1``
bypasses this module and keeps the per-query heap inside the batch
loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_MIN_CHUNK = 32
_MAX_CHUNK = 4096


def fifo_single_server(
    arrivals: np.ndarray, services: np.ndarray, free: float = 0.0
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Exact single-server FIFO start/completion times.

    Args:
        arrivals: Ascending arrival timestamps.
        services: Per-query service times (already clamped > 0).
        free: Server free time entering the batch.

    Returns:
        ``(starts, completions, new_free)`` — identical, element for
        element, to the scalar ``max``/``+`` loop at the same inputs.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    n = arrivals.size
    starts = np.empty(n, dtype=np.float64)
    completions = np.empty(n, dtype=np.float64)
    i = 0
    chunk = _MIN_CHUNK
    while i < n:
        j = min(n, i + chunk)
        a = arrivals[i:j]
        s = services[i:j]
        if a[0] >= free:
            # Idle run: starts at arrivals. Valid until an arrival lands
            # before its predecessor's completion (strictly — a tie still
            # starts at the arrival, same value either way).
            c = a + s
            viol = np.flatnonzero(a[1:] < c[:-1])
            k = int(viol[0]) + 1 if viol.size else a.size
            starts[i : i + k] = a[:k]
            completions[i : i + k] = c[:k]
        else:
            # Busy chain: starts at previous completions. cumsum is a
            # sequential left-to-right accumulate, so seeding it with
            # ``free`` reproduces the scalar addition chain exactly.
            seq = np.empty(a.size + 1, dtype=np.float64)
            seq[0] = free
            seq[1:] = s
            cs = np.cumsum(seq)
            c = cs[1:]
            viol = np.flatnonzero(a[1:] >= c[:-1])
            k = int(viol[0]) + 1 if viol.size else a.size
            starts[i : i + k] = cs[:k]
            completions[i : i + k] = c[:k]
        free = float(completions[i + k - 1])
        i += k
        chunk = min(_MAX_CHUNK, chunk * 2) if k == a.size else _MIN_CHUNK
    return starts, completions, free
