"""Bounded-memory streaming pipeline: blocks in, metrics out.

The classic pipeline retains every query in a :class:`ColumnarRecorder`
and hands the finished :class:`~repro.core.results.RunResult` to the
metric kernels — simple, but memory grows with run length. This module
is the other half of the tentpole: the driver streams fixed-size blocks
of completed queries through a :class:`StreamingRecorder`, which folds
them into online metric accumulators (see the ``Online*`` classes in
:mod:`repro.metrics`) and optionally spills the raw columns to sharded
files, never holding more than one segment's arrivals plus O(block)
state in memory.

Equivalence contract (pinned by ``benchmarks/bench_streaming.py`` and
the property tests): on the same scenario/seed/config, the streaming
path's integer-count metrics — throughput series, cumulative curve,
latency bands, recovery/adjustment, per-segment throughput boxes — are
*bit-identical* to the in-memory kernels; float mass/mean summaries
(``fsum`` over per-block partials) agree to tolerance. Spilled columns
reload into a :class:`~repro.core.results.QueryColumns` equal to the
in-memory one, element for element.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phases import TrainingEvent
from repro.core.results import QueryColumns
from repro.errors import ConfigurationError

__all__ = [
    "StreamBlock",
    "StreamingRecorder",
    "ColumnSpiller",
    "ShardSpec",
    "StreamingRunSummary",
    "load_spilled_columns",
    "write_sharded_manifest",
]


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a scenario for sharded streaming.

    Segment sharding assigns the contiguous segment range
    ``[segment_lo, segment_hi)``; segments before the range are replayed
    for SUT state (training, data injection) without executing queries,
    segments after it are skipped entirely. For single-segment
    scenarios, ``arrival_lo``/``arrival_hi`` additionally slice the
    segment's arrival indices ``[arrival_lo, arrival_hi)`` — the worker
    still generates the full segment batch so the workload RNG stream
    is untouched, then executes only its slice.

    Attributes:
        index: Shard position in stream order (0-based).
        n_shards: Total shards in the plan.
        segment_lo / segment_hi: Executed segment range (half-open).
        arrival_lo / arrival_hi: Optional arrival-index range within the
            single executed segment (half-open; ``None`` = all).
    """

    index: int
    n_shards: int
    segment_lo: int
    segment_hi: int
    arrival_lo: Optional[int] = None
    arrival_hi: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the sharding-plan wire format)."""
        payload: Dict[str, Any] = {
            "index": self.index,
            "n_shards": self.n_shards,
            "segment_lo": self.segment_lo,
            "segment_hi": self.segment_hi,
        }
        if self.arrival_lo is not None:
            payload["arrival_lo"] = self.arrival_lo
            payload["arrival_hi"] = self.arrival_hi
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        """Reconstruct a spec from :meth:`to_dict` output."""
        return cls(
            index=int(data["index"]),
            n_shards=int(data["n_shards"]),
            segment_lo=int(data["segment_lo"]),
            segment_hi=int(data["segment_hi"]),
            arrival_lo=(
                int(data["arrival_lo"]) if "arrival_lo" in data else None
            ),
            arrival_hi=(
                int(data["arrival_hi"]) if "arrival_hi" in data else None
            ),
        )


class StreamBlock:
    """One block of completed queries, in driver append (arrival) order.

    The unit of work the streaming pipeline passes to accumulators and
    the spiller. ``completions_sorted`` and ``latencies`` are derived
    once here so every accumulator shares them.
    """

    __slots__ = (
        "arrivals",
        "starts",
        "completions",
        "completions_sorted",
        "latencies",
        "op_codes",
        "segment_codes",
    )

    def __init__(
        self,
        arrivals: np.ndarray,
        starts: np.ndarray,
        completions: np.ndarray,
        op_codes: np.ndarray,
        segment_codes: np.ndarray,
    ) -> None:
        """Wrap the five columns; derives sorted completions/latencies."""
        self.arrivals = arrivals
        self.starts = starts
        self.completions = completions
        self.completions_sorted = np.sort(completions)
        self.latencies = completions - arrivals
        self.op_codes = op_codes
        self.segment_codes = segment_codes

    def __len__(self) -> int:
        return int(self.arrivals.size)


class ColumnSpiller:
    """Spills query columns to sharded files instead of keeping them.

    Blocks buffer up to ``shard_rows`` rows, then flush as one shard:
    ``shard-00000.npz`` (NumPy, always available) or
    ``shard-00000.parquet`` (requires ``pyarrow``; gated with a
    :class:`~repro.errors.ConfigurationError` when missing so the core
    pipeline stays dependency-free). :meth:`finish` writes
    ``manifest.json`` with the shard list and label vocabularies;
    :func:`load_spilled_columns` reassembles the full
    :class:`~repro.core.results.QueryColumns` from it.
    """

    def __init__(
        self,
        directory,
        fmt: str = "npz",
        shard_rows: int = 262_144,
    ) -> None:
        """Spill to ``directory`` in ``fmt`` shards of ``shard_rows``."""
        if fmt not in ("npz", "parquet"):
            raise ConfigurationError(f"unknown spill format {fmt!r}")
        if fmt == "parquet":
            try:
                import pyarrow  # noqa: F401
                import pyarrow.parquet  # noqa: F401
            except ImportError as exc:
                raise ConfigurationError(
                    "parquet spill requires pyarrow; use fmt='npz'"
                ) from exc
        if shard_rows < 1:
            raise ConfigurationError("shard_rows must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fmt = fmt
        self.shard_rows = int(shard_rows)
        self._pending: List[Tuple[np.ndarray, ...]] = []
        self._pending_rows = 0
        self._shards: List[str] = []
        self._rows = 0
        self._finished = False
        self._manifest: Optional[dict] = None

    def write(self, block: StreamBlock) -> None:
        """Buffer one block, flushing full shards as they fill up."""
        if self._finished:
            raise ConfigurationError("spiller already finished")
        if len(block) == 0:
            return
        self._pending.append(
            (
                np.array(block.arrivals, dtype=np.float64),
                np.array(block.starts, dtype=np.float64),
                np.array(block.completions, dtype=np.float64),
                np.array(block.op_codes, dtype=np.int32),
                np.array(block.segment_codes, dtype=np.int32),
            )
        )
        self._pending_rows += len(block)
        while self._pending_rows >= self.shard_rows:
            self._flush_shard(self.shard_rows)

    def _take(self, rows: int) -> Tuple[np.ndarray, ...]:
        """Pop exactly ``rows`` buffered rows as one column tuple."""
        taken: List[Tuple[np.ndarray, ...]] = []
        needed = rows
        while needed > 0:
            head = self._pending[0]
            size = int(head[0].size)
            if size <= needed:
                taken.append(self._pending.pop(0))
                needed -= size
            else:
                taken.append(tuple(col[:needed] for col in head))
                self._pending[0] = tuple(col[needed:] for col in head)
                needed = 0
        self._pending_rows -= rows
        if len(taken) == 1:
            return taken[0]
        return tuple(
            np.concatenate([part[i] for part in taken]) for i in range(5)
        )

    def _flush_shard(self, rows: int) -> None:
        arrivals, starts, completions, op_codes, segment_codes = self._take(rows)
        name = f"shard-{len(self._shards):05d}.{self.fmt}"
        path = self.directory / name
        if self.fmt == "npz":
            np.savez_compressed(
                path,
                arrivals=arrivals,
                starts=starts,
                completions=completions,
                op_codes=op_codes,
                segment_codes=segment_codes,
            )
        else:
            import pyarrow as pa
            import pyarrow.parquet as pq

            table = pa.table(
                {
                    "arrivals": arrivals,
                    "starts": starts,
                    "completions": completions,
                    "op_codes": op_codes,
                    "segment_codes": segment_codes,
                }
            )
            pq.write_table(table, path)
        self._shards.append(name)
        self._rows += rows

    def finish(
        self,
        op_vocab: Sequence[str],
        segment_vocab: Sequence[str],
    ) -> dict:
        """Flush the tail shard and write ``manifest.json``.

        Idempotent: the first call fixes the manifest; repeat calls
        (e.g. a retried shard's cleanup path) return the cached copy
        without rewriting the file, and raise
        :class:`~repro.errors.ConfigurationError` when handed different
        vocabularies than the first call.
        """
        if self._manifest is not None:
            if (
                list(op_vocab) != self._manifest["op_vocab"]
                or list(segment_vocab) != self._manifest["segment_vocab"]
            ):
                raise ConfigurationError(
                    "spiller already finished with different vocabularies"
                )
            return self._manifest
        if self._pending_rows:
            self._flush_shard(self._pending_rows)
        self._finished = True
        manifest = {
            "format": self.fmt,
            "rows": self._rows,
            "shards": list(self._shards),
            "op_vocab": list(op_vocab),
            "segment_vocab": list(segment_vocab),
            "directory": str(self.directory),
        }
        with open(self.directory / "manifest.json", "w") as fh:
            json.dump(manifest, fh)
        self._manifest = manifest
        return manifest


def write_sharded_manifest(
    directory,
    shard_manifests: Sequence[dict],
    op_vocab: Sequence[str],
    segment_vocab: Sequence[str],
) -> dict:
    """Stitch per-shard spill directories under one merged manifest.

    ``shard_manifests`` are the flat manifests the shard workers'
    spillers produced (in stream order), each living in a subdirectory
    of ``directory``. The merged manifest records, per shard, the
    subdirectory plus code remaps from the shard-local vocabularies into
    the merged ``op_vocab`` / ``segment_vocab``, so
    :func:`load_spilled_columns` can reassemble the columns in arrival
    order with globally consistent codes.
    """
    directory = Path(directory)
    op_index = {name: i for i, name in enumerate(op_vocab)}
    segment_index = {name: i for i, name in enumerate(segment_vocab)}
    shards = []
    rows = 0
    for shard_manifest in shard_manifests:
        shard_dir = Path(shard_manifest["directory"])
        try:
            relative = str(shard_dir.relative_to(directory))
        except ValueError as exc:
            raise ConfigurationError(
                f"shard spill {shard_dir} is not under {directory}"
            ) from exc
        shards.append(
            {
                "directory": relative,
                "rows": shard_manifest["rows"],
                "op_map": [
                    op_index[name] for name in shard_manifest["op_vocab"]
                ],
                "segment_map": [
                    segment_index[name]
                    for name in shard_manifest["segment_vocab"]
                ],
            }
        )
        rows += int(shard_manifest["rows"])
    manifest = {
        "format": shard_manifests[0]["format"] if shard_manifests else "npz",
        "sharded": True,
        "rows": rows,
        "shards": shards,
        "op_vocab": list(op_vocab),
        "segment_vocab": list(segment_vocab),
        "directory": str(directory),
    }
    with open(directory / "manifest.json", "w") as fh:
        json.dump(manifest, fh)
    return manifest


def _load_sharded_columns(directory: Path, manifest: dict) -> QueryColumns:
    """Reassemble a sharded spill: per-shard load + code remap + concat."""
    parts: List[QueryColumns] = []
    op_codes: List[np.ndarray] = []
    segment_codes: List[np.ndarray] = []
    for entry in manifest["shards"]:
        shard = load_spilled_columns(directory / entry["directory"])
        if shard.size != int(entry["rows"]):
            raise ConfigurationError(
                f"shard {entry['directory']!r} has {shard.size} rows, "
                f"manifest says {entry['rows']}"
            )
        parts.append(shard)
        op_map = np.asarray(entry["op_map"], dtype=np.int32)
        segment_map = np.asarray(entry["segment_map"], dtype=np.int32)
        op_codes.append(
            op_map[shard.op_codes] if shard.size else shard.op_codes
        )
        segment_codes.append(
            segment_map[shard.segment_codes]
            if shard.size
            else shard.segment_codes
        )

    def _cat(arrays: List[np.ndarray], dtype) -> np.ndarray:
        if not arrays:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(arrays).astype(dtype, copy=False)

    return QueryColumns(
        arrivals=_cat([p.arrivals for p in parts], np.float64),
        starts=_cat([p.starts for p in parts], np.float64),
        completions=_cat([p.completions for p in parts], np.float64),
        op_codes=_cat(op_codes, np.int32),
        op_vocab=tuple(manifest["op_vocab"]),
        segment_codes=_cat(segment_codes, np.int32),
        segment_vocab=tuple(manifest["segment_vocab"]),
    )


def load_spilled_columns(directory) -> QueryColumns:
    """Reassemble a :class:`QueryColumns` from a spill directory.

    Accepts both flat manifests (one :class:`ColumnSpiller`) and merged
    sharded manifests (:func:`write_sharded_manifest`), reassembling the
    latter's subdirectories in stream order with shard-local codes
    remapped into the merged vocabularies.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise ConfigurationError(f"no spill manifest in {directory}")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    if manifest.get("sharded"):
        return _load_sharded_columns(directory, manifest)
    columns: Dict[str, List[np.ndarray]] = {
        "arrivals": [],
        "starts": [],
        "completions": [],
        "op_codes": [],
        "segment_codes": [],
    }
    for name in manifest["shards"]:
        path = directory / name
        if manifest["format"] == "npz":
            with np.load(path) as shard:
                for key in columns:
                    columns[key].append(shard[key])
        else:
            try:
                import pyarrow.parquet as pq
            except ImportError as exc:
                raise ConfigurationError(
                    "reading a parquet spill requires pyarrow"
                ) from exc
            table = pq.read_table(path)
            for key in columns:
                columns[key].append(table.column(key).to_numpy())

    def _cat(key: str, dtype) -> np.ndarray:
        parts = columns[key]
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    return QueryColumns(
        arrivals=_cat("arrivals", np.float64),
        starts=_cat("starts", np.float64),
        completions=_cat("completions", np.float64),
        op_codes=_cat("op_codes", np.int32),
        op_vocab=tuple(manifest["op_vocab"]),
        segment_codes=_cat("segment_codes", np.int32),
        segment_vocab=tuple(manifest["segment_vocab"]),
    )


class StreamingRecorder:
    """Drop-in recorder that folds blocks instead of retaining them.

    Presents the same interface the driver hot loops use on
    :class:`~repro.core.results.ColumnarRecorder` — ``intern_op`` /
    ``intern_segment`` / ``reserve`` / ``append`` / ``append_block`` —
    but holds only a fixed-size scratch buffer: scalar appends fill the
    scratch and flush when full; block appends flush the scratch (to
    preserve record order for the spiller) and fold directly. Each
    flushed :class:`StreamBlock` goes to every accumulator's ``fold``
    and, when configured, the :class:`ColumnSpiller`.

    Call :meth:`flush` once after the run so the scratch tail reaches
    the accumulators.
    """

    def __init__(
        self,
        accumulators: Sequence[Any] = (),
        spiller: Optional[ColumnSpiller] = None,
        scratch_capacity: int = 65_536,
    ) -> None:
        """Create the fixed-size scratch and wire the consumers."""
        self.accumulators = list(accumulators)
        self.spiller = spiller
        capacity = max(1, int(scratch_capacity))
        self._arrivals = np.empty(capacity, dtype=np.float64)
        self._starts = np.empty(capacity, dtype=np.float64)
        self._completions = np.empty(capacity, dtype=np.float64)
        self._op_codes = np.empty(capacity, dtype=np.int32)
        self._segment_codes = np.empty(capacity, dtype=np.int32)
        self._n = 0
        self._count = 0
        self._max_completion = 0.0
        self._first_arrival: Optional[float] = None
        self._op_index: Dict[str, int] = {}
        self._op_vocab: List[str] = []
        self._op_counts: List[int] = []
        self._segment_index: Dict[str, int] = {}
        self._segment_vocab: List[str] = []
        self._segment_counts: List[int] = []

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Total queries recorded (scratch included)."""
        return self._count

    @property
    def max_completion(self) -> float:
        """Largest completion timestamp seen (0.0 before any query)."""
        return self._max_completion

    @property
    def first_arrival(self) -> Optional[float]:
        """Arrival time of the first recorded query (``None`` if none).

        Blocks stream past in arrival order, so this is simply the first
        appended arrival — sharded runs use it to check that the
        previous shard's queue drained before this shard's stream began.
        """
        if self._first_arrival is None and self._n:
            return float(self._arrivals[0])
        return self._first_arrival

    @property
    def op_vocab(self) -> Tuple[str, ...]:
        """Operation names in intern order."""
        return tuple(self._op_vocab)

    @property
    def segment_vocab(self) -> Tuple[str, ...]:
        """Segment labels in intern order."""
        return tuple(self._segment_vocab)

    def _pending_counts(self, codes: np.ndarray, size: int) -> np.ndarray:
        """Histogram of un-flushed scratch codes (read-only)."""
        if self._n == 0:
            return np.zeros(size, dtype=np.int64)
        return np.bincount(codes[: self._n], minlength=size)

    def op_counts(self) -> Dict[str, int]:
        """Per-operation completed-query counts (flushed or not).

        A pure read: scratch rows are counted in place, never flushed,
        so calling this mid-run cannot move block boundaries.
        """
        pending = self._pending_counts(self._op_codes, len(self._op_counts))
        return {
            op: count + int(pending[code])
            for code, (op, count) in enumerate(
                zip(self._op_vocab, self._op_counts)
            )
        }

    def segment_counts(self) -> Dict[str, int]:
        """Per-segment completed-query counts (flushed or not).

        A pure read, like :meth:`op_counts`: no flush side effect.
        """
        pending = self._pending_counts(
            self._segment_codes, len(self._segment_counts)
        )
        return {
            label: count + int(pending[code])
            for code, (label, count) in enumerate(
                zip(self._segment_vocab, self._segment_counts)
            )
        }

    def intern_op(self, op: str) -> int:
        """Code for an operation name (added on first sight)."""
        code = self._op_index.get(op)
        if code is None:
            code = len(self._op_vocab)
            self._op_index[op] = code
            self._op_vocab.append(op)
            self._op_counts.append(0)
        return code

    def intern_segment(self, label: str) -> int:
        """Code for a segment label (added on first sight)."""
        code = self._segment_index.get(label)
        if code is None:
            code = len(self._segment_vocab)
            self._segment_index[label] = code
            self._segment_vocab.append(label)
            self._segment_counts.append(0)
        return code

    def reserve(self, extra: int) -> None:
        """No-op: streaming never allocates per-run storage."""

    def append(
        self,
        arrival: float,
        start: float,
        completion: float,
        op_code: int,
        segment_code: int,
    ) -> None:
        """Record one completed query into the scratch buffer."""
        i = self._n
        self._arrivals[i] = arrival
        self._starts[i] = start
        self._completions[i] = completion
        self._op_codes[i] = op_code
        self._segment_codes[i] = segment_code
        self._n = i + 1
        if self._n >= self._arrivals.size:
            self.flush()

    def append_block(
        self,
        arrivals: np.ndarray,
        starts: np.ndarray,
        completions: np.ndarray,
        op_codes: np.ndarray,
        segment_code: int,
    ) -> None:
        """Record a whole driver block: flush scratch, fold directly."""
        m = int(arrivals.size)
        if m == 0:
            return
        self.flush()
        segment_codes = np.full(m, segment_code, dtype=np.int32)
        self._fold(
            StreamBlock(
                np.asarray(arrivals, dtype=np.float64),
                np.asarray(starts, dtype=np.float64),
                np.asarray(completions, dtype=np.float64),
                np.asarray(op_codes, dtype=np.int32),
                segment_codes,
            )
        )

    def flush(self) -> None:
        """Fold whatever sits in the scratch buffer (no-op when empty)."""
        n = self._n
        if n == 0:
            return
        block = StreamBlock(
            self._arrivals[:n].copy(),
            self._starts[:n].copy(),
            self._completions[:n].copy(),
            self._op_codes[:n].copy(),
            self._segment_codes[:n].copy(),
        )
        self._n = 0
        self._fold(block)

    def _fold(self, block: StreamBlock) -> None:
        """Feed one block to the counters, accumulators, and spiller."""
        self._count += len(block)
        if self._first_arrival is None:
            self._first_arrival = float(block.arrivals[0])
        last = float(block.completions_sorted[-1])
        if last > self._max_completion:
            self._max_completion = last
        op_hist = np.bincount(block.op_codes, minlength=len(self._op_counts))
        for code, hits in enumerate(op_hist.tolist()):
            if hits:
                self._op_counts[code] += hits
        seg_hist = np.bincount(
            block.segment_codes, minlength=len(self._segment_counts)
        )
        for code, hits in enumerate(seg_hist.tolist()):
            if hits:
                self._segment_counts[code] += hits
        if self.spiller is not None:
            self.spiller.write(block)
        for accumulator in self.accumulators:
            accumulator.fold(block)


@dataclass
class StreamingRunSummary:
    """Everything a streaming run keeps: metrics, counts, provenance.

    The streaming counterpart of :class:`~repro.core.results.RunResult`:
    raw per-query columns are gone (unless spilled), but every finalized
    accumulator payload, the per-op/per-segment counts, and the run's
    provenance survive in a JSON-ready form.

    Attributes:
        sut_name / scenario_name: Run identity.
        segments: ``(label, start, end)`` boundaries in query time.
        training_events: All training work performed.
        scenario_description / sut_description: ``describe()`` payloads.
        num_queries: Total completed queries.
        max_completion: Largest completion timestamp.
        op_counts / segment_counts: Completed queries per label.
        metrics: Finalized accumulator payloads keyed by ``name``.
        spill: The spill manifest, when columns were spilled.
        sharding: Shard plan and per-shard provenance when the run was
            produced by ``run_sharded_streaming`` (``None`` otherwise;
            absent from the wire format for unsharded runs so existing
            payloads are unchanged).
    """

    sut_name: str
    scenario_name: str
    segments: List[Tuple[str, float, float]]
    training_events: List[TrainingEvent] = field(default_factory=list)
    scenario_description: dict = field(default_factory=dict)
    sut_description: dict = field(default_factory=dict)
    num_queries: int = 0
    max_completion: float = 0.0
    op_counts: Dict[str, int] = field(default_factory=dict)
    segment_counts: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, dict] = field(default_factory=dict)
    spill: Optional[dict] = None
    sharding: Optional[dict] = None

    @property
    def duration(self) -> float:
        """Query-time horizon of the run (end of the last segment)."""
        return self.segments[-1][2] if self.segments else 0.0

    @property
    def horizon(self) -> float:
        """Analysis horizon: max of segment end and last completion."""
        return max(self.duration, self.max_completion)

    def mean_throughput(self) -> float:
        """Completed queries per second over the run horizon."""
        horizon = self.horizon
        if horizon <= 0:
            return 0.0
        return self.num_queries / horizon

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (the summary's wire format).

        The ``sharding`` key appears only for sharded runs, keeping
        unsharded payloads byte-compatible with earlier versions.
        """
        payload = {
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "segments": [list(s) for s in self.segments],
            "scenario_description": self.scenario_description,
            "sut_description": self.sut_description,
            "training_events": [
                {
                    "start": e.start,
                    "duration": e.duration,
                    "nominal_seconds": e.nominal_seconds,
                    "hardware_name": e.hardware_name,
                    "cost": e.cost,
                    "online": e.online,
                    "label": e.label,
                }
                for e in self.training_events
            ],
            "num_queries": self.num_queries,
            "max_completion": self.max_completion,
            "op_counts": dict(self.op_counts),
            "segment_counts": dict(self.segment_counts),
            "metrics": self.metrics,
            "spill": self.spill,
        }
        if self.sharding is not None:
            payload["sharding"] = self.sharding
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamingRunSummary":
        """Reconstruct a summary from :meth:`to_dict` output."""
        return cls(
            sut_name=data["sut_name"],
            scenario_name=data["scenario_name"],
            segments=[tuple(s) for s in data["segments"]],
            training_events=[
                TrainingEvent(
                    start=e["start"],
                    duration=e["duration"],
                    nominal_seconds=e["nominal_seconds"],
                    hardware_name=e["hardware_name"],
                    cost=e["cost"],
                    online=e["online"],
                    label=e.get("label", ""),
                )
                for e in data.get("training_events", [])
            ],
            scenario_description=data.get("scenario_description", {}),
            sut_description=data.get("sut_description", {}),
            num_queries=data.get("num_queries", 0),
            max_completion=data.get("max_completion", 0.0),
            op_counts=dict(data.get("op_counts", {})),
            segment_counts=dict(data.get("segment_counts", {})),
            metrics=dict(data.get("metrics", {})),
            spill=data.get("spill"),
            sharding=data.get("sharding"),
        )
