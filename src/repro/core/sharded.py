"""Sharded streaming: shared-nothing workers, one merged summary.

The scale-out half of the streaming tentpole (DESIGN.md §10): a
scenario is partitioned into :class:`~repro.core.streaming.ShardSpec`
slices — contiguous segment ranges, or arrival-index ranges for
single-segment runs — and each shard executes
``VirtualClockDriver.run_streaming_shard`` in its own process with its
own :class:`~repro.core.streaming.StreamingRecorder`. The parent merges
the shards' accumulator ``state_dict()`` payloads (every ``Online*``
accumulator is additive — see the ``merge`` methods in
:mod:`repro.metrics`) and finalizes once, producing a
:class:`~repro.core.streaming.StreamingRunSummary`.

Equivalence contract (pinned by ``benchmarks/bench_sharded.py`` and
``tests/core/test_sharded.py``): when every shard boundary drains — the
previous shard's servers go idle before the next shard's first arrival
— and the SUT's service times don't depend on cross-shard execution
state, the merged summary's integer-count metrics are *bit-identical*
to the unsharded ``run_streaming``; float ``fsum``-style summaries are
bit-identical under segment sharding and agree to float tolerance under
arrival slicing (block boundaries differ, so the ``np.sum`` partials
differ). The executor records the drain check's verdict in the
summary's ``sharding["boundaries_drained"]`` field rather than guessing.

Process hardening is the shared :class:`~repro.core.workers.WorkerPool`
layer — the same transport, kill deadlines, and exponential-backoff
retry budget :class:`~repro.core.runner.MatrixRunner` runs on — so a
crashed or wedged shard re-runs without poisoning the merge.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario
from repro.core.streaming import (
    ColumnSpiller,
    ShardSpec,
    StreamingRunSummary,
    write_sharded_manifest,
)
from repro.core.sut import SystemUnderTest
from repro.core.workers import WorkerPool, WorkerTask
from repro.errors import ConfigurationError, RunnerError

__all__ = [
    "ShardedStreamingExecutor",
    "ensure_merge_protocol",
    "merge_shard_payloads",
    "plan_shards",
    "run_sharded_streaming",
    "shard_spill_directory",
]


def shard_spill_directory(spill_dir, index: int) -> Path:
    """The subdirectory shard ``index`` spills its columns into."""
    return Path(spill_dir) / f"shard-{index:03d}"


def plan_shards(scenario: Scenario, n_shards: int) -> List[ShardSpec]:
    """Partition ``scenario`` into at most ``n_shards`` stream slices.

    Multi-segment scenarios split into contiguous segment ranges,
    greedily balanced by each segment's exact projected arrival count
    (every shard gets at least one segment, so the shard count caps at
    the segment count). A single-segment scenario splits into equal
    arrival-index ranges instead — the one case where a segment's
    interior is divisible without touching the workload RNG stream.

    The plan is deterministic: same scenario, same shards.
    """
    if n_shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {n_shards}")
    n_segments = len(scenario.segments)
    if n_segments == 0 or n_shards == 1:
        return [ShardSpec(0, 1, 0, n_segments)]
    if n_segments == 1:
        segment = scenario.segments[0]
        total = int(
            segment.spec.arrivals.projected_count(0.0, segment.duration)
        )
        shards = max(1, min(n_shards, total))
        if shards == 1:
            return [ShardSpec(0, 1, 0, 1)]
        bounds = [round(i * total / shards) for i in range(shards + 1)]
        return [
            ShardSpec(i, shards, 0, 1, bounds[i], bounds[i + 1])
            for i in range(shards)
        ]
    counts = [
        int(segment.spec.arrivals.projected_count(0.0, segment.duration))
        for segment in scenario.segments
    ]
    total = sum(counts)
    shards = min(n_shards, n_segments)
    bounds = [0]
    acc = 0
    for i, count in enumerate(counts):
        acc += count
        cut = len(bounds)  # 1-based index of the boundary about to close
        if cut >= shards:
            break
        if (n_segments - (i + 1)) <= (shards - cut):
            # Must cut: exactly one segment left per remaining shard.
            bounds.append(i + 1)
        elif acc * shards >= total * cut:
            bounds.append(i + 1)
    bounds.append(n_segments)
    return [
        ShardSpec(i, len(bounds) - 1, bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
    ]


def _build_accumulators(
    scenario: Scenario,
    accumulator_factory: Optional[Callable[[Scenario], Sequence[Any]]],
    sla: Optional[float],
) -> List[Any]:
    """The shard accumulator set, built from the *full* scenario.

    Every shard (and the parent's merge template) calls this with the
    same arguments, so grids, change points, and segment boundaries
    anchor identically and shard states merge cleanly.
    """
    if accumulator_factory is not None:
        return list(accumulator_factory(scenario))
    from repro.metrics import streaming_accumulators

    return streaming_accumulators(scenario, sla=sla, plan=scenario.fault_plan)


def _run_shard(
    sut_factory: Callable[[], SystemUnderTest],
    scenario: Scenario,
    config: DriverConfig,
    shard: ShardSpec,
    accumulator_factory: Optional[Callable[[Scenario], Sequence[Any]]],
    sla: Optional[float],
    spill_dir,
    spill_format: str,
) -> dict:
    """Execute one shard end to end (worker-side body)."""
    driver = VirtualClockDriver(config)
    accumulators = _build_accumulators(scenario, accumulator_factory, sla)
    spiller = (
        ColumnSpiller(
            shard_spill_directory(spill_dir, shard.index), fmt=spill_format
        )
        if spill_dir is not None
        else None
    )
    sut = sut_factory()
    return driver.run_streaming_shard(
        sut, scenario, shard, accumulators, spiller
    )


def ensure_merge_protocol(accumulators: Sequence[Any]) -> None:
    """Reject accumulators that cannot merge across processes.

    Every accumulator whose state crosses a process boundary must
    implement ``state_dict()`` / ``merge()`` (instance) and
    ``from_state()`` (class); raising up front beats a cryptic failure
    after the shards have already burned their CPU time.
    """
    for accumulator in accumulators:
        for method in ("state_dict", "merge"):
            if not hasattr(accumulator, method):
                raise ConfigurationError(
                    f"accumulator {accumulator.name!r} lacks {method}(); "
                    "sharded streaming needs the merge protocol"
                )
        if not hasattr(type(accumulator), "from_state"):
            raise ConfigurationError(
                f"accumulator {accumulator.name!r} lacks from_state(); "
                "sharded streaming needs the merge protocol"
            )


class ShardedStreamingExecutor:
    """Runs a scenario's shards in worker processes and merges the states.

    Args:
        config: Driver knobs shared by every shard (default
            :class:`~repro.core.driver.DriverConfig`).
        n_shards: Requested shard count; :func:`plan_shards` may cap it
            (segment count, arrival count).
        max_attempts: Per-shard attempt budget — a crashed, failed, or
            timed-out shard re-runs until the budget is spent, then the
            whole run raises :class:`~repro.errors.RunnerError`.
        shard_timeout: Optional per-attempt wall-clock kill deadline in
            seconds.
        retry_backoff: Base delay before a retry; doubles per attempt.
    """

    def __init__(
        self,
        config: Optional[DriverConfig] = None,
        n_shards: int = 2,
        max_attempts: int = 2,
        shard_timeout: Optional[float] = None,
        retry_backoff: float = 0.25,
    ) -> None:
        """Validate the knobs and bind the shared driver config."""
        if n_shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {n_shards}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ConfigurationError("shard_timeout must be > 0")
        if retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
        self.config = config or DriverConfig()
        self.n_shards = int(n_shards)
        self.max_attempts = int(max_attempts)
        self.shard_timeout = shard_timeout
        self.retry_backoff = float(retry_backoff)

    def run(
        self,
        sut_factory: Callable[[], SystemUnderTest],
        scenario: Scenario,
        accumulator_factory: Optional[
            Callable[[Scenario], Sequence[Any]]
        ] = None,
        sla: Optional[float] = None,
        spill_dir=None,
        spill_format: str = "npz",
    ) -> StreamingRunSummary:
        """Execute ``scenario`` across shards; return the merged summary.

        Args:
            sut_factory: Zero-argument picklable callable building a
                fresh SUT — each shard (and each retry) gets its own
                instance, so SUT state never leaks across processes.
            accumulator_factory: Optional picklable
                ``scenario -> accumulators`` override; the produced
                accumulators must implement the merge protocol
                (``state_dict`` / ``from_state`` / ``merge``). Default:
                :func:`repro.metrics.streaming_accumulators`.
            sla: SLA threshold handed to the default accumulator set.
            spill_dir: When set, each shard spills to a subdirectory and
                the merged manifest stitches them back together (see
                :func:`~repro.core.streaming.write_sharded_manifest`).
            spill_format: ``"npz"`` (default) or ``"parquet"``.
        """
        template = _build_accumulators(scenario, accumulator_factory, sla)
        ensure_merge_protocol(template)
        shards = plan_shards(scenario, self.n_shards)
        if spill_dir is not None:
            Path(spill_dir).mkdir(parents=True, exist_ok=True)
        if len(shards) == 1 and self.shard_timeout is None:
            payloads = [
                _run_shard(
                    sut_factory,
                    scenario,
                    self.config,
                    shards[0],
                    accumulator_factory,
                    sla,
                    spill_dir,
                    spill_format,
                )
            ]
            attempts = [1]
        else:
            payloads, attempts = self._run_pool(
                sut_factory,
                scenario,
                shards,
                accumulator_factory,
                sla,
                spill_dir,
                spill_format,
            )
        return merge_shard_payloads(
            scenario, shards, payloads, attempts, template, spill_dir
        )

    # -- process pool ----------------------------------------------------------------

    def _run_pool(
        self,
        sut_factory,
        scenario,
        shards: List[ShardSpec],
        accumulator_factory,
        sla,
        spill_dir,
        spill_format,
    ):
        """Run every shard on the shared :class:`WorkerPool`, fail-fast.

        One worker slot per shard (shards are the unit of scale-out);
        retry-time spill cleanup rides the ``on_attempt`` hook, and an
        exhausted budget raises :class:`~repro.errors.RunnerError`
        through the ``on_outcome`` hook — the pool kills the surviving
        shard processes on the way out.
        """
        tasks = [
            WorkerTask(
                fn=_run_shard,
                args=(
                    sut_factory,
                    scenario,
                    self.config,
                    shard,
                    accumulator_factory,
                    sla,
                    spill_dir,
                    spill_format,
                ),
                label=f"shard-{shard.index}",
            )
            for shard in shards
        ]
        pool = WorkerPool(
            workers=len(tasks),
            max_attempts=self.max_attempts,
            timeout=self.shard_timeout,
            retry_backoff=self.retry_backoff,
        )

        def on_attempt(index: int, attempt: int) -> None:
            if attempt > 1 and spill_dir is not None:
                # A failed attempt may have left partial shard files;
                # the retry rebuilds the directory.
                shutil.rmtree(
                    shard_spill_directory(spill_dir, shards[index].index),
                    ignore_errors=True,
                )

        def on_outcome(outcome) -> None:
            if outcome.error is not None:
                raise RunnerError(
                    f"shard {outcome.index} failed after "
                    f"{outcome.attempts} attempts: {outcome.error}"
                )

        outcomes = pool.run(tasks, on_attempt=on_attempt, on_outcome=on_outcome)
        payloads = [outcome.payload for outcome in outcomes]
        attempts = [outcome.attempts for outcome in outcomes]
        missing = [i for i, payload in enumerate(payloads) if payload is None]
        if missing:  # pragma: no cover — on_outcome raises first
            raise RunnerError(f"shards {missing} produced no payload")
        return payloads, attempts


def merge_shard_payloads(
    scenario: Scenario,
    shards: List[ShardSpec],
    payloads: List[dict],
    attempts: List[int],
    template: List[Any],
    spill_dir=None,
) -> StreamingRunSummary:
    """Fold shard payloads into one finalized summary.

    Shards merge in stream order — accumulator merges, count dict
    insertion order (which fixes the merged vocabularies), training
    events, and spill manifests all rely on it. Shared by
    :class:`ShardedStreamingExecutor` and the multi-tenant
    :class:`~repro.core.tenancy.BenchmarkServer` (each tenant session is
    a shard set merged exactly this way).
    """
    names = [accumulator.name for accumulator in template]
    merged: Optional[List[Any]] = None
    for payload in payloads:
        if [name for name, _state in payload["states"]] != names:
            raise RunnerError(
                "shard accumulator sets diverged: expected "
                f"{names}, shard {payload['index']} sent "
                f"{[name for name, _state in payload['states']]}"
            )
        rebuilt = [
            type(accumulator).from_state(state)
            for accumulator, (_name, state) in zip(
                template, payload["states"]
            )
        ]
        if merged is None:
            merged = rebuilt
        else:
            for mine, theirs in zip(merged, rebuilt):
                mine.merge(theirs)
    assert merged is not None

    op_counts: Dict[str, int] = {}
    segment_counts: Dict[str, int] = {}
    training_events = []
    num_queries = 0
    max_completion = 0.0
    for payload in payloads:
        for op, count in payload["op_counts"].items():
            op_counts[op] = op_counts.get(op, 0) + count
        for label, count in payload["segment_counts"].items():
            segment_counts[label] = segment_counts.get(label, 0) + count
        training_events.extend(payload["training_events"])
        num_queries += payload["num_queries"]
        if payload["max_completion"] > max_completion:
            max_completion = payload["max_completion"]

    drained = True
    for previous, following in zip(payloads, payloads[1:]):
        first = following["first_arrival"]
        if first is not None and previous["final_busy"] > first:
            drained = False
    sharding = {
        "shards": len(shards),
        "plan": [shard.to_dict() for shard in shards],
        "attempts": list(attempts),
        "shard_queries": [payload["num_queries"] for payload in payloads],
        "boundaries_drained": drained,
    }

    spill = None
    if spill_dir is not None:
        spill = write_sharded_manifest(
            spill_dir,
            [payload["spill"] for payload in payloads],
            list(op_counts.keys()),
            list(segment_counts.keys()),
        )

    boundaries = scenario.segment_boundaries()
    duration = boundaries[-1][2] if boundaries else 0.0
    horizon = max(duration, max_completion)
    metrics = {
        accumulator.name: accumulator.finalize(horizon)
        for accumulator in merged
    }
    return StreamingRunSummary(
        sut_name=payloads[0]["sut_name"],
        scenario_name=scenario.name,
        segments=boundaries,
        training_events=training_events,
        scenario_description=scenario.describe(),
        sut_description=payloads[0]["sut_description"],
        num_queries=num_queries,
        max_completion=max_completion,
        op_counts=op_counts,
        segment_counts=segment_counts,
        metrics=metrics,
        spill=spill,
        sharding=sharding,
    )


def run_sharded_streaming(
    sut_factory: Callable[[], SystemUnderTest],
    scenario: Scenario,
    shards: int = 2,
    config: Optional[DriverConfig] = None,
    accumulator_factory: Optional[Callable[[Scenario], Sequence[Any]]] = None,
    sla: Optional[float] = None,
    spill_dir=None,
    spill_format: str = "npz",
    max_attempts: int = 2,
    shard_timeout: Optional[float] = None,
    retry_backoff: float = 0.25,
) -> StreamingRunSummary:
    """One-call convenience around :class:`ShardedStreamingExecutor`."""
    executor = ShardedStreamingExecutor(
        config=config,
        n_shards=shards,
        max_attempts=max_attempts,
        shard_timeout=shard_timeout,
        retry_backoff=retry_backoff,
    )
    return executor.run(
        sut_factory,
        scenario,
        accumulator_factory=accumulator_factory,
        sla=sla,
        spill_dir=spill_dir,
        spill_format=spill_format,
    )
