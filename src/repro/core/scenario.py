"""Benchmark scenarios.

A :class:`Scenario` is an ordered sequence of :class:`Segment` s, each
pairing a workload spec with a duration, plus optional training phases
before segments. Transitions between segments may be *abrupt* (the next
segment's spec simply takes over) or *gradual* (encode the ramp inside a
single segment's spec using :class:`~repro.workloads.drift.GradualDrift`)
— both §V-B transition styles are expressible.

A segment may also inject new data at its start (``data_injection``),
modeling bulk loads / dataset-distribution changes that are not part of
the query stream.

A scenario may additionally carry a
:class:`~repro.faults.FaultPlan` (``fault_plan``): a deterministic
schedule of environmental perturbations — latency windows, stalls,
crash/restart — that the drivers inject during serving. Fault times are
in query-time coordinates (the same clock as segment boundaries).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.phases import TrainingPhase
from repro.errors import ScenarioError
from repro.faults import FaultPlan
from repro.workloads.generators import WorkloadSpec


@dataclass
class Segment:
    """One stretch of a scenario.

    Attributes:
        spec: The workload active during the segment.
        duration: Virtual seconds the segment lasts.
        training_before: Optional blocking training phase run before the
            segment's queries start (the paper's "two separate execution
            phases with possible retraining of the models in-between").
        data_injection: Optional keys bulk-inserted at segment start.
        label: Display label (defaults to the spec name).
    """

    spec: WorkloadSpec
    duration: float
    training_before: Optional[TrainingPhase] = None
    data_injection: Optional[np.ndarray] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ScenarioError(f"segment duration must be > 0, got {self.duration}")
        if not self.label:
            self.label = self.spec.name


@dataclass
class Scenario:
    """A full benchmark scenario.

    Attributes:
        name: Scenario identifier.
        segments: Ordered segments.
        initial_training: Optional blocking offline phase before any
            queries (the classic train-then-execute shape).
        initial_keys: Keys loaded into the SUT before the run starts
            (``None`` = start empty).
        tick_interval: Virtual seconds between SUT ``on_tick`` hooks.
        seed: Seed for the scenario's query streams.
        fault_plan: Optional deterministic fault schedule injected by
            the driver during serving (``None`` = fault-free run).
        drift_factor: Optional drift intensity in [0, 1] the scenario was
            built at (see :func:`repro.scenarios.drift_axis`). Purely
            declarative — the blended specs carry the actual behavior —
            but it enters :meth:`describe`/:meth:`fingerprint` so sweeps
            over the factor produce distinct cache keys.
    """

    name: str
    segments: List[Segment]
    initial_training: Optional[TrainingPhase] = None
    initial_keys: Optional[np.ndarray] = None
    tick_interval: float = 1.0
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    drift_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise ScenarioError("scenario needs at least one segment")
        if self.tick_interval <= 0:
            raise ScenarioError("tick_interval must be > 0")
        if self.fault_plan is not None and not self.fault_plan:
            self.fault_plan = None  # an empty plan is a fault-free run
        if self.drift_factor is not None:
            self.drift_factor = float(self.drift_factor)
            if not 0.0 <= self.drift_factor <= 1.0:
                raise ScenarioError(
                    f"drift_factor must be in [0, 1], got {self.drift_factor}"
                )

    @property
    def total_duration(self) -> float:
        """Sum of segment durations (training time excluded)."""
        return sum(s.duration for s in self.segments)

    def segment_boundaries(self) -> List[Tuple[str, float, float]]:
        """``(label, start, end)`` per segment in query-time coordinates.

        Query time starts at 0 when the first segment's queries begin;
        training phases do not consume query time (the driver reports
        their virtual-time placement separately).
        """
        out = []
        t = 0.0
        for segment in self.segments:
            out.append((segment.label, t, t + segment.duration))
            t += segment.duration
        return out

    def describe(self) -> dict:
        """JSON-friendly description of the scenario.

        The ``faults`` key is present only when a fault plan is set, so
        fingerprints (and every cache key derived from them) of
        fault-free scenarios are unchanged by the faults subsystem.
        ``drift_factor`` follows the same pattern: it appears only when
        set, so scenarios that never touch the drift axis keep their
        pre-axis fingerprints byte-identical (no cache invalidation).
        """
        out = {
            "name": self.name,
            "tick_interval": self.tick_interval,
            "seed": self.seed,
            "initial_keys": (
                int(self.initial_keys.size) if self.initial_keys is not None else 0
            ),
            "initial_training": (
                {
                    "budget_seconds": self.initial_training.budget_seconds,
                    "hardware": self.initial_training.hardware.name,
                }
                if self.initial_training
                else None
            ),
            "segments": [
                {
                    "label": s.label,
                    "duration": s.duration,
                    "spec": s.spec.describe(),
                    "data_injection": (
                        int(s.data_injection.size) if s.data_injection is not None else 0
                    ),
                }
                for s in self.segments
            ],
        }
        if self.fault_plan is not None:
            out["faults"] = self.fault_plan.describe()
        if self.drift_factor is not None:
            out["drift_factor"] = self.drift_factor
        return out

    def fingerprint(self) -> str:
        """Stable content hash (used to seal hold-out scenarios)."""
        payload = json.dumps(self.describe(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    @classmethod
    def from_trace(
        cls,
        trace,
        name: Optional[str] = None,
        dilation: float = 1.0,
        max_queries: Optional[int] = None,
        max_span: Optional[float] = None,
        initial_keys: Optional[np.ndarray] = None,
        initial_training: Optional[TrainingPhase] = None,
        tick_interval: float = 1.0,
        seed: int = 0,
    ) -> "Scenario":
        """Build a single-segment replay scenario from a recorded trace.

        The trace (a :class:`~repro.workloads.trace.QueryTrace`) is
        rebased to start at time 0, optionally time-dilated and
        truncated, and wrapped in a
        :class:`~repro.workloads.trace.TraceWorkloadSpec` whose
        ``describe()`` embeds the trace's content hash — so the
        scenario's :meth:`fingerprint` (and every runner cache key built
        from it) changes whenever the trace content, dilation, or
        truncation does, and cached matrix cells never go stale.

        Args:
            trace: The recorded query trace to replay.
            name: Scenario name (default ``replay:<trace name>``).
            dilation: Inter-arrival scale factor (> 1 slows replay).
            max_queries: Replay at most this many leading rows.
            max_span: Replay only rows within this many seconds of the
                first arrival (applied after dilation).
            initial_keys: Keys preloaded into the SUT before replay.
            initial_training: Optional offline phase before replay.
            tick_interval: Driver tick spacing in virtual seconds.
            seed: Scenario seed (replay itself consumes no randomness;
                the seed still feeds probe sampling and cache keys).
        """
        from repro.workloads.trace import replay_duration, trace_spec

        prepared = trace.rebased().dilated(dilation)
        if max_queries is not None or max_span is not None:
            prepared = prepared.truncated(
                max_queries=max_queries, max_span=max_span
            )
        spec = trace_spec(prepared)
        segment = Segment(
            spec=spec, duration=replay_duration(prepared), label="replay"
        )
        return cls(
            name=name or f"replay:{prepared.name}",
            segments=[segment],
            initial_training=initial_training,
            initial_keys=initial_keys,
            tick_interval=tick_interval,
            seed=seed,
        )
