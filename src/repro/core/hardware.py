"""Hardware profiles for training-cost accounting.

§V-D: "In learned systems with separate training and execution phases,
we should evaluate the cost of training on different hardware (CPU, GPU,
or TPU)." A :class:`HardwareProfile` has a relative training speed and a
dollar rate; the driver divides a model's nominal (CPU) training time by
the speed and multiplies wall time by the rate to get training cost.

The default rates approximate mid-2020s public-cloud on-demand pricing;
they are ordinary dataclass fields, so studies with different cost
assumptions simply construct their own profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HardwareProfile:
    """A training-hardware option.

    Attributes:
        name: Human-readable name.
        relative_speed: Training-speed multiplier over the CPU baseline
            (2.0 = trains twice as fast as CPU).
        dollars_per_hour: On-demand price.
    """

    name: str
    relative_speed: float
    dollars_per_hour: float

    def __post_init__(self) -> None:
        if self.relative_speed <= 0:
            raise ConfigurationError("relative_speed must be > 0")
        if self.dollars_per_hour < 0:
            raise ConfigurationError("dollars_per_hour must be >= 0")

    def wall_time(self, nominal_cpu_seconds: float) -> float:
        """Wall-clock seconds to do ``nominal_cpu_seconds`` of training."""
        return max(0.0, nominal_cpu_seconds) / self.relative_speed

    def cost(self, wall_seconds: float) -> float:
        """Dollar cost of occupying this hardware for ``wall_seconds``."""
        return max(0.0, wall_seconds) / 3600.0 * self.dollars_per_hour

    def cost_of_nominal(self, nominal_cpu_seconds: float) -> float:
        """Dollar cost of ``nominal_cpu_seconds`` of training work."""
        return self.cost(self.wall_time(nominal_cpu_seconds))


#: Baseline profile: a general-purpose cloud VM.
CPU = HardwareProfile(name="cpu", relative_speed=1.0, dollars_per_hour=0.40)

#: Accelerated profile: one data-center GPU.
GPU = HardwareProfile(name="gpu", relative_speed=12.0, dollars_per_hour=2.50)

#: Heavily accelerated profile: one TPU slice.
TPU = HardwareProfile(name="tpu", relative_speed=30.0, dollars_per_hour=8.00)

#: All built-in profiles, cheapest-rate first.
PROFILES = (CPU, GPU, TPU)
