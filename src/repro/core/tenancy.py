"""Multi-tenant benchmark serving (§V-A, long-running mode).

The paper proposes deploying the benchmark as a cloud service that
evaluates systems on behalf of users. :class:`BenchmarkServer` is the
scheduler for that mode: each *tenant* is one (SUT, scenario, seed)
streaming session, and a single ``serve()`` call multiplexes every
admitted tenant's shards onto one shared
:class:`~repro.core.workers.WorkerPool` — the same hardened process
layer the matrix runner and sharded executor use.

The serving pipeline, in order:

1. **Admission control.** Tenants pass a deterministic token bucket
   keyed on their *virtual* ``arrival_time`` (no wall clock — replaying
   the same tenant list yields the same admit/reject split). Rejected
   tenants never touch the hold-out vault or the pool.
2. **Hold-out vault.** A tenant naming a sealed ``holdout`` checks it
   out of the :class:`~repro.core.holdout.HoldoutRegistry`; the
   single-shot rule surfaces as a ``"violation"`` tenant status rather
   than aborting the other tenants.
3. **Fair-share scheduling.** Every tenant's shard plan is interleaved
   round-robin — shard 0 of every tenant, then shard 1, … — so one
   large tenant cannot starve the rest of the pool.
4. **SLA accounting.** Each completed session's merged
   :class:`~repro.core.streaming.StreamingRunSummary` is distilled into
   a per-tenant SLA report (:func:`sla_accounting`), reusing the
   streaming ``sla``/``latency``/``throughput``/``resilience``
   accumulator payloads from :mod:`repro.metrics`.

Per-tenant results are deterministic at fixed seeds: each shard runs on
the virtual clock in its own process, so the concurrency level changes
wall time but never a summary (pinned by ``tests/core/test_tenancy.py``).
:class:`~repro.core.service.BenchmarkService` runs its batch hold-out
evaluations on these same tenant sessions, so the live service and the
one-shot API are one code path.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.benchmark import BenchmarkConfig
from repro.core.holdout import HoldoutRegistry
from repro.core.scenario import Scenario
from repro.core.sharded import (
    _build_accumulators,
    _run_shard,
    ensure_merge_protocol,
    merge_shard_payloads,
    plan_shards,
    shard_spill_directory,
)
from repro.core.streaming import ShardSpec, StreamingRunSummary
from repro.core.sut import SystemUnderTest
from repro.core.workers import WorkerOutcome, WorkerPool, WorkerTask
from repro.errors import HoldoutViolationError, TenancyError
from repro.observability import NULL_TRACER

__all__ = [
    "AdmissionPolicy",
    "BenchmarkServer",
    "ServiceReport",
    "TenantReport",
    "TenantSpec",
    "TokenBucket",
    "sla_accounting",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Token-bucket admission knobs for a serving window.

    Attributes:
        burst: Bucket capacity — tenants admitted back-to-back before
            the bucket must refill.
        refill_rate: Tokens regained per second of *virtual* arrival
            time. ``0`` makes ``burst`` a hard cap on the window.
    """

    burst: int = 8
    refill_rate: float = 1.0


class TokenBucket:
    """Deterministic token bucket over virtual arrival times.

    Admission decisions depend only on the tenants' declared
    ``arrival_time`` values, never the wall clock, so a serve call is
    replayable: the same tenant list always yields the same
    admit/reject split.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        """Validate the policy and start with a full bucket."""
        if policy.burst < 1:
            raise TenancyError(f"burst must be >= 1, got {policy.burst}")
        if policy.refill_rate < 0:
            raise TenancyError(
                f"refill_rate must be >= 0, got {policy.refill_rate}"
            )
        self.policy = policy
        self._tokens = float(policy.burst)
        self._last = 0.0

    def admit(self, now: float) -> bool:
        """Spend one token at virtual time ``now`` if one is available.

        ``now`` values must be non-decreasing across calls (the server
        sorts tenants by arrival time before admitting).
        """
        if now < self._last:
            raise TenancyError(
                f"arrival times must be non-decreasing; got {now} after "
                f"{self._last}"
            )
        self._tokens = min(
            float(self.policy.burst),
            self._tokens + (now - self._last) * self.policy.refill_rate,
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class TenantSpec:
    """One tenant: a (SUT, scenario, seed) streaming session request.

    Attributes:
        name: Unique tenant name within a serve call (also the tenant's
            spill subdirectory when spilling is on).
        sut_factory: Zero-argument callable building a fresh SUT; each
            shard process builds its own instance.
        scenario: The scenario to stream. Exactly one of ``scenario``
            and ``holdout`` must be set.
        holdout: Name of a sealed hold-out in the server's registry;
            checked out single-shot per SUT name.
        seed: Optional seed override applied to ``scenario`` (forbidden
            for hold-out tenants — sealed contents are immutable).
        sla: Per-tenant SLA threshold; falls back to the serve-call SLA.
        shards: Shard count for this tenant's session (see
            :func:`~repro.core.sharded.plan_shards`).
        arrival_time: Virtual submission time used by admission control
            and nothing else.
    """

    name: str
    sut_factory: Callable[[], SystemUnderTest]
    scenario: Optional[Scenario] = None
    holdout: Optional[str] = None
    seed: Optional[int] = None
    sla: Optional[float] = None
    shards: int = 1
    arrival_time: float = 0.0


@dataclass
class TenantReport:
    """Outcome of one tenant's session.

    Attributes:
        tenant: The tenant's name.
        sut_name: Name of the SUT evaluated (empty for rejected tenants
            — the factory is never invoked for them).
        scenario_name: Name of the scenario streamed ("" if the tenant
            never reached one).
        seed: The effective scenario seed, when a scenario was resolved.
        status: ``"completed"``, ``"failed"`` (a shard exhausted its
            retry budget), ``"rejected"`` (admission control), or
            ``"violation"`` (hold-out single-shot rule).
        error: Failure detail for non-completed tenants.
        attempts: Per-shard attempt counts, in shard order.
        shards: Number of shards the session planned.
        wall_seconds: Summed wall time of the resolving attempts.
        fingerprint: The scenario's content hash (verifiable
            provenance; always published for hold-out tenants).
        summary: The merged streaming summary for completed sessions.
        sla_report: :func:`sla_accounting` distillation for completed
            sessions.
    """

    tenant: str
    sut_name: str = ""
    scenario_name: str = ""
    seed: Optional[int] = None
    status: str = "completed"
    error: Optional[str] = None
    attempts: List[int] = field(default_factory=list)
    shards: int = 0
    wall_seconds: float = 0.0
    fingerprint: Optional[str] = None
    summary: Optional[StreamingRunSummary] = None
    sla_report: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Whether the session completed and produced a summary."""
        return self.status == "completed"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (the report's wire format)."""
        return {
            "tenant": self.tenant,
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "seed": self.seed,
            "status": self.status,
            "error": self.error,
            "attempts": list(self.attempts),
            "shards": self.shards,
            "wall_seconds": self.wall_seconds,
            "fingerprint": self.fingerprint,
            "summary": self.summary.to_dict() if self.summary else None,
            "sla_report": self.sla_report,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantReport":
        """Reconstruct a report from :meth:`to_dict` output."""
        summary = data.get("summary")
        return cls(
            tenant=data["tenant"],
            sut_name=data.get("sut_name", ""),
            scenario_name=data.get("scenario_name", ""),
            seed=data.get("seed"),
            status=data.get("status", "completed"),
            error=data.get("error"),
            attempts=list(data.get("attempts", [])),
            shards=data.get("shards", 0),
            wall_seconds=data.get("wall_seconds", 0.0),
            fingerprint=data.get("fingerprint"),
            summary=(
                StreamingRunSummary.from_dict(summary) if summary else None
            ),
            sla_report=data.get("sla_report"),
        )


@dataclass
class ServiceReport:
    """One serve call's outcome: per-tenant reports plus the ledger.

    The counters must reconcile: ``offered == admitted + rejected`` and
    ``admitted == completed + failed + violations + dropped``, with
    ``dropped`` (admitted tenants that produced no outcome) pinned to
    zero by the smoke benchmark.
    """

    tenants: List[TenantReport] = field(default_factory=list)
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    violations: int = 0
    completed: int = 0
    failed: int = 0
    dropped: int = 0
    workers: int = 0
    wall_seconds: float = 0.0

    def tenant(self, name: str) -> TenantReport:
        """Look up one tenant's report by name."""
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise TenancyError(
            f"no tenant {name!r} in report; tenants: "
            f"{[r.tenant for r in self.tenants]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (the report's wire format)."""
        return {
            "tenants": [report.to_dict() for report in self.tenants],
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "violations": self.violations,
            "completed": self.completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceReport":
        """Reconstruct a report from :meth:`to_dict` output."""
        return cls(
            tenants=[
                TenantReport.from_dict(entry)
                for entry in data.get("tenants", [])
            ],
            offered=data.get("offered", 0),
            admitted=data.get("admitted", 0),
            rejected=data.get("rejected", 0),
            violations=data.get("violations", 0),
            completed=data.get("completed", 0),
            failed=data.get("failed", 0),
            dropped=data.get("dropped", 0),
            workers=data.get("workers", 0),
            wall_seconds=data.get("wall_seconds", 0.0),
        )


def sla_accounting(
    summary: StreamingRunSummary, sla: Optional[float]
) -> Dict[str, Any]:
    """Distill a session summary into a per-tenant SLA report.

    Reuses the streaming accumulator payloads already in
    ``summary.metrics`` — ``throughput``, ``latency``, ``sla`` bands,
    and the :mod:`repro.metrics.resilience` rollup when the scenario
    carried a fault plan — so serving adds zero extra passes over the
    stream.
    """
    report: Dict[str, Any] = {
        "sla": sla,
        "queries": summary.num_queries,
        "mean_throughput": summary.mean_throughput(),
    }
    throughput = summary.metrics.get("throughput")
    if throughput is not None:
        report["mean_throughput"] = throughput.get(
            "mean_throughput", report["mean_throughput"]
        )
        report["throughput_cv"] = throughput.get("cv", 0.0)
    latency = summary.metrics.get("latency")
    if latency is not None:
        report["latency_mean"] = latency.get("mean", 0.0)
        report["latency_max"] = latency.get("max", 0.0)
    bands = summary.metrics.get("sla")
    if bands is not None:
        within = sum(int(row[1]) for row in bands.get("bands", []))
        violated = sum(int(row[2]) for row in bands.get("bands", []))
        total = within + violated
        report["within_sla"] = within
        report["violated_sla"] = violated
        report["violation_fraction"] = violated / total if total else 0.0
        report["meets_sla"] = violated == 0
    resilience = summary.metrics.get("resilience")
    if resilience is not None:
        impacts = resilience.get("impacts", [])
        recoveries = [
            impact["recovery_seconds"]
            for impact in impacts
            if impact.get("recovery_seconds") is not None
        ]
        report["faults"] = len(impacts)
        report["recovered_faults"] = len(recoveries)
        report["worst_recovery_seconds"] = (
            max(recoveries) if recoveries else None
        )
        report["degraded_sla_mass"] = resilience.get("degraded_sla_mass")
    return report


@dataclass
class _Session:
    """Parent-side state for one admitted tenant session."""

    index: int
    spec: TenantSpec
    sut_name: str
    scenario: Scenario
    plan: List[ShardSpec]
    template: List[Any]
    sla: Optional[float]
    fingerprint: str
    spill_dir: Optional[Path] = None
    accumulator_factory: Optional[Callable[..., Any]] = None
    outcomes: Dict[int, WorkerOutcome] = field(default_factory=dict)


class BenchmarkServer:
    """Long-running multi-tenant scheduler over the shared worker pool.

    Args:
        config: Benchmark knobs shared by every tenant session.
        workers: Concurrent worker-process slots for the shared pool;
            ``None`` sizes to ``min(cpu_count, total shards)``. ``1``
            (with no ``tenant_timeout``) runs sessions inline, which
            keeps non-picklable SUT factories working — the mode
            :class:`~repro.core.service.BenchmarkService` uses.
        admission: Token-bucket admission policy; ``None`` disables
            admission control (every tenant is admitted).
        registry: The hold-out vault tenants may check scenarios out
            of; a fresh empty registry by default.
        max_attempts: Per-shard attempt budget (crashes, raises, and
            timeouts all consume it).
        tenant_timeout: Per-attempt wall-clock kill deadline in seconds.
        retry_backoff: Base of the exponential retry backoff.
        tracer: Optional :class:`~repro.observability.Tracer`; the
            server emits ``service.*`` counters and per-phase spans.
    """

    def __init__(
        self,
        config: Optional[BenchmarkConfig] = None,
        workers: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        registry: Optional[HoldoutRegistry] = None,
        max_attempts: int = 2,
        tenant_timeout: Optional[float] = None,
        retry_backoff: float = 0.25,
        tracer=None,
    ) -> None:
        """Validate the knobs and wire the vault + tracer."""
        if workers is not None and workers < 1:
            raise TenancyError(f"workers must be >= 1, got {workers}")
        self.config = config or BenchmarkConfig()
        self.workers = workers
        self.admission = admission
        self.registry = registry or HoldoutRegistry()
        self.max_attempts = int(max_attempts)
        self.tenant_timeout = tenant_timeout
        self.retry_backoff = float(retry_backoff)
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def publish_holdout(self, scenario: Scenario) -> str:
        """Operator API: seal a scenario into the server's vault."""
        return self.registry.register(scenario)

    def serve(
        self,
        tenants: Sequence[TenantSpec],
        sla: Optional[float] = None,
        spill_dir=None,
        accumulator_factory=None,
        spill_format: str = "npz",
    ) -> ServiceReport:
        """Run every tenant session; return the full service ledger.

        Tenant isolation is the contract: one tenant failing (or being
        rejected, or violating the hold-out rule) never aborts the
        others, and every offered tenant comes back with exactly one
        :class:`TenantReport`.

        Args:
            tenants: The serving window's tenant specs (unique names).
            sla: Default SLA threshold for tenants that set none.
            spill_dir: When set, each tenant spills per-query columns
                under ``spill_dir/<tenant name>``.
            accumulator_factory: Optional picklable
                ``scenario -> accumulators`` override shared by all
                tenants.
            spill_format: ``"npz"`` (default) or ``"parquet"``.
        """
        specs = list(tenants)
        self._validate(specs)
        start = time.perf_counter()
        reports: List[Optional[TenantReport]] = [None] * len(specs)
        with self._tracer.span("serve", phase="serve", tenants=len(specs)):
            sessions = self._admit(
                specs, reports, sla, spill_dir, accumulator_factory
            )
            entries = _fair_share(sessions)
            workers = self._pool_size(entries)
            self._execute(entries, workers, spill_format)
            for session in sessions:
                reports[session.index] = self._resolve(session)
        ledger = [report for report in reports if report is not None]
        assert len(ledger) == len(specs)
        counts = {"rejected": 0, "violation": 0, "completed": 0, "failed": 0}
        for report in ledger:
            counts[report.status] = counts.get(report.status, 0) + 1
        admitted = len(specs) - counts["rejected"]
        return ServiceReport(
            tenants=ledger,
            offered=len(specs),
            admitted=admitted,
            rejected=counts["rejected"],
            violations=counts["violation"],
            completed=counts["completed"],
            failed=counts["failed"],
            dropped=admitted
            - counts["completed"]
            - counts["failed"]
            - counts["violation"],
            workers=workers,
            wall_seconds=time.perf_counter() - start,
        )

    # -- request validation ------------------------------------------------------------

    def _validate(self, specs: List[TenantSpec]) -> None:
        """Reject malformed windows before any tenant spends anything."""
        seen = set()
        for spec in specs:
            if spec.name in seen:
                raise TenancyError(f"duplicate tenant name {spec.name!r}")
            seen.add(spec.name)
            if (spec.scenario is None) == (spec.holdout is None):
                raise TenancyError(
                    f"tenant {spec.name!r} must set exactly one of "
                    "scenario and holdout"
                )
            if spec.holdout is not None:
                if spec.holdout not in self.registry.names():
                    raise TenancyError(
                        f"tenant {spec.name!r} names unknown hold-out "
                        f"{spec.holdout!r}; registered: "
                        f"{self.registry.names()}"
                    )
                if spec.seed is not None:
                    raise TenancyError(
                        f"tenant {spec.name!r} cannot override the seed "
                        "of a sealed hold-out"
                    )
            if spec.shards < 1:
                raise TenancyError(
                    f"tenant {spec.name!r}: shards must be >= 1, got "
                    f"{spec.shards}"
                )
            if spec.arrival_time < 0:
                raise TenancyError(
                    f"tenant {spec.name!r}: arrival_time must be >= 0, "
                    f"got {spec.arrival_time}"
                )

    # -- admission + session planning --------------------------------------------------

    def _admit(
        self,
        specs: List[TenantSpec],
        reports: List[Optional[TenantReport]],
        sla: Optional[float],
        spill_dir,
        accumulator_factory,
    ) -> List[_Session]:
        """Admit tenants in arrival order; plan a session for each.

        Rejected tenants get their report here and never touch the
        hold-out vault; hold-out violations get theirs without aborting
        the window.
        """
        bucket = TokenBucket(self.admission) if self.admission else None
        sessions: List[_Session] = []
        order = sorted(
            range(len(specs)), key=lambda i: (specs[i].arrival_time, i)
        )
        for i in order:
            spec = specs[i]
            if bucket is not None and not bucket.admit(spec.arrival_time):
                self._tracer.counter("service.rejected")
                reports[i] = TenantReport(
                    tenant=spec.name,
                    status="rejected",
                    error=(
                        "admission control: token bucket empty "
                        f"(burst={self.admission.burst}, "
                        f"refill_rate={self.admission.refill_rate}/s)"
                    ),
                )
                continue
            self._tracer.counter("service.admitted")
            sut_name = spec.sut_factory().name
            if spec.holdout is not None:
                try:
                    scenario = self.registry.checkout(spec.holdout, sut_name)
                except HoldoutViolationError as exc:
                    self._tracer.counter("service.violations")
                    reports[i] = TenantReport(
                        tenant=spec.name,
                        sut_name=sut_name,
                        scenario_name=spec.holdout,
                        status="violation",
                        error=str(exc),
                        fingerprint=self.registry.fingerprint(spec.holdout),
                    )
                    continue
            else:
                scenario = spec.scenario
                if spec.seed is not None and spec.seed != scenario.seed:
                    scenario = replace(scenario, seed=spec.seed)
            tenant_sla = spec.sla if spec.sla is not None else sla
            template = _build_accumulators(
                scenario, accumulator_factory, tenant_sla
            )
            ensure_merge_protocol(template)
            tenant_spill = (
                Path(spill_dir) / spec.name if spill_dir is not None else None
            )
            if tenant_spill is not None:
                tenant_spill.mkdir(parents=True, exist_ok=True)
            sessions.append(
                _Session(
                    index=i,
                    spec=spec,
                    sut_name=sut_name,
                    scenario=scenario,
                    plan=plan_shards(scenario, spec.shards),
                    template=template,
                    sla=tenant_sla,
                    fingerprint=scenario.fingerprint(),
                    spill_dir=tenant_spill,
                    accumulator_factory=accumulator_factory,
                )
            )
        return sessions

    # -- execution ---------------------------------------------------------------------

    def _pool_size(self, entries: List[Tuple[_Session, ShardSpec]]) -> int:
        """Worker slots: the explicit setting, else cpu-vs-load bound."""
        if self.workers is not None:
            return self.workers
        return max(1, min(os.cpu_count() or 1, len(entries)))

    def _execute(
        self,
        entries: List[Tuple[_Session, ShardSpec]],
        workers: int,
        spill_format: str,
    ) -> None:
        """Run the interleaved shard entries on one shared pool.

        Outcomes land on ``session.outcomes`` keyed by shard index; a
        failed entry only fails its own tenant (no fail-fast hook).
        """
        if not entries:
            return
        tasks = [
            WorkerTask(
                fn=_run_shard,
                args=(
                    session.spec.sut_factory,
                    session.scenario,
                    self.config.driver_config(),
                    shard,
                    session.accumulator_factory,
                    session.sla,
                    session.spill_dir,
                    spill_format,
                ),
                label=f"{session.spec.name}/shard-{shard.index}",
            )
            for session, shard in entries
        ]
        pool = WorkerPool(
            workers=workers,
            max_attempts=self.max_attempts,
            timeout=self.tenant_timeout,
            retry_backoff=self.retry_backoff,
        )

        def on_attempt(index: int, attempt: int) -> None:
            session, shard = entries[index]
            if attempt > 1 and session.spill_dir is not None:
                shutil.rmtree(
                    shard_spill_directory(session.spill_dir, shard.index),
                    ignore_errors=True,
                )

        outcomes = pool.run(tasks, on_attempt=on_attempt)
        for outcome, (session, shard) in zip(outcomes, entries):
            session.outcomes[shard.index] = outcome

    def _resolve(self, session: _Session) -> TenantReport:
        """Merge one session's shard outcomes into its tenant report."""
        spec = session.spec
        ordered: List[WorkerOutcome] = [
            session.outcomes[shard.index] for shard in session.plan
        ]
        attempts = [outcome.attempts for outcome in ordered]
        wall = sum(outcome.wall_seconds for outcome in ordered)
        base = dict(
            tenant=spec.name,
            sut_name=session.sut_name,
            scenario_name=session.scenario.name,
            seed=session.scenario.seed,
            attempts=attempts,
            shards=len(session.plan),
            wall_seconds=wall,
            fingerprint=session.fingerprint,
        )
        failures = [
            (shard, outcome)
            for shard, outcome in zip(session.plan, ordered)
            if outcome.error is not None
        ]
        if failures:
            self._tracer.counter("service.failed")
            shard, outcome = failures[0]
            return TenantReport(
                status="failed",
                error=(
                    f"shard {shard.index} failed after {outcome.attempts} "
                    f"attempts: {outcome.error}"
                ),
                **base,
            )
        self._tracer.counter("service.completed")
        with self._tracer.span(f"merge:{spec.name}", phase="report"):
            summary = merge_shard_payloads(
                session.scenario,
                session.plan,
                [outcome.payload for outcome in ordered],
                attempts,
                session.template,
                session.spill_dir,
            )
        return TenantReport(
            status="completed",
            summary=summary,
            sla_report=sla_accounting(summary, session.sla),
            **base,
        )


def _fair_share(
    sessions: List[_Session],
) -> List[Tuple[_Session, ShardSpec]]:
    """Round-robin interleave of every session's shard plan.

    Shard 0 of every tenant dispatches before any tenant's shard 1, so
    pool slots rotate across tenants instead of draining one tenant's
    whole plan first — fair share without a priority queue. (Execution
    order never affects results; sessions are deterministic per shard.)
    """
    entries: List[Tuple[_Session, ShardSpec]] = []
    width = max((len(session.plan) for session in sessions), default=0)
    for position in range(width):
        for session in sessions:
            if position < len(session.plan):
                entries.append((session, session.plan[position]))
    return entries
