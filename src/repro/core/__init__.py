"""The benchmark framework — the paper's primary contribution.

Implements the benchmark sketched in §V: scenarios whose workload and
data distributions vary within a single run, a discrete-event driver with
a virtual clock, training as a first-class phase (offline and online),
hardware profiles for training-cost accounting, and sealed hold-out
scenarios for out-of-sample evaluation.
"""

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.hardware import CPU, GPU, TPU, HardwareProfile
from repro.core.holdout import HoldoutRegistry
from repro.core.phases import TrainingEvent, TrainingPhase
from repro.core.results import QueryRecord, RunResult
from repro.core.runner import (
    MatrixJob,
    MatrixOutcome,
    MatrixRunner,
    ResultCache,
    RunManifest,
    matrix_jobs,
    run_matrix,
)
from repro.core.scenario import Scenario, Segment
from repro.core.service import BenchmarkService, HoldoutReport
from repro.core.sharded import (
    ShardedStreamingExecutor,
    plan_shards,
    run_sharded_streaming,
)
from repro.core.streaming import (
    ColumnSpiller,
    ShardSpec,
    StreamingRecorder,
    StreamingRunSummary,
    load_spilled_columns,
)
from repro.core.sut import SystemUnderTest, TrainingSummary
from repro.core.tenancy import (
    AdmissionPolicy,
    BenchmarkServer,
    ServiceReport,
    TenantReport,
    TenantSpec,
)
from repro.core.workers import WorkerOutcome, WorkerPool, WorkerTask

__all__ = [
    "AdmissionPolicy",
    "BenchmarkServer",
    "ServiceReport",
    "TenantReport",
    "TenantSpec",
    "WorkerOutcome",
    "WorkerPool",
    "WorkerTask",
    "ShardedStreamingExecutor",
    "ShardSpec",
    "StreamingRecorder",
    "StreamingRunSummary",
    "ColumnSpiller",
    "load_spilled_columns",
    "plan_shards",
    "run_sharded_streaming",
    "HardwareProfile",
    "CPU",
    "GPU",
    "TPU",
    "SystemUnderTest",
    "TrainingSummary",
    "TrainingPhase",
    "TrainingEvent",
    "Scenario",
    "Segment",
    "QueryRecord",
    "RunResult",
    "DriverConfig",
    "VirtualClockDriver",
    "Benchmark",
    "BenchmarkConfig",
    "MatrixJob",
    "MatrixOutcome",
    "MatrixRunner",
    "ResultCache",
    "RunManifest",
    "matrix_jobs",
    "run_matrix",
    "HoldoutRegistry",
    "BenchmarkService",
    "HoldoutReport",
]
