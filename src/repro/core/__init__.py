"""The benchmark framework — the paper's primary contribution.

Implements the benchmark sketched in §V: scenarios whose workload and
data distributions vary within a single run, a discrete-event driver with
a virtual clock, training as a first-class phase (offline and online),
hardware profiles for training-cost accounting, and sealed hold-out
scenarios for out-of-sample evaluation.
"""

from repro.core.hardware import HardwareProfile, CPU, GPU, TPU
from repro.core.sut import SystemUnderTest, TrainingSummary
from repro.core.phases import TrainingEvent, TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.core.results import QueryRecord, RunResult
from repro.core.driver import VirtualClockDriver
from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.holdout import HoldoutRegistry
from repro.core.service import BenchmarkService, HoldoutReport

__all__ = [
    "HardwareProfile",
    "CPU",
    "GPU",
    "TPU",
    "SystemUnderTest",
    "TrainingSummary",
    "TrainingPhase",
    "TrainingEvent",
    "Scenario",
    "Segment",
    "QueryRecord",
    "RunResult",
    "VirtualClockDriver",
    "Benchmark",
    "BenchmarkConfig",
    "HoldoutRegistry",
    "BenchmarkService",
    "HoldoutReport",
]
