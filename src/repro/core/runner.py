"""The parallel benchmark matrix runner.

Every figure in the paper is a *matrix* of runs — (SUT × scenario × seed)
— yet :class:`~repro.core.driver.VirtualClockDriver` executes one pair at
a time. This module is the orchestration layer on top of it:

* :class:`MatrixRunner` fans a list of :class:`MatrixJob` s across a
  ``multiprocessing`` pool. Runs are deterministic functions of their
  inputs (the driver seeds every RNG from ``scenario.seed``), so parallel
  results are byte-identical to serial ones and arrive in job order.
* :class:`ResultCache` is a content-addressed on-disk store: the cache
  key is a SHA-256 over the SUT description, the scenario fingerprint,
  the :class:`~repro.core.driver.DriverConfig` fields, the seed, and a
  hash of the result-determining source modules. Re-running a figure
  script therefore only executes jobs whose inputs actually changed.
* :class:`RunManifest` records per-job wall time, cache hit/miss, worker
  pid, and failure details, so every matrix invocation leaves an
  observable trace (and a crash in one job cannot sink the matrix —
  the job is marked ``failed`` and the rest completes).

The runner is the layer future scaling work (sharding, remote workers)
builds on; see DESIGN.md §2.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import multiprocessing
import os
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.core.sut import SystemUnderTest
from repro.errors import RunnerError
from repro.observability import Trace, Tracer

#: Manifest/cache schema version (bump to invalidate old cache entries).
CACHE_FORMAT = 1


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of the source modules that determine a run's output.

    Part of every cache key: editing the driver, the workload generator,
    or the result record invalidates previously cached results, while
    editing metrics/reporting (pure post-processing) does not.
    """
    import repro
    from repro.core import driver, phases, results, scenario
    from repro.workloads import distributions, drift, generators, patterns

    digest = hashlib.sha256()
    digest.update(repro.__version__.encode())
    digest.update(str(CACHE_FORMAT).encode())
    for module in (
        driver, phases, results, scenario,
        distributions, drift, generators, patterns,
    ):
        digest.update(inspect.getsource(module).encode())
    return digest.hexdigest()


@dataclass
class MatrixJob:
    """One cell of the benchmark matrix.

    Attributes:
        sut_factory: Zero-argument callable building a fresh SUT. Must be
            picklable for multi-process execution — a module-level
            function, a class, or a :func:`functools.partial` of either
            (not a lambda or closure).
        scenario: The scenario to run.
        seed: Optional seed override; ``None`` keeps ``scenario.seed``.
        label: Display/grouping label (defaults to ``<sut>×<scenario>``
            plus the seed when overridden).
    """

    sut_factory: Callable[[], SystemUnderTest]
    scenario: Scenario
    seed: Optional[int] = None
    label: str = ""

    def resolved_scenario(self) -> Scenario:
        """The scenario with the job's seed override applied."""
        if self.seed is None or self.seed == self.scenario.seed:
            return self.scenario
        return replace(self.scenario, seed=self.seed)


def matrix_jobs(
    sut_factories: Dict[str, Callable[[], SystemUnderTest]],
    scenarios: Sequence[Scenario],
    seeds: Sequence[int] = (),
) -> List[MatrixJob]:
    """Cartesian product (SUT × scenario × seed) as a job list.

    An empty ``seeds`` keeps each scenario's own seed (one run per pair).
    """
    jobs: List[MatrixJob] = []
    for scenario in scenarios:
        for sut_key, factory in sut_factories.items():
            if seeds:
                for seed in seeds:
                    jobs.append(MatrixJob(
                        sut_factory=factory,
                        scenario=scenario,
                        seed=seed,
                        label=f"{sut_key}×{scenario.name}#s{seed}",
                    ))
            else:
                jobs.append(MatrixJob(
                    sut_factory=factory,
                    scenario=scenario,
                    label=f"{sut_key}×{scenario.name}",
                ))
    return jobs


@dataclass
class JobRecord:
    """One manifest row: what happened to one job.

    ``status`` is ``"ok"`` (executed), ``"cached"`` (served from the
    result cache), or ``"failed"`` (the worker raised or crashed).

    ``trace`` is the worker's serialized :class:`~repro.observability.Trace`
    (``Trace.to_dict`` payload) for executed jobs; cached and failed jobs
    carry ``None``.
    """

    label: str
    sut_name: str
    scenario_name: str
    seed: int
    cache_key: str
    status: str
    wall_seconds: float = 0.0
    worker: int = 0
    error: Optional[str] = None
    trace: Optional[Dict[str, Any]] = None

    @property
    def cache_hit(self) -> bool:
        return self.status == "cached"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "seed": self.seed,
            "cache_key": self.cache_key,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "error": self.error,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        return cls(**data)


@dataclass
class RunManifest:
    """Observability record of one matrix invocation."""

    jobs: List[JobRecord] = field(default_factory=list)
    workers: int = 1
    cache_dir: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for j in self.jobs if j.status == "cached")

    @property
    def executed(self) -> int:
        return sum(1 for j in self.jobs if j.status == "ok")

    @property
    def failures(self) -> List[JobRecord]:
        return [j for j in self.jobs if j.status == "failed"]

    def telemetry(self) -> Dict[str, Any]:
        """Matrix-wide telemetry rollup: merged worker traces.

        Folds every job's trace together (phase self-time totals plus
        summed counters) and reports how many jobs contributed — cached
        and failed jobs carry no trace and are excluded.
        """
        merged = Trace()
        traced_jobs = 0
        for job in self.jobs:
            if job.trace:
                merged = merged.merge(Trace.from_dict(job.trace))
                traced_jobs += 1
        return {
            "traced_jobs": traced_jobs,
            "phase_seconds": merged.phase_seconds(),
            "counters": dict(merged.counters),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CACHE_FORMAT,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "wall_seconds": self.wall_seconds,
            "telemetry": self.telemetry(),
            "jobs": [j.to_dict() for j in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        return cls(
            jobs=[JobRecord.from_dict(j) for j in data.get("jobs", [])],
            workers=data.get("workers", 1),
            cache_dir=data.get("cache_dir"),
            wall_seconds=data.get("wall_seconds", 0.0),
        )

    def save(self, path: str) -> None:
        """Write the manifest as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def summary(self) -> str:
        """One-line human summary (used by the CLI and bench logs)."""
        return (
            f"{len(self.jobs)} jobs: {self.executed} executed, "
            f"{self.hits} cached, {len(self.failures)} failed "
            f"in {self.wall_seconds:.2f}s on {self.workers} worker(s)"
        )


class ResultCache:
    """Content-addressed on-disk store of :class:`RunResult` payloads."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self.path(key)) as handle:
                payload = json.load(handle)
            if payload.get("format") != CACHE_FORMAT:
                # An entry written by a different schema version is a
                # miss: its payload may not deserialize correctly.
                return None
            return RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError):
            # A torn/stale entry is a miss, never an error.
            return None

    def store(self, key: str, result: RunResult, meta: Dict[str, Any]) -> None:
        """Atomically persist ``result`` under ``key``."""
        payload = {"format": CACHE_FORMAT, "meta": meta, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def job_cache_key(
    job: MatrixJob, config: DriverConfig, sut_description: Dict[str, Any]
) -> str:
    """SHA-256 cache key of everything that determines the job's result."""
    scenario = job.resolved_scenario()
    payload = json.dumps(
        {
            "sut": sut_description,
            "scenario": scenario.fingerprint(),
            "driver": config.describe(),
            "seed": scenario.seed,
            "code": code_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _execute_job(
    index: int,
    factory: Callable[[], SystemUnderTest],
    scenario: Scenario,
    config: DriverConfig,
) -> Tuple[
    int, int, float, Optional[Dict[str, Any]], Optional[str],
    Optional[Dict[str, Any]],
]:
    """Worker entry point: run one job, never raise.

    Returns ``(index, worker_pid, wall_seconds, result_dict, error,
    trace_dict)``. Results travel as :meth:`RunResult.to_dict` payloads
    so transport is identical to the cache format (and cheap to pickle);
    the trace travels as :meth:`~repro.observability.Trace.to_dict` and
    lands on the job's manifest record.
    """
    start = time.perf_counter()
    tracer = Tracer()
    try:
        sut = factory()
        result = VirtualClockDriver(config, tracer=tracer).run(sut, scenario)
        with tracer.span("serialize-result", phase="report"):
            payload = result.to_dict()
        wall = time.perf_counter() - start
        return index, os.getpid(), wall, payload, None, tracer.finish().to_dict()
    except Exception as exc:  # structured failure: the pool survives
        wall = time.perf_counter() - start
        tail = "".join(traceback.format_tb(exc.__traceback__)[-3:]).rstrip()
        error = f"{type(exc).__name__}: {exc}\n{tail}" if tail else (
            f"{type(exc).__name__}: {exc}"
        )
        return index, os.getpid(), wall, None, error, None


@dataclass
class MatrixOutcome:
    """What :meth:`MatrixRunner.run` returns.

    ``results`` is aligned with the submitted job list; a failed job's
    slot is ``None`` (details in ``manifest``).
    """

    results: List[Optional[RunResult]]
    manifest: RunManifest

    def named(self) -> Dict[str, RunResult]:
        """Successful results keyed by job label."""
        return {
            record.label: result
            for record, result in zip(self.manifest.jobs, self.results)
            if result is not None
        }

    def raise_on_failure(self) -> "MatrixOutcome":
        """Raise :class:`RunnerError` if any job failed; else ``self``."""
        failed = self.manifest.failures
        if failed:
            detail = "; ".join(f"{j.label}: {j.error}" for j in failed)
            raise RunnerError(f"{len(failed)} matrix job(s) failed — {detail}")
        return self


class MatrixRunner:
    """Runs a benchmark matrix across a process pool with result caching.

    Args:
        driver_config: Driver knobs shared by every job.
        workers: Process-pool size; ``1`` (or a single-job matrix) runs
            in-process. ``None`` picks ``min(cpu_count, len(jobs))``.
        cache_dir: Result-cache directory; ``None`` disables caching.
        use_cache: Master switch (lets callers keep ``cache_dir``
            configured while forcing re-execution).
        max_attempts: Executions per job before it is marked failed.
            Only pool-level breakage (a hard worker crash) consumes
            attempts; ordinary exceptions fail the job immediately.
    """

    def __init__(
        self,
        driver_config: Optional[DriverConfig] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        max_attempts: int = 2,
    ) -> None:
        if workers is not None and workers < 1:
            raise RunnerError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise RunnerError(f"max_attempts must be >= 1, got {max_attempts}")
        self.driver_config = driver_config or DriverConfig()
        self.workers = workers
        self.use_cache = use_cache and cache_dir is not None
        self.cache = ResultCache(cache_dir) if self.use_cache else None
        self.max_attempts = max_attempts

    # -- public API ------------------------------------------------------------------

    def run(self, jobs: Sequence[MatrixJob]) -> MatrixOutcome:
        """Execute the matrix; cache hits skip execution entirely."""
        jobs = list(jobs)
        if not jobs:
            return MatrixOutcome(results=[], manifest=RunManifest(workers=0))
        t0 = time.perf_counter()

        records: List[Optional[JobRecord]] = [None] * len(jobs)
        results: List[Optional[RunResult]] = [None] * len(jobs)
        pending: List[int] = []

        for index, job in enumerate(jobs):
            try:
                sut = job.sut_factory()  # construction is cheap; setup is not
            except Exception as exc:
                records[index] = JobRecord(
                    label=job.label or f"?×{job.scenario.name}",
                    sut_name="?",
                    scenario_name=job.scenario.name,
                    seed=job.resolved_scenario().seed,
                    cache_key="",
                    status="failed",
                    error=f"factory raised {type(exc).__name__}: {exc}",
                )
                continue
            key = job_cache_key(job, self.driver_config, sut.describe())
            record = JobRecord(
                label=job.label or f"{sut.name}×{job.scenario.name}",
                sut_name=sut.name,
                scenario_name=job.scenario.name,
                seed=job.resolved_scenario().seed,
                cache_key=key,
                status="pending",
            )
            records[index] = record
            cached = self.cache.load(key) if self.use_cache else None
            if cached is not None:
                record.status = "cached"
                results[index] = cached
            else:
                pending.append(index)

        workers = self._worker_count(len(pending))
        if pending:
            if workers == 1:
                self._run_serial(jobs, pending, records, results)
            else:
                self._run_pool(jobs, pending, records, results, workers)

        manifest = RunManifest(
            jobs=[r for r in records if r is not None],
            workers=workers,
            cache_dir=self.cache.root if self.cache else None,
            wall_seconds=time.perf_counter() - t0,
        )
        return MatrixOutcome(results=results, manifest=manifest)

    # -- execution strategies --------------------------------------------------------

    def _worker_count(self, n_pending: int) -> int:
        if n_pending <= 1:
            return 1
        if self.workers is not None:
            return min(self.workers, n_pending)
        return min(os.cpu_count() or 1, n_pending)

    def _run_serial(
        self,
        jobs: Sequence[MatrixJob],
        pending: List[int],
        records: List[Optional[JobRecord]],
        results: List[Optional[RunResult]],
    ) -> None:
        for index in pending:
            job = jobs[index]
            outcome = _execute_job(
                index, job.sut_factory, job.resolved_scenario(), self.driver_config
            )
            self._absorb(outcome, records, results)

    def _run_pool(
        self,
        jobs: Sequence[MatrixJob],
        pending: List[int],
        records: List[Optional[JobRecord]],
        results: List[Optional[RunResult]],
        workers: int,
    ) -> None:
        """Fan pending jobs across a pool; survive hard worker crashes.

        A worker that raises returns a structured error (``_execute_job``
        never raises), so the pool only breaks on a *hard* crash
        (segfault, OOM-kill). When that happens every in-flight future
        fails with the pool; each affected job gets re-submitted to a
        fresh pool until it exhausts ``max_attempts`` — so one poisonous
        job is eventually marked failed while the rest complete.
        """
        attempts = {index: 0 for index in pending}
        queue = list(pending)
        context = self._mp_context()
        while queue:
            for index in queue:
                attempts[index] += 1
            retry: List[int] = []
            with ProcessPoolExecutor(
                max_workers=min(workers, len(queue)), mp_context=context
            ) as pool:
                futures = {
                    pool.submit(
                        _execute_job,
                        index,
                        jobs[index].sut_factory,
                        jobs[index].resolved_scenario(),
                        self.driver_config,
                    ): index
                    for index in queue
                }
                not_done = set(futures)
                broken = False
                while not_done and not broken:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        error = future.exception()
                        if error is None:
                            self._absorb(future.result(), records, results)
                        else:
                            # Pool-level breakage: the whole executor is
                            # dead; triage every unfinished job.
                            broken = True
                            self._crashed(index, error, attempts, retry, records)
                for future in not_done:
                    index = futures[future]
                    self._crashed(
                        index,
                        RuntimeError("aborted: worker pool broke"),
                        attempts,
                        retry,
                        records,
                    )
            queue = retry

    def _crashed(
        self,
        index: int,
        error: BaseException,
        attempts: Dict[int, int],
        retry: List[int],
        records: List[Optional[JobRecord]],
    ) -> None:
        record = records[index]
        assert record is not None
        if attempts[index] < self.max_attempts:
            retry.append(index)
        else:
            record.status = "failed"
            record.error = f"{type(error).__name__}: {error}"

    def _absorb(
        self,
        outcome: Tuple[
            int, int, float, Optional[Dict[str, Any]], Optional[str],
            Optional[Dict[str, Any]],
        ],
        records: List[Optional[JobRecord]],
        results: List[Optional[RunResult]],
    ) -> None:
        index, worker, wall, payload, error, trace = outcome
        record = records[index]
        assert record is not None
        record.wall_seconds = wall
        record.worker = worker
        record.trace = trace
        if error is not None:
            record.status = "failed"
            record.error = error
            return
        result = RunResult.from_dict(payload)
        record.status = "ok"
        results[index] = result
        if self.cache is not None:
            self.cache.store(
                record.cache_key,
                result,
                meta={
                    "label": record.label,
                    "sut": record.sut_name,
                    "scenario": record.scenario_name,
                    "seed": record.seed,
                    "wall_seconds": wall,
                },
            )

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` so factories defined in scripts stay picklable."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()


def run_matrix(
    jobs: Iterable[MatrixJob],
    driver_config: Optional[DriverConfig] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> MatrixOutcome:
    """One-call convenience wrapper around :class:`MatrixRunner`."""
    runner = MatrixRunner(
        driver_config=driver_config,
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    return runner.run(list(jobs))
