"""The parallel benchmark matrix runner.

Every figure in the paper is a *matrix* of runs — (SUT × scenario × seed)
— yet :class:`~repro.core.driver.VirtualClockDriver` executes one pair at
a time. This module is the orchestration layer on top of it:

* :class:`MatrixRunner` fans a list of :class:`MatrixJob` s across a
  ``multiprocessing`` pool. Runs are deterministic functions of their
  inputs (the driver seeds every RNG from ``scenario.seed``), so parallel
  results are byte-identical to serial ones and arrive in job order.
* :class:`ResultCache` is a content-addressed on-disk store: the cache
  key is a SHA-256 over the SUT description, the scenario fingerprint,
  the :class:`~repro.core.driver.DriverConfig` fields, the seed, and a
  hash of the result-determining source modules. Re-running a figure
  script therefore only executes jobs whose inputs actually changed.
* :class:`RunManifest` records per-job wall time, cache hit/miss, worker
  pid, attempt count, and failure details, so every matrix invocation
  leaves an observable trace (and a crash in one job cannot sink the
  matrix — the job is marked ``failed`` and the rest completes).

Hardening (chaos-benchmark matrices run for hours, so the runner itself
must survive misbehaving jobs and interrupted invocations):

* **Per-job wall-clock timeouts** (``job_timeout``): each job runs in
  its own process; a job that exceeds the deadline is killed and
  consumes one attempt.
* **Exponential-backoff retry budget** (``max_attempts`` ×
  ``retry_backoff``): crashed, timed-out, *and* raising jobs are retried
  with ``retry_backoff * 2**(attempt-1)`` seconds between attempts; the
  final failure surfaces the worker's traceback tail and the attempt
  count lands on the :class:`JobRecord`.
* **Checkpoint/resume** (``checkpoint`` + ``resume``): the manifest is
  atomically rewritten after every finished job; a resumed run reuses
  the checkpoint's completed records verbatim (results served from the
  result cache), so the final manifest is canonically identical to an
  uninterrupted run's.

The process transport, deadlines, retry budget, and crash isolation all
live in the shared :class:`~repro.core.workers.WorkerPool` layer — the
same pool :class:`~repro.core.sharded.ShardedStreamingExecutor` and the
multi-tenant service run on; this module only keeps the matrix-specific
bookkeeping (cache keys, manifests, checkpoints). See DESIGN.md §2/§11.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.core.sut import SystemUnderTest
from repro.core.workers import (  # noqa: F401 — re-exported for compat
    WorkerOutcome,
    WorkerPool,
    WorkerTask,
    kill_process,
    mp_context,
)
from repro.errors import RunnerError
from repro.observability import Trace

#: Manifest/cache schema version (bump to invalidate old cache entries).
CACHE_FORMAT = 1


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of the source modules that determine a run's output.

    Part of every cache key: editing the driver, the workload generator,
    or the result record invalidates previously cached results, while
    editing metrics/reporting (pure post-processing) does not.
    """
    import repro
    from repro.core import driver, phases, queueing, results, scenario
    from repro.faults import clock as fault_clock
    from repro.faults import plan as fault_plan
    from repro.workloads import distributions, drift, generators, patterns

    digest = hashlib.sha256()
    digest.update(repro.__version__.encode())
    digest.update(str(CACHE_FORMAT).encode())
    for module in (
        driver, phases, queueing, results, scenario,
        fault_plan, fault_clock,
        distributions, drift, generators, patterns,
    ):
        digest.update(inspect.getsource(module).encode())
    return digest.hexdigest()


@dataclass
class MatrixJob:
    """One cell of the benchmark matrix.

    Attributes:
        sut_factory: Zero-argument callable building a fresh SUT. Must be
            picklable for multi-process execution — a module-level
            function, a class, or a :func:`functools.partial` of either
            (not a lambda or closure).
        scenario: The scenario to run.
        seed: Optional seed override; ``None`` keeps ``scenario.seed``.
        label: Display/grouping label (defaults to ``<sut>×<scenario>``
            plus the seed when overridden).
    """

    sut_factory: Callable[[], SystemUnderTest]
    scenario: Scenario
    seed: Optional[int] = None
    label: str = ""

    def resolved_scenario(self) -> Scenario:
        """The scenario with the job's seed override applied."""
        if self.seed is None or self.seed == self.scenario.seed:
            return self.scenario
        return replace(self.scenario, seed=self.seed)


def matrix_jobs(
    sut_factories: Dict[str, Callable[[], SystemUnderTest]],
    scenarios: Sequence[Scenario],
    seeds: Sequence[int] = (),
) -> List[MatrixJob]:
    """Cartesian product (SUT × scenario × seed) as a job list.

    An empty ``seeds`` keeps each scenario's own seed (one run per pair).
    """
    jobs: List[MatrixJob] = []
    for scenario in scenarios:
        for sut_key, factory in sut_factories.items():
            if seeds:
                for seed in seeds:
                    jobs.append(MatrixJob(
                        sut_factory=factory,
                        scenario=scenario,
                        seed=seed,
                        label=f"{sut_key}×{scenario.name}#s{seed}",
                    ))
            else:
                jobs.append(MatrixJob(
                    sut_factory=factory,
                    scenario=scenario,
                    label=f"{sut_key}×{scenario.name}",
                ))
    return jobs


@dataclass
class JobRecord:
    """One manifest row: what happened to one job.

    ``status`` is ``"ok"`` (executed), ``"cached"`` (served from the
    result cache), or ``"failed"`` (the worker raised or crashed).

    ``trace`` is the worker's serialized :class:`~repro.observability.Trace`
    (``Trace.to_dict`` payload) for executed jobs; cached and failed jobs
    carry ``None``.

    ``attempts`` counts executions of the job (1 for a clean first run;
    higher when crash/timeout/exception retries were consumed). The
    field defaults to 1 so manifests written before it existed still
    load.

    ``phi`` is the computed drift distance of the job's scenario (the
    :func:`repro.metrics.similarity.scenario_phi` payload), stamped by
    drift-axis sweeps; ``None`` for jobs that don't measure it. Defaults
    to ``None`` so manifests written before it existed still load.
    """

    label: str
    sut_name: str
    scenario_name: str
    seed: int
    cache_key: str
    status: str
    wall_seconds: float = 0.0
    worker: int = 0
    attempts: int = 1
    error: Optional[str] = None
    trace: Optional[Dict[str, Any]] = None
    phi: Optional[Dict[str, Any]] = None

    @property
    def cache_hit(self) -> bool:
        """Whether this job was served from the result cache."""
        return self.status == "cached"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (inverse of :meth:`from_dict`)."""
        return {
            "label": self.label,
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "seed": self.seed,
            "cache_key": self.cache_key,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "trace": self.trace,
            "phi": self.phi,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class RunManifest:
    """Observability record of one matrix invocation."""

    jobs: List[JobRecord] = field(default_factory=list)
    workers: int = 1
    cache_dir: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def hits(self) -> int:
        """Number of jobs served from cache."""
        return sum(1 for j in self.jobs if j.status == "cached")

    @property
    def executed(self) -> int:
        """Number of jobs actually run to completion."""
        return sum(1 for j in self.jobs if j.status == "ok")

    @property
    def failures(self) -> List[JobRecord]:
        """Jobs that exhausted their attempts without a result."""
        return [j for j in self.jobs if j.status == "failed"]

    def telemetry(self) -> Dict[str, Any]:
        """Matrix-wide telemetry rollup: merged worker traces.

        Folds every job's trace together (phase self-time totals plus
        summed counters) and reports how many jobs contributed — cached
        and failed jobs carry no trace and are excluded.
        """
        merged = Trace()
        traced_jobs = 0
        for job in self.jobs:
            if job.trace:
                merged = merged.merge(Trace.from_dict(job.trace))
                traced_jobs += 1
        return {
            "traced_jobs": traced_jobs,
            "phase_seconds": merged.phase_seconds(),
            "counters": dict(merged.counters),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON payload, including volatile timing/telemetry."""
        return {
            "format": CACHE_FORMAT,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "wall_seconds": self.wall_seconds,
            "telemetry": self.telemetry(),
            "jobs": [j.to_dict() for j in self.jobs],
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """Execution-invariant view of the manifest.

        Drops everything that legitimately varies between two equivalent
        invocations — wall times, worker pids, traces, pool size, cache
        location — and keeps what the matrix *computed*: per-job
        identity, cache keys, statuses, attempt counts, and errors. A
        checkpoint/resume run is correct iff its canonical dict equals
        the uninterrupted run's.
        """
        volatile = {"wall_seconds", "worker", "trace"}
        return {
            "format": CACHE_FORMAT,
            "jobs": [
                {k: v for k, v in j.to_dict().items() if k not in volatile}
                for j in self.jobs
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(
            jobs=[JobRecord.from_dict(j) for j in data.get("jobs", [])],
            workers=data.get("workers", 1),
            cache_dir=data.get("cache_dir"),
            wall_seconds=data.get("wall_seconds", 0.0),
        )

    def save(self, path: str) -> None:
        """Write the manifest as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def summary(self) -> str:
        """One-line human summary (used by the CLI and bench logs)."""
        return (
            f"{len(self.jobs)} jobs: {self.executed} executed, "
            f"{self.hits} cached, {len(self.failures)} failed "
            f"in {self.wall_seconds:.2f}s on {self.workers} worker(s)"
        )


class ResultCache:
    """Content-addressed on-disk store of :class:`RunResult` payloads."""

    def __init__(self, root: str) -> None:
        """Open (creating if needed) the cache directory ``root``."""
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, key: str) -> str:
        """On-disk location for cache entry ``key``."""
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self.path(key)) as handle:
                payload = json.load(handle)
            if payload.get("format") != CACHE_FORMAT:
                # An entry written by a different schema version is a
                # miss: its payload may not deserialize correctly.
                return None
            return RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError):
            # A torn/stale entry is a miss, never an error.
            return None

    def store(self, key: str, result: RunResult, meta: Dict[str, Any]) -> None:
        """Atomically persist ``result`` under ``key``."""
        payload = {"format": CACHE_FORMAT, "meta": meta, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def job_cache_key(
    job: MatrixJob, config: DriverConfig, sut_description: Dict[str, Any]
) -> str:
    """SHA-256 cache key of everything that determines the job's result."""
    scenario = job.resolved_scenario()
    payload = json.dumps(
        {
            "sut": sut_description,
            "scenario": scenario.fingerprint(),
            "driver": config.describe(),
            "seed": scenario.seed,
            "code": code_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _matrix_job_body(
    factory: Callable[[], SystemUnderTest],
    scenario: Scenario,
    config: DriverConfig,
    tracer,
) -> Dict[str, Any]:
    """The pool task body: run one matrix job, return its result dict.

    Results travel as :meth:`RunResult.to_dict` payloads so transport is
    identical to the cache format (and cheap to pickle). The pool
    threads the per-attempt ``tracer`` in (``WorkerTask.traced``); its
    finished trace lands on the job's manifest record.
    """
    sut = factory()
    result = VirtualClockDriver(config, tracer=tracer).run(sut, scenario)
    with tracer.span("serialize-result", phase="report"):
        return result.to_dict()


@dataclass
class MatrixOutcome:
    """What :meth:`MatrixRunner.run` returns.

    ``results`` is aligned with the submitted job list; a failed job's
    slot is ``None`` (details in ``manifest``).
    """

    results: List[Optional[RunResult]]
    manifest: RunManifest

    def named(self) -> Dict[str, RunResult]:
        """Successful results keyed by job label."""
        return {
            record.label: result
            for record, result in zip(self.manifest.jobs, self.results)
            if result is not None
        }

    def raise_on_failure(self) -> "MatrixOutcome":
        """Raise :class:`RunnerError` if any job failed; else ``self``."""
        failed = self.manifest.failures
        if failed:
            detail = "; ".join(f"{j.label}: {j.error}" for j in failed)
            raise RunnerError(f"{len(failed)} matrix job(s) failed — {detail}")
        return self


class MatrixRunner:
    """Runs a benchmark matrix across a process pool with result caching.

    Args:
        driver_config: Driver knobs shared by every job.
        workers: Process-pool size; ``1`` (or a single-job matrix) runs
            in-process. ``None`` picks ``min(cpu_count, len(jobs))``.
        cache_dir: Result-cache directory; ``None`` disables caching.
        use_cache: Master switch (lets callers keep ``cache_dir``
            configured while forcing re-execution).
        max_attempts: Executions per job before it is marked failed.
            Hard worker crashes, timeouts, and in-worker exceptions all
            consume attempts; the final failure records the last
            attempt's error (a raising job's error includes the worker's
            traceback tail).
        job_timeout: Per-job wall-clock budget in seconds; a job still
            running at its deadline is killed and the attempt counts as
            failed. ``None`` disables timeouts. Enforcing a timeout
            requires process isolation, so a single-job matrix with a
            timeout still runs through the process scheduler.
        retry_backoff: Base of the exponential backoff between attempts
            (``retry_backoff * 2**(attempt-1)`` seconds).
        checkpoint: Path where the manifest is atomically rewritten
            after every finished job, so a killed invocation leaves a
            loadable partial manifest.
        resume: Reuse the checkpoint's completed records: a job whose
            cache key matches a checkpointed ``ok``/``cached`` record
            (and whose result the cache can still serve) is not
            re-executed, and its record — wall time, worker, trace,
            attempts — is preserved verbatim. Requires ``cache_dir``;
            without a cache there is nothing to serve results from and
            every job re-executes.
    """

    def __init__(
        self,
        driver_config: Optional[DriverConfig] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        max_attempts: int = 2,
        job_timeout: Optional[float] = None,
        retry_backoff: float = 0.25,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        """Validate and store the runner knobs (see class docstring)."""
        if workers is not None and workers < 1:
            raise RunnerError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise RunnerError(f"max_attempts must be >= 1, got {max_attempts}")
        if job_timeout is not None and job_timeout <= 0:
            raise RunnerError(f"job_timeout must be > 0, got {job_timeout}")
        if retry_backoff < 0:
            raise RunnerError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if resume and checkpoint is None:
            raise RunnerError("resume=True requires a checkpoint path")
        self.driver_config = driver_config or DriverConfig()
        self.workers = workers
        self.use_cache = use_cache and cache_dir is not None
        self.cache = ResultCache(cache_dir) if self.use_cache else None
        self.max_attempts = max_attempts
        self.job_timeout = job_timeout
        self.retry_backoff = retry_backoff
        self.checkpoint = checkpoint
        self.resume = resume
        self._checkpoint_workers = 1

    # -- public API ------------------------------------------------------------------

    def run(self, jobs: Sequence[MatrixJob]) -> MatrixOutcome:
        """Execute the matrix; cache hits skip execution entirely."""
        jobs = list(jobs)
        if not jobs:
            return MatrixOutcome(results=[], manifest=RunManifest(workers=0))
        t0 = time.perf_counter()

        records: List[Optional[JobRecord]] = [None] * len(jobs)
        results: List[Optional[RunResult]] = [None] * len(jobs)
        pending: List[int] = []
        prior = self._load_checkpoint_records()

        for index, job in enumerate(jobs):
            try:
                sut = job.sut_factory()  # construction is cheap; setup is not
            except Exception as exc:
                records[index] = JobRecord(
                    label=job.label or f"?×{job.scenario.name}",
                    sut_name="?",
                    scenario_name=job.scenario.name,
                    seed=job.resolved_scenario().seed,
                    cache_key="",
                    status="failed",
                    error=f"factory raised {type(exc).__name__}: {exc}",
                )
                continue
            key = job_cache_key(job, self.driver_config, sut.describe())
            if key in prior and self.use_cache:
                # Resume: reuse the checkpointed record verbatim (wall
                # time, worker, trace, attempts) when the cache can
                # still serve the result — the manifest ends up
                # canonically identical to an uninterrupted run's.
                reusable = self.cache.load(key)
                if reusable is not None:
                    records[index] = replace(prior[key])
                    results[index] = reusable
                    continue
            record = JobRecord(
                label=job.label or f"{sut.name}×{job.scenario.name}",
                sut_name=sut.name,
                scenario_name=job.scenario.name,
                seed=job.resolved_scenario().seed,
                cache_key=key,
                status="pending",
            )
            records[index] = record
            cached = self.cache.load(key) if self.use_cache else None
            if cached is not None:
                record.status = "cached"
                results[index] = cached
            else:
                pending.append(index)

        workers = self._worker_count(len(pending))
        self._checkpoint_workers = workers
        self._write_checkpoint(records)
        if pending:
            self._execute_pending(jobs, pending, records, results, workers)

        manifest = RunManifest(
            jobs=[r for r in records if r is not None],
            workers=workers,
            cache_dir=self.cache.root if self.cache else None,
            wall_seconds=time.perf_counter() - t0,
        )
        return MatrixOutcome(results=results, manifest=manifest)

    # -- execution strategies --------------------------------------------------------

    def _worker_count(self, n_pending: int) -> int:
        if n_pending <= 1:
            return 1
        if self.workers is not None:
            return min(self.workers, n_pending)
        return min(os.cpu_count() or 1, n_pending)

    def _execute_pending(
        self,
        jobs: Sequence[MatrixJob],
        pending: List[int],
        records: List[Optional[JobRecord]],
        results: List[Optional[RunResult]],
        workers: int,
    ) -> None:
        """Run the pending jobs on the shared :class:`WorkerPool`.

        The pool owns transport, deadlines, the retry budget, and crash
        isolation (see :mod:`repro.core.workers`); this method only maps
        pool events onto the matrix bookkeeping — attempt counts land on
        the :class:`JobRecord` as they happen, and every finished job
        is absorbed (result + cache + checkpoint) in completion order.
        One poisonous job can never sink the matrix: its record is
        marked ``failed`` and the rest completes.
        """
        pool = WorkerPool(
            workers=workers,
            max_attempts=self.max_attempts,
            timeout=self.job_timeout,
            retry_backoff=self.retry_backoff,
        )
        tasks = []
        for index in pending:
            record = records[index]
            assert record is not None
            tasks.append(WorkerTask(
                fn=_matrix_job_body,
                args=(
                    jobs[index].sut_factory,
                    jobs[index].resolved_scenario(),
                    self.driver_config,
                ),
                label=record.label,
                traced=True,
            ))

        def on_attempt(task_index: int, attempt: int) -> None:
            record = records[pending[task_index]]
            assert record is not None
            record.attempts = attempt

        def on_outcome(outcome: WorkerOutcome) -> None:
            self._absorb(pending[outcome.index], outcome, records, results)
            self._write_checkpoint(records)

        pool.run(tasks, on_attempt=on_attempt, on_outcome=on_outcome)

    # -- checkpointing ---------------------------------------------------------------

    def _load_checkpoint_records(self) -> Dict[str, JobRecord]:
        """Completed records from the resume checkpoint, by cache key."""
        if not self.resume or self.checkpoint is None:
            return {}
        try:
            manifest = RunManifest.load(self.checkpoint)
        except (FileNotFoundError, json.JSONDecodeError, KeyError, TypeError):
            # A missing or torn checkpoint just means a cold start.
            return {}
        return {
            rec.cache_key: rec
            for rec in manifest.jobs
            if rec.status in ("ok", "cached") and rec.cache_key
        }

    def _write_checkpoint(
        self, records: Sequence[Optional[JobRecord]]
    ) -> None:
        """Atomically rewrite the checkpoint manifest (if configured)."""
        if self.checkpoint is None:
            return
        manifest = RunManifest(
            jobs=[r for r in records if r is not None],
            workers=self._checkpoint_workers,
            cache_dir=self.cache.root if self.cache else None,
        )
        directory = os.path.dirname(os.path.abspath(self.checkpoint))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(manifest.to_dict(), handle, indent=2)
            os.replace(tmp, self.checkpoint)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _absorb(
        self,
        index: int,
        outcome: WorkerOutcome,
        records: List[Optional[JobRecord]],
        results: List[Optional[RunResult]],
    ) -> None:
        """Land a finished pool outcome on job ``index``'s record."""
        record = records[index]
        assert record is not None
        record.wall_seconds = outcome.wall_seconds
        record.worker = outcome.worker
        record.trace = outcome.trace
        if outcome.error is not None:
            record.status = "failed"
            record.error = outcome.error
            return
        result = RunResult.from_dict(outcome.payload)
        record.status = "ok"
        results[index] = result
        if self.cache is not None:
            self.cache.store(
                record.cache_key,
                result,
                meta={
                    "label": record.label,
                    "sut": record.sut_name,
                    "scenario": record.scenario_name,
                    "seed": record.seed,
                    "wall_seconds": outcome.wall_seconds,
                },
            )


def run_matrix(
    jobs: Iterable[MatrixJob],
    driver_config: Optional[DriverConfig] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    max_attempts: int = 2,
    job_timeout: Optional[float] = None,
    retry_backoff: float = 0.25,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> MatrixOutcome:
    """One-call convenience wrapper around :class:`MatrixRunner`."""
    runner = MatrixRunner(
        driver_config=driver_config,
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        max_attempts=max_attempts,
        job_timeout=job_timeout,
        retry_backoff=retry_backoff,
        checkpoint=checkpoint,
        resume=resume,
    )
    return runner.run(list(jobs))
