"""The shared process-worker layer.

Every multi-process execution stack in the benchmark — the matrix
runner's job pool (:class:`~repro.core.runner.MatrixRunner`), the
sharded streaming executor
(:class:`~repro.core.sharded.ShardedStreamingExecutor`), and the
multi-tenant service (:class:`~repro.core.tenancy.BenchmarkServer`) —
needs the same hardening: one process per attempt with a one-shot pipe
home, ``connection.wait`` multiplexing, wall-clock kill deadlines,
an exponential-backoff retry budget shared by raises, crashes, and
timeouts, and per-job :class:`~repro.observability.Tracer` threading.

:class:`WorkerPool` is that machinery, factored out once. Callers
submit :class:`WorkerTask` s (a picklable ``fn`` plus positional args)
and receive :class:`WorkerOutcome` s aligned with the task list; two
optional hooks — ``on_attempt`` (fired before every execution) and
``on_outcome`` (fired at final resolution) — let callers keep their own
bookkeeping (manifest records, checkpoints, fail-fast raises) without
duplicating any transport, retry, or kill logic.

Failure taxonomy (identical across callers, pinned by the runner's
hardening suite):

* an exception inside ``fn`` travels back structured as
  ``"<Type>: <message>\\n<last-3-frame traceback tail>"``;
* a hard crash (segfault, OOM-kill, ``os._exit``) surfaces as EOF on
  the pipe and becomes ``"worker crashed (exit code N)"``;
* a task still running at its deadline is killed and becomes
  ``"TimeoutError: job exceeded the <T>s wall-clock budget (killed)"``.

All three consume attempts from the same ``max_attempts`` budget with
``retry_backoff * 2**(attempt-1)`` seconds between tries.

When ``workers == 1`` and no timeout is set there is nothing to
isolate, so the pool runs tasks inline (in-process) with identical
attempt/backoff/error semantics — the mode the in-process benchmark
service relies on to keep non-picklable SUT factories working.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.observability import Tracer

__all__ = [
    "WorkerOutcome",
    "WorkerPool",
    "WorkerTask",
    "kill_process",
    "mp_context",
]


def mp_context():
    """The multiprocessing context shared by every process pool here.

    Prefers ``fork`` so factories defined in scripts stay picklable;
    falls back to the platform default where fork is unavailable.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def kill_process(proc: Any) -> None:
    """Terminate a worker process, escalating to SIGKILL if it lingers."""
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():
        proc.kill()
        proc.join()


def format_task_error(exc: BaseException) -> str:
    """The pool's structured error string for an in-task exception.

    ``"<Type>: <message>"`` plus the last three frames of the traceback
    — enough to locate the raise without shipping the whole stack
    through the pipe.
    """
    tail = "".join(traceback.format_tb(exc.__traceback__)[-3:]).rstrip()
    head = f"{type(exc).__name__}: {exc}"
    return f"{head}\n{tail}" if tail else head


@dataclass
class WorkerTask:
    """One unit of work for the pool.

    Attributes:
        fn: The callable to execute. With ``fork`` available it may be
            any callable; on spawn-only platforms it must be picklable
            (a module-level function, class, or ``functools.partial``).
        args: Positional arguments passed to ``fn``.
        label: Optional display/grouping label (callers' bookkeeping).
        traced: When true, the pool builds a fresh
            :class:`~repro.observability.Tracer` per attempt and calls
            ``fn(*args, tracer=tracer)``; the finished trace's
            ``to_dict()`` payload lands on the outcome.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    label: str = ""
    traced: bool = False


@dataclass
class WorkerOutcome:
    """Final resolution of one task (success or exhausted budget).

    Attributes:
        index: Position of the task in the submitted list.
        payload: ``fn``'s return value (``None`` on failure). Travels
            through a pipe in process mode, so it must be picklable.
        error: ``None`` on success; otherwise the last attempt's error
            string (see the module docstring for the taxonomy).
        attempts: Executions consumed (1 for a clean first run).
        wall_seconds: Wall time of the resolving attempt (the timeout
            value for a killed attempt, 0.0 for a hard crash).
        worker: Pid of the resolving process (the parent's own pid in
            inline mode).
        trace: Serialized :class:`~repro.observability.Trace` for
            successful traced tasks; ``None`` otherwise.
    """

    index: int
    payload: Any = None
    error: Optional[str] = None
    attempts: int = 1
    wall_seconds: float = 0.0
    worker: int = 0
    trace: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Whether the task produced a payload."""
        return self.error is None


def _attempt(task: WorkerTask) -> Tuple[Any, Optional[str], float, Optional[dict]]:
    """Execute one attempt of ``task``; never raise.

    Returns ``(payload, error, wall_seconds, trace_dict)`` — the same
    quadruple the process shim pipes home, so inline and process modes
    share one failure taxonomy.
    """
    start = time.perf_counter()
    try:
        if task.traced:
            tracer = Tracer()
            payload = task.fn(*task.args, tracer=tracer)
            trace = tracer.finish().to_dict()
        else:
            payload = task.fn(*task.args)
            trace = None
        return payload, None, time.perf_counter() - start, trace
    except Exception as exc:  # structured failure: the pool survives
        wall = time.perf_counter() - start
        return None, format_task_error(exc), wall, None


def _worker_main(conn, task: WorkerTask) -> None:
    """Child-process entry point: run one attempt, ship the result home.

    The parent detects a hard crash (segfault, OOM-kill, timeout kill)
    as EOF on the pipe — the child only closes it after a successful
    ``send``, so a readable-but-empty pipe always means the attempt
    never finished.
    """
    outcome = _attempt(task)
    try:
        conn.send((*outcome, os.getpid()))
    finally:
        conn.close()


@dataclass
class _TaskState:
    """Parent-side scheduling state for one submitted task."""

    attempts: int = 0
    ready_at: float = 0.0
    outcome: Optional[WorkerOutcome] = None


class WorkerPool:
    """Executes tasks across processes with retries, deadlines, and kills.

    Args:
        workers: Concurrent process slots. ``1`` with no ``timeout``
            runs tasks inline (in-process) — same semantics, nothing to
            isolate.
        max_attempts: Executions per task before it resolves as failed.
            Crashes, timeouts, and in-task exceptions all consume
            attempts.
        timeout: Per-attempt wall-clock budget in seconds; an attempt
            still running at the deadline is killed. ``None`` disables
            deadlines. Enforcing a timeout requires process isolation,
            so ``workers=1`` with a timeout still forks.
        retry_backoff: Base of the exponential backoff between attempts
            (``retry_backoff * 2**(attempt-1)`` seconds).
    """

    def __init__(
        self,
        workers: int = 1,
        max_attempts: int = 2,
        timeout: Optional[float] = None,
        retry_backoff: float = 0.25,
    ) -> None:
        """Validate and store the pool knobs (see class docstring)."""
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.workers = int(workers)
        self.max_attempts = int(max_attempts)
        self.timeout = timeout
        self.retry_backoff = float(retry_backoff)

    def run(
        self,
        tasks: Sequence[WorkerTask],
        on_attempt: Optional[Callable[[int, int], None]] = None,
        on_outcome: Optional[Callable[[WorkerOutcome], None]] = None,
    ) -> List[WorkerOutcome]:
        """Execute every task; return outcomes aligned with the input.

        Args:
            tasks: The work list; outcomes come back in the same order
                regardless of completion order.
            on_attempt: ``(index, attempt)`` hook fired immediately
                before each execution (first attempt is 1). Callers use
                it for attempt bookkeeping and retry-time cleanup.
            on_outcome: Hook fired once per task at final resolution
                (success or exhausted budget), in completion order. An
                exception raised here aborts the pool: running workers
                are killed and the exception propagates — the fail-fast
                hook for callers that treat one failure as fatal.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 and self.timeout is None:
            return self._run_inline(tasks, on_attempt, on_outcome)
        return self._run_processes(tasks, on_attempt, on_outcome)

    # -- inline mode -----------------------------------------------------------------

    def _run_inline(
        self,
        tasks: List[WorkerTask],
        on_attempt: Optional[Callable[[int, int], None]],
        on_outcome: Optional[Callable[[WorkerOutcome], None]],
    ) -> List[WorkerOutcome]:
        """In-process execution with identical attempt/backoff semantics."""
        outcomes: List[WorkerOutcome] = []
        pid = os.getpid()
        for index, task in enumerate(tasks):
            for attempt in range(1, self.max_attempts + 1):
                if on_attempt is not None:
                    on_attempt(index, attempt)
                payload, error, wall, trace = _attempt(task)
                if error is None or attempt >= self.max_attempts:
                    outcome = WorkerOutcome(
                        index=index,
                        payload=payload,
                        error=error,
                        attempts=attempt,
                        wall_seconds=wall,
                        worker=pid,
                        trace=trace,
                    )
                    break
                if self.retry_backoff > 0:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes

    # -- process mode ----------------------------------------------------------------

    def _run_processes(
        self,
        tasks: List[WorkerTask],
        on_attempt: Optional[Callable[[int, int], None]],
        on_outcome: Optional[Callable[[WorkerOutcome], None]],
    ) -> List[WorkerOutcome]:
        """Fan tasks across worker processes; survive bad tasks.

        Each attempt runs in its own process with a one-shot pipe back
        to the parent; ``connection.wait`` multiplexes completions, so
        the scheduler notices a finished attempt immediately and a
        *hard* crash as EOF on its pipe. Crashes, timeouts, and
        structured in-task errors all feed the same retry budget.
        """
        context = mp_context()
        states = [_TaskState() for _ in tasks]
        queue: Deque[int] = deque(range(len(tasks)))
        # conn -> (task index, process, kill deadline or None)
        running: Dict[Any, Tuple[int, Any, Optional[float]]] = {}
        outcomes: List[Optional[WorkerOutcome]] = [None] * len(tasks)
        try:
            while queue or running:
                while len(running) < self.workers:
                    index = self._next_ready(queue, states)
                    if index is None:
                        break
                    states[index].attempts += 1
                    if on_attempt is not None:
                        on_attempt(index, states[index].attempts)
                    parent_end, child_end = context.Pipe(duplex=False)
                    proc = context.Process(
                        target=_worker_main, args=(child_end, tasks[index])
                    )
                    proc.start()
                    child_end.close()  # child owns the write end now
                    deadline = (
                        time.monotonic() + self.timeout
                        if self.timeout is not None
                        else None
                    )
                    running[parent_end] = (index, proc, deadline)

                if not running:
                    # Everything left is backing off; sleep to the
                    # earliest retry gate.
                    gate = min(states[i].ready_at for i in queue)
                    delay = gate - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    continue

                readable = connection.wait(
                    list(running), timeout=self._wait_timeout(running, queue, states)
                )
                for conn in readable:
                    index, proc, _deadline = running.pop(conn)
                    try:
                        message = conn.recv()
                    except EOFError:
                        # The child only closes the pipe after a
                        # successful send, so EOF == hard crash.
                        message = None
                    conn.close()
                    proc.join()
                    if message is None:
                        self._resolve_failure(
                            index,
                            f"worker crashed (exit code {proc.exitcode})",
                            0.0,
                            proc.pid or 0,
                            states, queue, outcomes, on_outcome,
                        )
                        continue
                    payload, error, wall, trace, pid = message
                    if error is not None:
                        self._resolve_failure(
                            index, error, wall, pid, states, queue,
                            outcomes, on_outcome,
                        )
                    else:
                        outcome = WorkerOutcome(
                            index=index,
                            payload=payload,
                            attempts=states[index].attempts,
                            wall_seconds=wall,
                            worker=pid,
                            trace=trace,
                        )
                        outcomes[index] = outcome
                        states[index].outcome = outcome
                        if on_outcome is not None:
                            on_outcome(outcome)
                now = time.monotonic()
                for conn, (index, proc, deadline) in list(running.items()):
                    if deadline is not None and now >= deadline:
                        del running[conn]
                        kill_process(proc)
                        conn.close()
                        self._resolve_failure(
                            index,
                            f"TimeoutError: job exceeded the {self.timeout}s "
                            f"wall-clock budget (killed)",
                            self.timeout or 0.0,
                            proc.pid or 0,
                            states, queue, outcomes, on_outcome,
                        )
        finally:
            # Interrupted (KeyboardInterrupt, fail-fast hook, …): never
            # leak worker processes.
            for conn, (_index, proc, _deadline) in running.items():
                kill_process(proc)
                conn.close()
        return [outcome for outcome in outcomes if outcome is not None]

    def _resolve_failure(
        self,
        index: int,
        error: str,
        wall: float,
        worker: int,
        states: List[_TaskState],
        queue: Deque[int],
        outcomes: List[Optional[WorkerOutcome]],
        on_outcome: Optional[Callable[[WorkerOutcome], None]],
    ) -> None:
        """Re-queue a failed attempt with backoff, or resolve as failed."""
        state = states[index]
        if state.attempts < self.max_attempts:
            state.ready_at = time.monotonic() + (
                self.retry_backoff * (2 ** (state.attempts - 1))
            )
            queue.append(index)
            return
        outcome = WorkerOutcome(
            index=index,
            error=error,
            attempts=state.attempts,
            wall_seconds=wall,
            worker=worker,
        )
        outcomes[index] = outcome
        state.outcome = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    @staticmethod
    def _next_ready(
        queue: Deque[int], states: List[_TaskState]
    ) -> Optional[int]:
        """Pop the first queued task whose backoff gate has opened."""
        now = time.monotonic()
        for _ in range(len(queue)):
            index = queue.popleft()
            if states[index].ready_at <= now:
                return index
            queue.append(index)
        return None

    def _wait_timeout(
        self,
        running: Dict[Any, Tuple[int, Any, Optional[float]]],
        queue: Deque[int],
        states: List[_TaskState],
    ) -> Optional[float]:
        """How long ``connection.wait`` may block.

        Bounded by the earliest kill deadline and — when a worker slot
        is free — the earliest retry gate; ``None`` (block until an
        attempt finishes) when neither applies.
        """
        bounds = [
            deadline
            for (_i, _p, deadline) in running.values()
            if deadline is not None
        ]
        if queue and len(running) < self.workers:
            bounds.extend(states[i].ready_at for i in queue)
        if not bounds:
            return None
        return max(0.0, min(bounds) - time.monotonic())
