"""The discrete-event benchmark driver.

Replaces the paper's separate-machine load generator with a virtual-clock
simulation (substitution documented in DESIGN.md §2): queries arrive
open-loop from the workload's arrival process and are served by a
FIFO queue over ``servers`` parallel slots, with per-query service times
taken from the SUT's (genuinely executed) operations. This yields the
timestamp sequences the Fig 1 metrics need — queueing delay builds when
the SUT is slower than the offered load and drains as it specializes,
which is what produces the characteristic "slow start, catches up"
cumulative curve of Fig 1b.

Training placement:

* The scenario's ``initial_training`` runs *before* query time 0; its
  event is recorded with a negative start so the execution timeline
  stays aligned across SUTs with different training budgets.
* A segment's ``training_before`` phase blocks the server at the
  segment boundary (the paper's "two separate execution phases with
  possible retraining of the models in-between").
* ``on_tick`` retrains requested by the SUT block the server inline —
  the "CPU overheads of retraining a model" that §V-D2 says should
  visibly dent throughput.

Fault injection:

When the scenario carries a :class:`~repro.faults.FaultPlan`, the driver
wraps it in a :class:`~repro.faults.FaultClock`. Window faults perturb
service times keyed on arrival time (identical elementwise kernel in
both paths); point faults (stalls, crashes) are merged with the tick
stream into one per-segment interrupt sequence, so they interleave with
arrivals using the exact same fire-before-arrival semantics as ticks —
which is what keeps the scalar and batched paths bit-identical under
faults. A crash blocks every server for the recovery period, then calls
``sut.on_crash``; a returned cold-retrain budget extends the outage and
is recorded as a training event like any online retrain. With no plan
set the fault machinery reduces to the original tick loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.hardware import CPU, HardwareProfile
from repro.core.phases import (
    TrainingEvent,
    TrainingPhase,
    event_to_telemetry,
    make_event,
)
from repro.core.queueing import fifo_single_server
from repro.core.results import ColumnarRecorder, RunResult
from repro.core.scenario import Scenario
from repro.core.sut import SystemUnderTest
from repro.errors import DriverError
from repro.faults import FaultClock, StallFault
from repro.faults.plan import PointFault
from repro.observability import NULL_TRACER
from repro.workloads.generators import KV_OPERATIONS, QueryBatch


@dataclass
class DriverConfig:
    """Driver knobs.

    Attributes:
        online_hardware: Profile charged for SUT-initiated online
            retraining (§V-B: "the fraction of system resources to
            dedicate for online training" — here, which resources).
        max_queries: Safety valve on total queries per run.
        jitter_arrivals: Randomize arrival offsets within each second.
        min_service_time: Lower clamp on reported service times.
        servers: Number of parallel service slots. 1 models a single
            worker; higher values model a concurrency level, letting
            scenarios exercise the "fluctuations in query load and
            concurrency" the paper lists. Online retraining blocks
            *every* server (a stop-the-world rebuild).
        use_batching: Serve each segment through the vectorized batch
            pipeline (``execute_batch`` + FIFO kernel + block appends).
            ``False`` runs the retained scalar/heap reference loop;
            both produce bit-identical results at a fixed seed.
        truncate_max_queries: When True, a run that would exceed
            ``max_queries`` is truncated mid-segment instead of raising.
        block_size: Cap on queries per batched execution block. ``None``
            (the default) keeps whole tick-bounded slices; setting it
            chops each slice into fixed-size sub-blocks before
            ``execute_batch``, bounding per-call working-set size for
            the streaming pipeline. Results are bit-identical at any
            block size (the FIFO kernel carries queue state across
            calls and fault perturbation is keyed on arrival times);
            only tracer batch counters differ.
    """

    online_hardware: HardwareProfile = CPU
    max_queries: int = 2_000_000
    jitter_arrivals: bool = True
    min_service_time: float = 1e-9
    servers: int = 1
    use_batching: bool = True
    truncate_max_queries: bool = False
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise DriverError(f"servers must be >= 1, got {self.servers}")
        if self.block_size is not None and self.block_size < 1:
            raise DriverError(
                f"block_size must be >= 1, got {self.block_size}"
            )

    def describe(self) -> dict:
        """JSON-friendly description (part of the runner's cache key).

        ``block_size`` appears only when set, so cache keys and golden
        manifests from default-config runs are unchanged by the
        streaming subsystem (mirroring the scenario's conditional
        ``faults`` key).
        """
        out = {
            "online_hardware": self.online_hardware.name,
            "max_queries": self.max_queries,
            "jitter_arrivals": self.jitter_arrivals,
            "min_service_time": self.min_service_time,
            "servers": self.servers,
            "use_batching": self.use_batching,
            "truncate_max_queries": self.truncate_max_queries,
        }
        if self.block_size is not None:
            out["block_size"] = self.block_size
        return out


class _InterruptStream:
    """Merged tick + point-fault sequence for one segment.

    Tick times are produced by the same repeated float addition the
    original tick loops used (``t += tick_interval`` starting from the
    segment start), so a fault-free stream is bit-identical to the
    pre-faults driver. Point faults (already restricted to the segment's
    ``[start, end)`` window, sorted by time) are interleaved by time;
    when a fault coincides exactly with a tick, the tick fires first —
    the tie-break is fixed so both driver paths agree.
    """

    __slots__ = ("_next_tick", "_interval", "_faults", "_idx")

    def __init__(
        self, seg_start: float, tick_interval: float, faults: List[PointFault]
    ) -> None:
        self._next_tick = seg_start
        self._interval = tick_interval
        self._faults = faults
        self._idx = 0

    def peek(self) -> float:
        """Time of the next interrupt (ticks never run out)."""
        if self._idx < len(self._faults):
            at = self._faults[self._idx].at
            if at < self._next_tick:
                return at
        return self._next_tick

    def pop(self) -> Tuple[float, Optional[PointFault]]:
        """Consume the next interrupt: ``(time, fault-or-None-for-tick)``."""
        if self._idx < len(self._faults):
            fault = self._faults[self._idx]
            if fault.at < self._next_tick:
                self._idx += 1
                return fault.at, fault
        t = self._next_tick
        self._next_tick += self._interval
        return t, None


class VirtualClockDriver:
    """Runs a scenario against a SUT on a virtual clock.

    Args:
        config: Driver knobs.
        tracer: Observability sink (:class:`~repro.observability.Tracer`)
            receiving per-segment/per-batch serve spans, train/adapt
            spans carrying the run's training events, and driver
            counters. Defaults to the no-op
            :data:`~repro.observability.NULL_TRACER`, which keeps the
            batched hot path allocation-free; tracing never changes the
            produced :class:`RunResult`.
    """

    def __init__(
        self, config: Optional[DriverConfig] = None, tracer=None
    ) -> None:
        """Bind the driver to ``config`` and an optional tracer."""
        self.config = config or DriverConfig()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._fault_clock: Optional[FaultClock] = None

    def run(self, sut: SystemUnderTest, scenario: Scenario) -> RunResult:
        """Execute ``scenario`` against ``sut`` and return the record."""
        recorder = ColumnarRecorder()
        training_events, _ = self._execute(sut, scenario, recorder)
        with self.tracer.span("collect-result", phase="report"):
            return RunResult(
                sut_name=sut.name,
                scenario_name=scenario.name,
                columns=recorder.build(),
                segments=scenario.segment_boundaries(),
                training_events=training_events,
                scenario_description=scenario.describe(),
                sut_description=sut.describe(),
            )

    def run_streaming(
        self,
        sut: SystemUnderTest,
        scenario: Scenario,
        accumulators=None,
        sla: Optional[float] = None,
        spill_dir=None,
        spill_format: str = "npz",
    ):
        """Execute ``scenario`` in bounded memory; return the summary.

        Same execution as :meth:`run` — same kernels, same RNG streams,
        same fault and training semantics — but completed blocks fold
        into online metric accumulators instead of accumulating in a
        result buffer, so resident memory is bounded by the largest
        segment's arrival arrays plus O(block) scratch, not the run
        length. Set ``config.block_size`` to bound the execution blocks
        themselves.

        Args:
            accumulators: Metric accumulators to fold (objects with
                ``name`` / ``fold(block)`` / ``finalize(horizon)``);
                default: :func:`repro.metrics.streaming_accumulators`
                for the scenario (with ``sla``, and the scenario's
                fault plan when set).
            sla: SLA threshold handed to the default accumulator set.
            spill_dir: When set, spill raw query columns to sharded
                files in this directory (see
                :class:`~repro.core.streaming.ColumnSpiller`).
            spill_format: ``"npz"`` (default) or ``"parquet"``
                (requires pyarrow).

        Returns:
            :class:`~repro.core.streaming.StreamingRunSummary` with
            every accumulator's finalized payload under ``metrics``.
        """
        from repro.core.streaming import (
            ColumnSpiller,
            StreamingRecorder,
            StreamingRunSummary,
        )

        if accumulators is None:
            from repro.metrics import streaming_accumulators

            accumulators = streaming_accumulators(
                scenario, sla=sla, plan=scenario.fault_plan
            )
        spiller = (
            ColumnSpiller(spill_dir, fmt=spill_format)
            if spill_dir is not None
            else None
        )
        recorder = StreamingRecorder(accumulators=accumulators, spiller=spiller)
        training_events, _ = self._execute(sut, scenario, recorder)
        recorder.flush()
        with self.tracer.span("collect-result", phase="report"):
            boundaries = scenario.segment_boundaries()
            duration = boundaries[-1][2] if boundaries else 0.0
            horizon = max(duration, recorder.max_completion)
            metrics = {
                acc.name: acc.finalize(horizon) for acc in recorder.accumulators
            }
            spill = (
                spiller.finish(recorder.op_vocab, recorder.segment_vocab)
                if spiller is not None
                else None
            )
            return StreamingRunSummary(
                sut_name=sut.name,
                scenario_name=scenario.name,
                segments=boundaries,
                training_events=training_events,
                scenario_description=scenario.describe(),
                sut_description=sut.describe(),
                num_queries=recorder.count,
                max_completion=recorder.max_completion,
                op_counts=recorder.op_counts(),
                segment_counts=recorder.segment_counts(),
                metrics=metrics,
                spill=spill,
            )

    def run_streaming_shard(
        self,
        sut: SystemUnderTest,
        scenario: Scenario,
        shard,
        accumulators,
        spiller=None,
    ) -> dict:
        """Execute one shard of ``scenario``; return its mergeable payload.

        The worker half of sharded streaming (see
        :class:`~repro.core.sharded.ShardedStreamingExecutor`): runs the
        shard's slice through the normal streaming machinery, but
        instead of finalizing, snapshots every accumulator's
        ``state_dict()`` so the parent can merge shard states and
        finalize once.

        Args:
            shard: The :class:`~repro.core.streaming.ShardSpec` naming
                this worker's segment (and optional arrival) range.
            accumulators: Accumulators built from the *full* scenario —
                grids, change points, and segment boundaries must anchor
                identically across shards for states to merge.
            spiller: Optional shard-local
                :class:`~repro.core.streaming.ColumnSpiller`.

        Returns:
            A picklable dict with the shard's counts, vocab-ordered
            ``op_counts`` / ``segment_counts``, training events,
            ``(name, state_dict)`` pairs per accumulator, the shard's
            spill manifest, plus ``first_arrival`` / ``final_busy``
            timestamps for the executor's drain check.
        """
        from repro.core.streaming import StreamingRecorder

        recorder = StreamingRecorder(
            accumulators=list(accumulators), spiller=spiller
        )
        training_events, server_free = self._execute(
            sut, scenario, recorder, shard=shard
        )
        recorder.flush()
        manifest = (
            spiller.finish(recorder.op_vocab, recorder.segment_vocab)
            if spiller is not None
            else None
        )
        return {
            "index": shard.index,
            "sut_name": sut.name,
            "sut_description": sut.describe(),
            "num_queries": recorder.count,
            "max_completion": recorder.max_completion,
            "first_arrival": recorder.first_arrival,
            "final_busy": max(server_free) if server_free else 0.0,
            "op_counts": recorder.op_counts(),
            "segment_counts": recorder.segment_counts(),
            "training_events": training_events,
            "states": [
                (acc.name, acc.state_dict()) for acc in recorder.accumulators
            ],
            "spill": manifest,
        }

    def _replay_segment_state(
        self, sut: SystemUnderTest, segment, seg_start: float
    ) -> None:
        """Apply a pre-shard segment's SUT state changes, queries skipped.

        Shards replay the segments before their range so the SUT enters
        the shard with the same trained model and injected data as the
        unsharded run; the training event is discarded (the owning shard
        records it) and no queries execute. Tick-driven adaptation inside
        skipped segments is *not* replayed — exact for SUTs whose service
        times ignore tick state, a documented approximation otherwise
        (DESIGN.md §10).
        """
        if segment.training_before is not None:
            self._run_training_phase(
                sut, segment.training_before, start_at=seg_start
            )
        if segment.data_injection is not None and segment.data_injection.size:
            sut.inject([(float(k), None) for k in segment.data_injection])

    def _execute(
        self, sut: SystemUnderTest, scenario: Scenario, recorder, shard=None
    ) -> Tuple[List[TrainingEvent], List[float]]:
        """Drive ``scenario`` against ``sut``, appending into ``recorder``.

        The recorder-agnostic core shared by :meth:`run` (columnar,
        retain-everything) and :meth:`run_streaming` (bounded-memory
        folds): any object with the :class:`ColumnarRecorder` append
        interface works. With a :class:`~repro.core.streaming.ShardSpec`
        in ``shard``, only that slice of the scenario executes: earlier
        segments are replayed for SUT state, later ones skipped, and an
        arrival range slices the single executed segment's batch without
        touching the workload RNG stream. Returns the run's training
        events plus the final per-server busy times (sharded runs use
        the latter to verify queue drain at shard boundaries).
        """
        training_events: List[TrainingEvent] = []
        tracer = self.tracer
        sut.attach_tracer(tracer)
        # Per-run fault state; None keeps every fault branch untaken.
        self._fault_clock = (
            FaultClock(scenario.fault_plan) if scenario.fault_plan else None
        )

        # Initial load + offline training happen before query time zero.
        with tracer.span("setup", phase="serve", sut=sut.name,
                         scenario=scenario.name):
            if scenario.initial_keys is not None and scenario.initial_keys.size:
                pairs = [(float(k), i) for i, k in enumerate(scenario.initial_keys)]
                sut.setup(pairs)
            else:
                sut.setup([])
        if scenario.initial_training is not None:
            event = self._run_training_phase(
                sut, scenario.initial_training, start_at=None
            )
            # Every shard trains (SUT state), only shard 0 records the
            # event — the merged timeline must list it exactly once.
            if event is not None and (shard is None or shard.index == 0):
                training_events.append(event)

        # Min-heap of per-server next-free times (k parallel workers).
        server_free: List[float] = [0.0] * self.config.servers
        heapq.heapify(server_free)
        seg_start = 0.0
        total_queries = 0
        # Lazily interned op codes: op_map[batch code] -> recorder code,
        # filled in first-occurrence order so both driver paths build the
        # same operations vocabulary.
        op_map = np.full(len(KV_OPERATIONS), -1, dtype=np.int32)
        for seg_index, segment in enumerate(scenario.segments):
            seg_end = seg_start + segment.duration
            if shard is not None:
                if seg_index >= shard.segment_hi:
                    break
                if seg_index < shard.segment_lo:
                    with tracer.span(
                        f"segment-replay:{segment.label}",
                        phase="serve",
                        index=seg_index,
                    ):
                        self._replay_segment_state(sut, segment, seg_start)
                    seg_start = seg_end
                    continue
            with tracer.span(
                f"segment:{segment.label}", phase="serve", index=seg_index
            ):
                # Between-segment retraining blocks every server.
                if segment.training_before is not None:
                    event = self._run_training_phase(
                        sut,
                        segment.training_before,
                        start_at=max(seg_start, max(server_free)),
                    )
                    if event is not None:
                        training_events.append(event)
                        server_free = [max(f, event.end) for f in server_free]
                        heapq.heapify(server_free)
                if segment.data_injection is not None and segment.data_injection.size:
                    sut.inject([(float(k), None) for k in segment.data_injection])

                workload = segment.spec.build_workload(
                    seed=scenario.seed * 1_000_003 + seg_index
                )
                # Check the projected count *before* materializing arrival
                # arrays: an oversized segment must not allocate first.
                projected = workload.spec.arrivals.projected_count(
                    0.0, segment.duration
                )
                if (
                    total_queries + projected > self.config.max_queries
                    and not self.config.truncate_max_queries
                ):
                    raise DriverError(
                        f"scenario generates > {self.config.max_queries} queries "
                        f"(segment {segment.label!r} alone projects {projected}); "
                        "reduce rates or durations"
                    )
                local = workload.spec.arrivals.arrivals(
                    np.random.default_rng(scenario.seed * 7 + seg_index),
                    0.0,
                    segment.duration,
                    jitter=self.config.jitter_arrivals,
                )
                arrivals = local + seg_start
                if shard is not None and shard.arrival_lo is not None:
                    # Generate the full segment batch so the workload RNG
                    # stream matches the unsharded run bitwise, then
                    # execute only this shard's arrival-index slice (a
                    # zero-copy view).
                    batch = workload.next_batch(arrivals).slice(
                        shard.arrival_lo, shard.arrival_hi
                    )
                    arrivals = batch.arrivals
                else:
                    if (
                        self.config.truncate_max_queries
                        and total_queries + arrivals.size > self.config.max_queries
                    ):
                        arrivals = arrivals[
                            : max(0, self.config.max_queries - total_queries)
                        ]
                    batch = workload.next_batch(arrivals)
                total_queries += arrivals.size
                recorder.reserve(arrivals.size)
                segment_code = recorder.intern_segment(segment.label)
                tracer.counter("driver.segments")
                tracer.counter("driver.queries", arrivals.size)

                if self.config.use_batching:
                    server_free = self._run_segment_batched(
                        sut,
                        scenario,
                        batch,
                        seg_start,
                        seg_end,
                        segment_code,
                        server_free,
                        recorder,
                        op_map,
                        training_events,
                    )
                else:
                    server_free = self._run_segment_scalar(
                        sut,
                        scenario,
                        batch,
                        seg_start,
                        seg_end,
                        segment_code,
                        server_free,
                        recorder,
                        training_events,
                    )
            seg_start = seg_end

        sut.teardown()
        return training_events, server_free

    # -- segment execution -------------------------------------------------------------

    def _run_segment_scalar(
        self,
        sut: SystemUnderTest,
        scenario: Scenario,
        batch: QueryBatch,
        seg_start: float,
        seg_end: float,
        segment_code: int,
        server_free: List[float],
        recorder: ColumnarRecorder,
        training_events: List[TrainingEvent],
    ) -> List[float]:
        """Reference path: one query at a time through the server heap."""
        stream = self._interrupts(seg_start, seg_end, scenario)
        fault_clock = self._fault_clock
        for i in range(len(batch)):
            arrival = float(batch.arrivals[i])
            # Fire any due interrupts (ticks + point faults) before this
            # arrival.
            while stream.peek() <= arrival:
                server_free = self._fire_interrupt(
                    sut, stream, server_free, training_events
                )
            query = batch.query(i)
            free = heapq.heappop(server_free)
            start = max(arrival, free)
            service = max(
                self.config.min_service_time, float(sut.execute(query, arrival))
            )
            if fault_clock is not None:
                service = max(
                    self.config.min_service_time,
                    fault_clock.perturb(service, arrival),
                )
            completion = start + service
            heapq.heappush(server_free, completion)
            recorder.append(
                arrival,
                start,
                completion,
                recorder.intern_op(query.op.value),
                segment_code,
            )
        # Remaining interrupts to the end of the segment.
        while stream.peek() < seg_end:
            server_free = self._fire_interrupt(
                sut, stream, server_free, training_events
            )
        return server_free

    def _run_segment_batched(
        self,
        sut: SystemUnderTest,
        scenario: Scenario,
        batch: QueryBatch,
        seg_start: float,
        seg_end: float,
        segment_code: int,
        server_free: List[float],
        recorder: ColumnarRecorder,
        op_map: np.ndarray,
        training_events: List[TrainingEvent],
    ) -> List[float]:
        """Batched path: tick-bounded slices through ``execute_batch``.

        The scalar loop fires every interrupt (tick or point fault) with
        ``time <= arrival`` before each arrival; slicing the arrival
        array at each interrupt with ``searchsorted(..., side="left")``
        reproduces that interleaving exactly — queries strictly before
        the interrupt run first, then it fires, and trailing interrupts
        fill out to the segment end.
        """
        arrivals = batch.arrivals
        n = len(batch)
        stream = self._interrupts(seg_start, seg_end, scenario)
        idx = 0
        while stream.peek() < seg_end:
            end = idx + int(
                np.searchsorted(arrivals[idx:], stream.peek(), side="left")
            )
            if end > idx:
                server_free = self._process_batch_slice(
                    sut, batch, idx, end, segment_code, server_free,
                    recorder, op_map,
                )
                idx = end
            server_free = self._fire_interrupt(
                sut, stream, server_free, training_events
            )
        if idx < n:
            server_free = self._process_batch_slice(
                sut, batch, idx, n, segment_code, server_free, recorder, op_map
            )
        return server_free

    def _process_batch_slice(
        self,
        sut: SystemUnderTest,
        batch: QueryBatch,
        a: int,
        b: int,
        segment_code: int,
        server_free: List[float],
        recorder: ColumnarRecorder,
        op_map: np.ndarray,
    ) -> List[float]:
        """Execute one tick-free slice in ``block_size``-bounded blocks.

        Sub-slicing is exact: the FIFO kernel threads its free-time
        state through consecutive calls and every per-query computation
        (service execution, fault perturbation, op interning) depends
        only on that query's own inputs, so any block boundary yields
        the same timestamps.
        """
        block = self.config.block_size
        if block is None or b - a <= block:
            return self._process_block(
                sut, batch, a, b, segment_code, server_free, recorder, op_map
            )
        for lo in range(a, b, block):
            server_free = self._process_block(
                sut,
                batch,
                lo,
                min(lo + block, b),
                segment_code,
                server_free,
                recorder,
                op_map,
            )
        return server_free

    def _process_block(
        self,
        sut: SystemUnderTest,
        batch: QueryBatch,
        a: int,
        b: int,
        segment_code: int,
        server_free: List[float],
        recorder: ColumnarRecorder,
        op_map: np.ndarray,
    ) -> List[float]:
        """Execute one contiguous block and append it to the recorder."""
        self.tracer.counter("driver.batches")
        self.tracer.counter("driver.batched_queries", b - a)
        sub = batch.slice(a, b)
        with self.tracer.span("batch", phase="serve", queries=b - a):
            services = np.maximum(
                self.config.min_service_time,
                np.asarray(
                    sut.execute_batch(sub, float(sub.arrivals[0])), dtype=np.float64
                ),
            )
        if self._fault_clock is not None and self._fault_clock.has_window_faults:
            services = np.maximum(
                self.config.min_service_time,
                self._fault_clock.perturb_batch(services, sub.arrivals),
            )
        if self.config.servers == 1:
            starts, completions, new_free = fifo_single_server(
                sub.arrivals, services, server_free[0]
            )
            server_free[0] = new_free
        else:
            m = b - a
            starts = np.empty(m, dtype=np.float64)
            completions = np.empty(m, dtype=np.float64)
            arr = sub.arrivals
            for i in range(m):
                free = heapq.heappop(server_free)
                start = max(float(arr[i]), free)
                completion = start + float(services[i])
                heapq.heappush(server_free, completion)
                starts[i] = start
                completions[i] = completion
        # Intern any new ops in first-occurrence order (matches the
        # scalar path's lazy first-sight vocabulary).
        uniq, first = np.unique(sub.ops, return_index=True)
        for u in uniq[np.argsort(first)]:
            if op_map[u] < 0:
                op_map[u] = recorder.intern_op(KV_OPERATIONS[int(u)].value)
        recorder.append_block(
            sub.arrivals, starts, completions, op_map[sub.ops], segment_code
        )
        return server_free

    # -- helpers ---------------------------------------------------------------------

    def _interrupts(
        self, seg_start: float, seg_end: float, scenario: Scenario
    ) -> _InterruptStream:
        """Build the segment's merged tick + point-fault stream."""
        faults: List[PointFault] = []
        if self._fault_clock is not None:
            faults = self._fault_clock.point_faults_in(seg_start, seg_end)
        return _InterruptStream(seg_start, scenario.tick_interval, faults)

    def _fire_interrupt(
        self,
        sut: SystemUnderTest,
        stream: _InterruptStream,
        server_free: List[float],
        training_events: List[TrainingEvent],
    ) -> List[float]:
        """Consume and apply the stream's next interrupt."""
        now, fault = stream.pop()
        if fault is None:
            server_free, event = self._tick(sut, now, server_free)
            if event is not None:
                training_events.append(event)
            return server_free
        return self._fire_fault(sut, fault, server_free, training_events)

    def _fire_fault(
        self,
        sut: SystemUnderTest,
        fault: PointFault,
        server_free: List[float],
        training_events: List[TrainingEvent],
    ) -> List[float]:
        """Apply one point fault to the server pool.

        Both stalls and crashes block *new* service on every server
        until the outage ends; queries already in flight complete as
        scheduled (the pause stops work from starting, not finishing).
        A crash additionally fires ``sut.on_crash``; if the SUT reports
        a cold retrain, it runs once the process is back up and the
        busiest server has drained, extending the outage and landing in
        ``training_events`` so the cost metrics price it.
        """
        self.tracer.counter("driver.faults")
        if isinstance(fault, StallFault):
            self.tracer.counter("driver.fault_stalls")
            span = self.tracer.start_span(
                "fault:stall", phase="fault", at=fault.at, duration=fault.duration
            )
            self.tracer.end_span()
            resume = fault.at + fault.duration
            blocked = [max(f, resume) for f in server_free]
            heapq.heapify(blocked)
            return blocked
        self.tracer.counter("driver.fault_crashes")
        span = self.tracer.start_span(
            "fault:crash",
            phase="fault",
            at=fault.at,
            recovery_seconds=fault.recovery_seconds,
        )
        try:
            nominal = sut.on_crash(fault.at)
        finally:
            self.tracer.end_span()
        resume = fault.at + fault.recovery_seconds
        blocked = [max(f, resume) for f in server_free]
        if nominal and nominal > 0:
            event = make_event(
                start=max(blocked),
                nominal_seconds=float(nominal),
                hardware=self.config.online_hardware,
                online=True,
                label="crash-retrain",
            )
            training_events.append(event)
            if span is not None:
                span.attrs["training_event"] = event_to_telemetry(event)
            blocked = [max(f, event.end) for f in blocked]
        heapq.heapify(blocked)
        return blocked

    def _run_training_phase(
        self,
        sut: SystemUnderTest,
        phase: TrainingPhase,
        start_at: Optional[float],
    ) -> Optional[TrainingEvent]:
        """Run a blocking offline phase; returns its event (or None).

        The phase runs inside a train-phase span so its *wall* time is
        measured; when training actually happened, the resulting
        :class:`TrainingEvent` (virtual-time accounting) is attached to
        that span as a ``training_event`` attribute, which is what
        :func:`repro.metrics.cost.phases_from_trace` reads back.
        """
        span = self.tracer.start_span("offline-train", phase="train")
        try:
            used = float(sut.offline_train(phase.budget_seconds))
        finally:
            self.tracer.end_span()
        if used <= 0:
            return None
        if used > phase.budget_seconds + 1e-9:
            raise DriverError(
                f"SUT {sut.name!r} used {used}s of a {phase.budget_seconds}s budget"
            )
        wall = phase.hardware.wall_time(used)
        start = -wall if start_at is None else start_at
        event = make_event(
            start=start,
            nominal_seconds=used,
            hardware=phase.hardware,
            online=False,
            label="offline",
        )
        self.tracer.counter("driver.offline_trainings")
        if span is not None:
            span.attrs["training_event"] = event_to_telemetry(event)
        return event

    def _tick(
        self, sut: SystemUnderTest, now: float, server_free: List[float]
    ) -> Tuple[List[float], Optional[TrainingEvent]]:
        """Fire one tick; apply any requested online retraining.

        An online retrain is stop-the-world: it starts once the busiest
        server drains and blocks every server until it finishes.
        """
        self.tracer.counter("driver.ticks")
        nominal = sut.on_tick(now)
        if not nominal or nominal <= 0:
            return server_free, None
        start = max(now, max(server_free))
        event = make_event(
            start=start,
            nominal_seconds=float(nominal),
            hardware=self.config.online_hardware,
            online=True,
            label="online-retrain",
        )
        # Marker span carrying the measured event; the SUT's own adapt
        # span (inside on_tick) holds the wall time of the rebuild.
        span = self.tracer.start_span("online-retrain", phase="adapt")
        self.tracer.end_span()
        if span is not None:
            span.attrs["training_event"] = event_to_telemetry(event)
        self.tracer.counter("driver.online_retrains")
        blocked = [max(f, event.end) for f in server_free]
        heapq.heapify(blocked)
        return blocked, event
