"""Training phases and events.

Lesson 3 of the paper: "Training must be a first-class result." The
driver represents every unit of training work — the upfront offline
phase, between-segment retrains, and online retraining triggered by the
SUT itself — as a :class:`TrainingEvent` carried in the run result, so
the cost metrics (Fig 1d) can price it and the adaptability metrics
(Fig 1b/1c) can see its interference with query processing.

The fault subsystem reuses the same currency: when a
:class:`~repro.faults.CrashFault` fires, the SUT's ``on_crash`` hook
may report a cold-cache rebuild, which the driver records as an online
``"crash-retrain"`` :class:`TrainingEvent` — so losing a model to a
crash costs exactly what training it costs everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hardware import CPU, HardwareProfile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrainingPhase:
    """A budgeted offline training opportunity.

    Attributes:
        budget_seconds: Nominal CPU-seconds of training the SUT may use.
            The SUT may use less; it may not use more.
        hardware: Hardware profile executing the phase (affects wall time
            and cost, not the nominal budget).
        blocking: Whether queries wait for the phase (True for an upfront
            phase; False would model training on a replica).
    """

    budget_seconds: float
    hardware: HardwareProfile = CPU
    blocking: bool = True

    def __post_init__(self) -> None:
        if self.budget_seconds < 0:
            raise ConfigurationError("budget_seconds must be >= 0")


@dataclass(frozen=True)
class TrainingEvent:
    """One completed unit of training work during a run.

    Attributes:
        start: Virtual start time.
        duration: Virtual wall-clock duration (already scaled by the
            hardware profile's speed).
        nominal_seconds: Nominal CPU-seconds of work performed.
        hardware_name: Profile that executed it.
        cost: Dollar cost.
        online: True when triggered during execution (online retrain),
            False for scheduled offline phases.
        label: Free-form description (e.g. "offline", "drift-retrain").
    """

    start: float
    duration: float
    nominal_seconds: float
    hardware_name: str
    cost: float
    online: bool
    label: str = ""

    @property
    def end(self) -> float:
        """Virtual end time."""
        return self.start + self.duration


def make_event(
    start: float,
    nominal_seconds: float,
    hardware: HardwareProfile,
    online: bool,
    label: str = "",
) -> TrainingEvent:
    """Build a :class:`TrainingEvent` from nominal work on a profile."""
    wall = hardware.wall_time(nominal_seconds)
    return TrainingEvent(
        start=start,
        duration=wall,
        nominal_seconds=nominal_seconds,
        hardware_name=hardware.name,
        cost=hardware.cost(wall),
        online=online,
        label=label,
    )


def event_to_telemetry(event: TrainingEvent) -> dict:
    """JSON-friendly payload the driver attaches to training spans.

    The driver tags every train/adapt span with this under the
    ``training_event`` attribute, so a run's cost breakdown can be
    recomputed from its *trace* alone
    (:func:`repro.metrics.cost.phases_from_trace`). Field-for-field the
    same shape as :meth:`~repro.core.results.RunResult.to_dict`'s
    ``training_events`` rows — one wire format, two carriers.
    """
    return {
        "start": event.start,
        "duration": event.duration,
        "nominal_seconds": event.nominal_seconds,
        "hardware_name": event.hardware_name,
        "cost": event.cost,
        "online": event.online,
        "label": event.label,
    }


def event_from_telemetry(data: dict) -> TrainingEvent:
    """Inverse of :func:`event_to_telemetry` (exact field round-trip)."""
    return TrainingEvent(
        start=data["start"],
        duration=data["duration"],
        nominal_seconds=data["nominal_seconds"],
        hardware_name=data["hardware_name"],
        cost=data["cost"],
        online=data["online"],
        label=data.get("label", ""),
    )
