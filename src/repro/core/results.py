"""Run results: the raw material every metric is computed from.

A :class:`RunResult` is the complete record of one benchmark run: every
query's arrival/start/completion timestamps, segment boundaries, and all
training events. The Fig 1 metrics are pure functions of this record, so
results can be persisted as JSON and re-analyzed without re-running.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.phases import TrainingEvent
from repro.errors import ReproError


@dataclass(frozen=True)
class QueryRecord:
    """One completed query.

    Attributes:
        arrival: Virtual arrival time.
        start: Virtual time service began (>= arrival; queueing delay is
            ``start - arrival``).
        completion: Virtual completion time.
        op: Operation name (e.g. "read").
        segment: Label of the scenario segment the query belongs to.
    """

    arrival: float
    start: float
    completion: float
    op: str
    segment: str

    @property
    def latency(self) -> float:
        """End-to-end latency (completion - arrival)."""
        return self.completion - self.arrival

    @property
    def service_time(self) -> float:
        """Pure service time (completion - start)."""
        return self.completion - self.start


@dataclass
class RunResult:
    """Everything recorded during one benchmark run.

    Attributes:
        sut_name: Name of the system under test.
        scenario_name: Name of the scenario executed.
        queries: All completed queries, in completion order.
        segments: ``(label, start, end)`` boundaries in query time.
        training_events: All training work performed.
        scenario_description: The scenario's ``describe()`` payload.
        sut_description: The SUT's ``describe()`` payload.
    """

    sut_name: str
    scenario_name: str
    queries: List[QueryRecord]
    segments: List[Tuple[str, float, float]]
    training_events: List[TrainingEvent] = field(default_factory=list)
    scenario_description: dict = field(default_factory=dict)
    sut_description: dict = field(default_factory=dict)

    # -- basic views --------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Query-time horizon of the run (end of the last segment)."""
        return self.segments[-1][2] if self.segments else 0.0

    def completions(self) -> np.ndarray:
        """Completion timestamps, ascending."""
        return np.asarray(sorted(q.completion for q in self.queries))

    def latencies(self) -> np.ndarray:
        """Latencies in completion order."""
        ordered = sorted(self.queries, key=lambda q: q.completion)
        return np.asarray([q.latency for q in ordered])

    def queries_in_segment(self, label: str) -> List[QueryRecord]:
        """Queries whose *arrival* fell inside the named segment."""
        bounds = [(s, e) for name, s, e in self.segments if name == label]
        if not bounds:
            raise ReproError(f"unknown segment {label!r}")
        out = []
        for lo, hi in bounds:
            out.extend(q for q in self.queries if lo <= q.arrival < hi)
        return out

    def throughput_series(self, interval: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bucket start times, completed queries per interval)."""
        if interval <= 0:
            raise ReproError("interval must be > 0")
        horizon = max(self.duration, max((q.completion for q in self.queries), default=0.0))
        edges = np.arange(0.0, horizon + interval, interval)
        counts, _ = np.histogram(self.completions(), bins=edges)
        return edges[:-1], counts.astype(np.float64)

    def mean_throughput(self) -> float:
        """Completed queries per second over the run horizon."""
        horizon = max(
            self.duration, max((q.completion for q in self.queries), default=0.0)
        )
        if horizon <= 0:
            return 0.0
        return len(self.queries) / horizon

    def total_training_cost(self) -> float:
        """Dollar cost of all training events."""
        return sum(e.cost for e in self.training_events)

    def total_training_nominal_seconds(self) -> float:
        """Nominal CPU-seconds of training across all events."""
        return sum(e.nominal_seconds for e in self.training_events)

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict of the full result.

        This is the canonical wire format: the matrix runner ships results
        across process boundaries and stores them in its on-disk cache as
        exactly this payload (see :mod:`repro.serialization`).
        """
        return {
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "segments": [list(s) for s in self.segments],
            "scenario_description": self.scenario_description,
            "sut_description": self.sut_description,
            "training_events": [
                {
                    "start": e.start,
                    "duration": e.duration,
                    "nominal_seconds": e.nominal_seconds,
                    "hardware_name": e.hardware_name,
                    "cost": e.cost,
                    "online": e.online,
                    "label": e.label,
                }
                for e in self.training_events
            ],
            "queries": [
                [q.arrival, q.start, q.completion, q.op, q.segment]
                for q in self.queries
            ],
        }

    def to_json(self) -> str:
        """Serialize the full result to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Reconstruct a result from :meth:`to_dict` output."""
        return cls(
            sut_name=data["sut_name"],
            scenario_name=data["scenario_name"],
            queries=[
                QueryRecord(
                    arrival=q[0], start=q[1], completion=q[2], op=q[3], segment=q[4]
                )
                for q in data["queries"]
            ],
            segments=[tuple(s) for s in data["segments"]],
            training_events=[
                TrainingEvent(
                    start=e["start"],
                    duration=e["duration"],
                    nominal_seconds=e["nominal_seconds"],
                    hardware_name=e["hardware_name"],
                    cost=e["cost"],
                    online=e["online"],
                    label=e.get("label", ""),
                )
                for e in data["training_events"]
            ],
            scenario_description=data.get("scenario_description", {}),
            sut_description=data.get("sut_description", {}),
        )

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        """Reconstruct a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
