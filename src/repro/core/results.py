"""Run results: the raw material every metric is computed from.

A :class:`RunResult` is the complete record of one benchmark run: every
query's arrival/start/completion timestamps, segment boundaries, and all
training events. The Fig 1 metrics are pure functions of this record, so
results can be persisted as JSON and re-analyzed without re-running.

Storage is *columnar*: the query log lives in NumPy arrays (one column
per field, see :class:`QueryColumns`), built either directly by the
driver's :class:`ColumnarRecorder` or lazily from a list of
:class:`QueryRecord` objects. Derived views the metric kernels need —
completion-sorted timestamps, latencies, per-query segment codes — are
built once per result and cached, so evaluating the full Fig 1 metric
suite over a multi-million-query run costs one sort, not thousands of
Python loops. ``result.queries`` remains available as a lazily
materialized compatibility view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phases import TrainingEvent
from repro.errors import ReproError


@dataclass(frozen=True)
class QueryRecord:
    """One completed query.

    Attributes:
        arrival: Virtual arrival time.
        start: Virtual time service began (>= arrival; queueing delay is
            ``start - arrival``).
        completion: Virtual completion time.
        op: Operation name (e.g. "read").
        segment: Label of the scenario segment the query belongs to.
    """

    arrival: float
    start: float
    completion: float
    op: str
    segment: str

    @property
    def latency(self) -> float:
        """End-to-end latency (completion - arrival)."""
        return self.completion - self.arrival

    @property
    def service_time(self) -> float:
        """Pure service time (completion - start)."""
        return self.completion - self.start


def _intern(labels: Sequence[str]) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """(codes, vocab) encoding of a string sequence (vocab sorted)."""
    if not len(labels):
        return np.zeros(0, dtype=np.int32), ()
    vocab, codes = np.unique(np.asarray(labels, dtype=object), return_inverse=True)
    return codes.astype(np.int32), tuple(str(v) for v in vocab)


@dataclass(eq=False)
class QueryColumns:
    """Columnar query log, in driver append (arrival) order.

    Attributes:
        arrivals / starts / completions: float64 timestamp columns.
        op_codes: int32 code per query into ``op_vocab``.
        op_vocab: Operation names, indexed by code.
        segment_codes: int32 code per query into ``segment_vocab``.
        segment_vocab: Segment labels, indexed by code.
    """

    arrivals: np.ndarray
    starts: np.ndarray
    completions: np.ndarray
    op_codes: np.ndarray
    op_vocab: Tuple[str, ...]
    segment_codes: np.ndarray
    segment_vocab: Tuple[str, ...]

    @property
    def size(self) -> int:
        """Number of queries."""
        return int(self.arrivals.size)

    @cached_property
    def latencies(self) -> np.ndarray:
        """End-to-end latencies (completion - arrival), record order."""
        return self.completions - self.arrivals

    @cached_property
    def service_times(self) -> np.ndarray:
        """Pure service times (completion - start), record order."""
        return self.completions - self.starts

    def ops(self) -> List[str]:
        """Per-query operation names (decoded)."""
        vocab = self.op_vocab
        return [vocab[i] for i in self.op_codes.tolist()]

    def segment_names(self) -> List[str]:
        """Per-query segment labels (decoded)."""
        vocab = self.segment_vocab
        return [vocab[i] for i in self.segment_codes.tolist()]

    def iter_records(self) -> Iterator[QueryRecord]:
        """Materialize :class:`QueryRecord` objects (compatibility path)."""
        rows = zip(
            self.arrivals.tolist(),
            self.starts.tolist(),
            self.completions.tolist(),
            self.ops(),
            self.segment_names(),
        )
        for arrival, start, completion, op, segment in rows:
            yield QueryRecord(arrival, start, completion, op, segment)

    @classmethod
    def from_records(cls, queries: Sequence[QueryRecord]) -> "QueryColumns":
        """Build columns from a sequence of :class:`QueryRecord`."""
        n = len(queries)
        op_codes, op_vocab = _intern([q.op for q in queries])
        seg_codes, seg_vocab = _intern([q.segment for q in queries])
        return cls(
            arrivals=np.fromiter((q.arrival for q in queries), np.float64, count=n),
            starts=np.fromiter((q.start for q in queries), np.float64, count=n),
            completions=np.fromiter(
                (q.completion for q in queries), np.float64, count=n
            ),
            op_codes=op_codes,
            op_vocab=op_vocab,
            segment_codes=seg_codes,
            segment_vocab=seg_vocab,
        )

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[Any]]) -> "QueryColumns":
        """Build columns from wire rows ``[arrival, start, completion, op, segment]``."""
        n = len(rows)
        numeric = np.asarray(
            [row[:3] for row in rows], dtype=np.float64
        ).reshape(n, 3)
        op_codes, op_vocab = _intern([row[3] for row in rows])
        seg_codes, seg_vocab = _intern([row[4] for row in rows])
        return cls(
            arrivals=np.ascontiguousarray(numeric[:, 0]),
            starts=np.ascontiguousarray(numeric[:, 1]),
            completions=np.ascontiguousarray(numeric[:, 2]),
            op_codes=op_codes,
            op_vocab=op_vocab,
            segment_codes=seg_codes,
            segment_vocab=seg_vocab,
        )


class ColumnarRecorder:
    """Preallocated append-only column buffers for driver hot loops.

    The driver interns each segment label once per segment and each
    operation name once ever, then appends plain scalars; buffers grow
    geometrically and :meth:`reserve` pre-sizes them when the caller
    already knows how many arrivals a segment will produce.
    """

    def __init__(self, capacity: int = 1024) -> None:
        """Preallocate all five columns at ``capacity`` rows."""
        capacity = max(1, int(capacity))
        self._arrivals = np.empty(capacity, dtype=np.float64)
        self._starts = np.empty(capacity, dtype=np.float64)
        self._completions = np.empty(capacity, dtype=np.float64)
        self._op_codes = np.empty(capacity, dtype=np.int32)
        self._segment_codes = np.empty(capacity, dtype=np.int32)
        self._n = 0
        self._op_index: Dict[str, int] = {}
        self._op_vocab: List[str] = []
        self._segment_index: Dict[str, int] = {}
        self._segment_vocab: List[str] = []
        self.reallocations = 0

    def __len__(self) -> int:
        return self._n

    def intern_op(self, op: str) -> int:
        """Code for an operation name (added on first sight)."""
        code = self._op_index.get(op)
        if code is None:
            code = len(self._op_vocab)
            self._op_index[op] = code
            self._op_vocab.append(op)
        return code

    def intern_segment(self, label: str) -> int:
        """Code for a segment label (added on first sight)."""
        code = self._segment_index.get(label)
        if code is None:
            code = len(self._segment_vocab)
            self._segment_index[label] = code
            self._segment_vocab.append(label)
        return code

    def reserve(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more appends."""
        self._grow(self._n + int(extra))

    def _grow(self, needed: int) -> None:
        capacity = self._arrivals.size
        if needed <= capacity:
            return
        # Geometric doubling keeps appends amortized O(1): n appends cost
        # at most O(log2(n / initial_capacity)) reallocations, which the
        # public ``reallocations`` counter exposes for regression tests.
        new_cap = max(needed, capacity * 2)
        self.reallocations += 1
        for name in (
            "_arrivals",
            "_starts",
            "_completions",
            "_op_codes",
            "_segment_codes",
        ):
            old = getattr(self, name)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def append(
        self,
        arrival: float,
        start: float,
        completion: float,
        op_code: int,
        segment_code: int,
    ) -> None:
        """Record one completed query."""
        i = self._n
        if i >= self._arrivals.size:
            self._grow(i + 1)
        self._arrivals[i] = arrival
        self._starts[i] = start
        self._completions[i] = completion
        self._op_codes[i] = op_code
        self._segment_codes[i] = segment_code
        self._n = i + 1

    def append_block(
        self,
        arrivals: np.ndarray,
        starts: np.ndarray,
        completions: np.ndarray,
        op_codes: np.ndarray,
        segment_code: int,
    ) -> None:
        """Record a whole slice of completed queries at once.

        ``op_codes`` are *recorder* codes (from :meth:`intern_op`);
        ``segment_code`` applies to every query in the block.
        """
        m = int(arrivals.size)
        if m == 0:
            return
        self._grow(self._n + m)
        i = self._n
        self._arrivals[i : i + m] = arrivals
        self._starts[i : i + m] = starts
        self._completions[i : i + m] = completions
        self._op_codes[i : i + m] = op_codes
        self._segment_codes[i : i + m] = segment_code
        self._n = i + m

    def build(self) -> QueryColumns:
        """Trimmed :class:`QueryColumns` of everything appended so far."""
        n = self._n
        return QueryColumns(
            arrivals=self._arrivals[:n].copy(),
            starts=self._starts[:n].copy(),
            completions=self._completions[:n].copy(),
            op_codes=self._op_codes[:n].copy(),
            op_vocab=tuple(self._op_vocab),
            segment_codes=self._segment_codes[:n].copy(),
            segment_vocab=tuple(self._segment_vocab),
        )


class RunResult:
    """Everything recorded during one benchmark run.

    Construct with either ``queries`` (a list of :class:`QueryRecord`,
    the historical API) or ``columns`` (a :class:`QueryColumns`, what the
    driver produces); the other representation is derived lazily and
    cached, as are the sorted views the metric kernels share.

    Attributes:
        sut_name: Name of the system under test.
        scenario_name: Name of the scenario executed.
        segments: ``(label, start, end)`` boundaries in query time.
        training_events: All training work performed.
        scenario_description: The scenario's ``describe()`` payload.
        sut_description: The SUT's ``describe()`` payload.
    """

    def __init__(
        self,
        sut_name: str,
        scenario_name: str,
        queries: Optional[Sequence[QueryRecord]] = None,
        segments: Optional[Sequence[Tuple[str, float, float]]] = None,
        training_events: Optional[Iterable[TrainingEvent]] = None,
        scenario_description: Optional[dict] = None,
        sut_description: Optional[dict] = None,
        columns: Optional[QueryColumns] = None,
    ) -> None:
        """Assemble a result from either ``queries`` or ``columns``."""
        if queries is None and columns is None:
            raise ReproError("RunResult needs either queries or columns")
        if queries is not None and columns is not None:
            raise ReproError("pass either queries or columns, not both")
        self.sut_name = sut_name
        self.scenario_name = scenario_name
        self.segments: List[Tuple[str, float, float]] = list(segments or [])
        self.training_events: List[TrainingEvent] = list(training_events or [])
        self.scenario_description = scenario_description or {}
        self.sut_description = sut_description or {}
        self._queries: Optional[List[QueryRecord]] = (
            list(queries) if queries is not None else None
        )
        self._columns = columns

    # -- representations -----------------------------------------------------------

    @property
    def queries(self) -> List[QueryRecord]:
        """The query log as :class:`QueryRecord` objects (lazy view)."""
        if self._queries is None:
            self._queries = list(self.columns.iter_records())
        return self._queries

    @property
    def columns(self) -> QueryColumns:
        """The columnar query log (lazy, cached)."""
        if self._columns is None:
            self._columns = QueryColumns.from_records(self._queries or [])
        return self._columns

    @property
    def num_queries(self) -> int:
        """Number of completed queries (no representation conversion)."""
        if self._columns is not None:
            return self._columns.size
        return len(self._queries or [])

    # -- basic views ---------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Query-time horizon of the run (end of the last segment)."""
        return self.segments[-1][2] if self.segments else 0.0

    @cached_property
    def completion_order(self) -> np.ndarray:
        """Permutation sorting the columns by completion time (stable)."""
        return np.argsort(self.columns.completions, kind="stable")

    @cached_property
    def completions_sorted(self) -> np.ndarray:
        """Completion timestamps, ascending (cached)."""
        return self.columns.completions[self.completion_order]

    @cached_property
    def latencies_sorted(self) -> np.ndarray:
        """Latencies in completion order (cached)."""
        return self.columns.latencies[self.completion_order]

    @cached_property
    def max_completion(self) -> float:
        """Largest completion timestamp (0.0 for an empty run)."""
        if self.completions_sorted.size == 0:
            return 0.0
        return float(self.completions_sorted[-1])

    @property
    def horizon(self) -> float:
        """Analysis horizon: max of segment end and last completion."""
        return max(self.duration, self.max_completion)

    def completions(self) -> np.ndarray:
        """Completion timestamps, ascending."""
        return self.completions_sorted

    def latencies(self) -> np.ndarray:
        """Latencies in completion order."""
        return self.latencies_sorted

    def queries_in_segment(self, label: str) -> List[QueryRecord]:
        """Queries whose *arrival* fell inside the named segment."""
        bounds = [(s, e) for name, s, e in self.segments if name == label]
        if not bounds:
            raise ReproError(f"unknown segment {label!r}")
        queries = self.queries
        arrivals = self.columns.arrivals
        out: List[QueryRecord] = []
        for lo, hi in bounds:
            idx = np.nonzero((arrivals >= lo) & (arrivals < hi))[0]
            out.extend(queries[int(i)] for i in idx)
        return out

    def throughput_series(self, interval: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bucket start times, completed queries per interval)."""
        from repro.metrics._buckets import time_edges

        if interval <= 0:
            raise ReproError("interval must be > 0")
        edges = time_edges(self.horizon, interval)
        counts, _ = np.histogram(self.completions_sorted, bins=edges)
        return edges[:-1], counts.astype(np.float64)

    def mean_throughput(self) -> float:
        """Completed queries per second over the run horizon."""
        horizon = self.horizon
        if horizon <= 0:
            return 0.0
        return self.num_queries / horizon

    def total_training_cost(self) -> float:
        """Dollar cost of all training events."""
        return sum(e.cost for e in self.training_events)

    def total_training_nominal_seconds(self) -> float:
        """Nominal CPU-seconds of training across all events."""
        return sum(e.nominal_seconds for e in self.training_events)

    # -- persistence ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict of the full result.

        This is the canonical wire format: the matrix runner ships results
        across process boundaries and stores them in its on-disk cache as
        exactly this payload (see :mod:`repro.serialization`).
        """
        cols = self.columns
        query_rows = [
            [arrival, start, completion, op, segment]
            for arrival, start, completion, op, segment in zip(
                cols.arrivals.tolist(),
                cols.starts.tolist(),
                cols.completions.tolist(),
                cols.ops(),
                cols.segment_names(),
            )
        ]
        return {
            "sut_name": self.sut_name,
            "scenario_name": self.scenario_name,
            "segments": [list(s) for s in self.segments],
            "scenario_description": self.scenario_description,
            "sut_description": self.sut_description,
            "training_events": [
                {
                    "start": e.start,
                    "duration": e.duration,
                    "nominal_seconds": e.nominal_seconds,
                    "hardware_name": e.hardware_name,
                    "cost": e.cost,
                    "online": e.online,
                    "label": e.label,
                }
                for e in self.training_events
            ],
            "queries": query_rows,
        }

    def to_json(self) -> str:
        """Serialize the full result to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Reconstruct a result from :meth:`to_dict` output."""
        return cls(
            sut_name=data["sut_name"],
            scenario_name=data["scenario_name"],
            columns=QueryColumns.from_rows(data["queries"]),
            segments=[tuple(s) for s in data["segments"]],
            training_events=[
                TrainingEvent(
                    start=e["start"],
                    duration=e["duration"],
                    nominal_seconds=e["nominal_seconds"],
                    hardware_name=e["hardware_name"],
                    cost=e["cost"],
                    online=e["online"],
                    label=e.get("label", ""),
                )
                for e in data["training_events"]
            ],
            scenario_description=data.get("scenario_description", {}),
            sut_description=data.get("sut_description", {}),
        )

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        """Reconstruct a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
