"""Sealed hold-out scenarios (§V-A of the paper).

"We propose to include hold-out workload and data distributions that the
system is only allowed to execute once. In doing so, the benchmark could
measure out-of-sample performance."

:class:`HoldoutRegistry` enforces that contract in-process: scenarios are
registered sealed (only their fingerprint is exposed), and each SUT name
may run each hold-out exactly once. Inspecting a sealed scenario's
contents or re-running it raises
:class:`~repro.errors.HoldoutViolationError`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.scenario import Scenario
from repro.errors import HoldoutViolationError, ScenarioError


class HoldoutRegistry:
    """Holds sealed scenarios; enforces single-shot evaluation."""

    def __init__(self) -> None:
        """Start with no sealed scenarios and no consumed pairs."""
        self._scenarios: Dict[str, Scenario] = {}
        self._consumed: Set[Tuple[str, str]] = set()

    def register(self, scenario: Scenario) -> str:
        """Seal ``scenario``; returns its fingerprint.

        Raises:
            ScenarioError: If a different scenario already uses the name.
        """
        existing = self._scenarios.get(scenario.name)
        if existing is not None and existing.fingerprint() != scenario.fingerprint():
            raise ScenarioError(
                f"hold-out name {scenario.name!r} already registered "
                "with different contents"
            )
        self._scenarios[scenario.name] = scenario
        return scenario.fingerprint()

    def names(self) -> List[str]:
        """Names of the sealed scenarios (contents stay hidden)."""
        return sorted(self._scenarios.keys())

    def fingerprint(self, name: str) -> str:
        """Fingerprint of a sealed scenario (safe to publish)."""
        self._require(name)
        return self._scenarios[name].fingerprint()

    def checkout(self, name: str, sut_name: str) -> Scenario:
        """Hand the sealed scenario over for a single evaluation run.

        Raises:
            HoldoutViolationError: If ``sut_name`` already evaluated it.
        """
        self._require(name)
        key = (name, sut_name)
        if key in self._consumed:
            raise HoldoutViolationError(
                f"SUT {sut_name!r} already executed hold-out {name!r}; "
                "hold-outs may run exactly once per system"
            )
        self._consumed.add(key)
        return self._scenarios[name]

    def release(self, name: str, sut_name: str) -> None:
        """Refund a checkout that never produced a result.

        The service layer calls this when an evaluation fails before the
        SUT observed the scenario (worker crash, mid-submission abort):
        the single-shot budget only burns on runs that could have leaked
        information, so an unconsumed checkout is returned to the vault.
        """
        self._consumed.discard((name, sut_name))

    def has_run(self, name: str, sut_name: str) -> bool:
        """Whether ``sut_name`` already consumed hold-out ``name``."""
        return (name, sut_name) in self._consumed

    def _require(self, name: str) -> None:
        if name not in self._scenarios:
            raise ScenarioError(
                f"unknown hold-out {name!r}; registered: {self.names()}"
            )
