"""The benchmark facade.

:class:`Benchmark` bundles a driver configuration and provides the two
entry points users need: run one SUT through a scenario, or run several
SUTs through the same scenario for comparison. All heavy lifting lives
in :class:`~repro.core.driver.VirtualClockDriver`; this layer exists so
examples and benchmark harnesses read like the paper's workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.hardware import CPU, HardwareProfile
from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.core.sut import SystemUnderTest


@dataclass
class BenchmarkConfig:
    """User-facing benchmark configuration.

    Attributes:
        online_hardware: Hardware profile charged for online retraining.
        jitter_arrivals: Randomize sub-second arrival offsets.
        max_queries: Per-run query-count safety valve.
        servers: Parallel service slots (concurrency level).
        block_size: Cap on queries per batched execution block (see
            :class:`~repro.core.driver.DriverConfig`); ``None`` keeps
            whole tick-bounded slices.
    """

    online_hardware: HardwareProfile = CPU
    jitter_arrivals: bool = True
    max_queries: int = 2_000_000
    servers: int = 1
    block_size: Optional[int] = None

    def driver_config(self) -> DriverConfig:
        """Translate to the driver's configuration object."""
        return DriverConfig(
            online_hardware=self.online_hardware,
            jitter_arrivals=self.jitter_arrivals,
            max_queries=self.max_queries,
            servers=self.servers,
            block_size=self.block_size,
        )


class Benchmark:
    """Runs scenarios against systems under test.

    Args:
        config: Benchmark knobs (defaults throughout).
        tracer: Optional :class:`~repro.observability.Tracer` shared by
            every run this facade executes; ``None`` keeps the no-op
            default (zero overhead).
    """

    def __init__(
        self, config: Optional[BenchmarkConfig] = None, tracer=None
    ) -> None:
        """Build the facade and its underlying driver."""
        self.config = config or BenchmarkConfig()
        self._driver = VirtualClockDriver(self.config.driver_config(), tracer=tracer)

    def run(self, sut: SystemUnderTest, scenario: Scenario) -> RunResult:
        """Run one SUT through ``scenario``."""
        return self._driver.run(sut, scenario)

    def run_streaming(
        self,
        sut: SystemUnderTest,
        scenario: Scenario,
        accumulators=None,
        sla: Optional[float] = None,
        spill_dir=None,
        spill_format: str = "npz",
    ):
        """Run one SUT through ``scenario`` in bounded memory.

        Passthrough to
        :meth:`~repro.core.driver.VirtualClockDriver.run_streaming`;
        returns a :class:`~repro.core.streaming.StreamingRunSummary`.
        """
        return self._driver.run_streaming(
            sut,
            scenario,
            accumulators=accumulators,
            sla=sla,
            spill_dir=spill_dir,
            spill_format=spill_format,
        )

    def run_sharded_streaming(
        self,
        sut_factory: Callable[[], SystemUnderTest],
        scenario: Scenario,
        shards: int = 2,
        accumulator_factory=None,
        sla: Optional[float] = None,
        spill_dir=None,
        spill_format: str = "npz",
        max_attempts: int = 2,
        shard_timeout: Optional[float] = None,
    ):
        """Run one SUT through ``scenario`` across shard processes.

        Takes a factory rather than an instance — each shard process
        builds its own SUT from it, so the factory must be picklable.
        Returns the merged
        :class:`~repro.core.streaming.StreamingRunSummary` (see
        :class:`~repro.core.sharded.ShardedStreamingExecutor` for the
        equivalence contract and hardening knobs).
        """
        from repro.core.sharded import ShardedStreamingExecutor

        executor = ShardedStreamingExecutor(
            config=self.config.driver_config(),
            n_shards=shards,
            max_attempts=max_attempts,
            shard_timeout=shard_timeout,
        )
        return executor.run(
            sut_factory,
            scenario,
            accumulator_factory=accumulator_factory,
            sla=sla,
            spill_dir=spill_dir,
            spill_format=spill_format,
        )

    def serve(
        self,
        tenants,
        workers: Optional[int] = None,
        admission=None,
        registry=None,
        sla: Optional[float] = None,
        spill_dir=None,
        max_attempts: int = 2,
        tenant_timeout: Optional[float] = None,
    ):
        """Run a multi-tenant serving window over this configuration.

        Builds a :class:`~repro.core.tenancy.BenchmarkServer` sharing
        this facade's config and serves the given
        :class:`~repro.core.tenancy.TenantSpec` list; returns the
        :class:`~repro.core.tenancy.ServiceReport` ledger. See the
        tenancy module for admission control, fair-share scheduling,
        and hold-out vault semantics.
        """
        from repro.core.tenancy import BenchmarkServer

        server = BenchmarkServer(
            config=self.config,
            workers=workers,
            admission=admission,
            registry=registry,
            max_attempts=max_attempts,
            tenant_timeout=tenant_timeout,
        )
        return server.serve(tenants, sla=sla, spill_dir=spill_dir)

    def compare(
        self,
        sut_factories: Sequence[Callable[[], SystemUnderTest]],
        scenario: Scenario,
    ) -> Dict[str, RunResult]:
        """Run several SUTs through the same scenario.

        Takes factories rather than instances so every SUT starts from a
        clean state; returns results keyed by SUT name.
        """
        out: Dict[str, RunResult] = {}
        for factory in sut_factories:
            sut = factory()
            out[sut.name] = self.run(sut, scenario)
        return out
