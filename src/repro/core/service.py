"""Benchmark-as-a-service (in-process).

§V-A: "A possible approach is to deploy the benchmark as a cloud
service and evaluate systems on behalf of users. The use of this
benchmark-as-a-service could be a requirement for inclusion in official
benchmark results."

:class:`BenchmarkService` is that service minus the network: users submit
a SUT factory; the service runs all sealed hold-outs it owns on the
user's behalf and returns only aggregate results (never the scenarios
themselves). Combined with :class:`~repro.core.holdout.HoldoutRegistry`'s
single-shot rule, a SUT cannot iterate against the hold-out — the
anti-overfitting mechanism the paper asks for.

Since the tenancy refactor, each hold-out evaluation is one tenant
session on :class:`~repro.core.tenancy.BenchmarkServer` (inline worker
mode, so non-picklable SUT factories keep working): the run streams in
bounded memory, spills its per-query columns, and the service rebuilds
the full :class:`~repro.core.results.RunResult` from the spill for the
operator API. Batch submission and the live ``repro serve`` mode are
therefore the same code path.

Failure accounting: a hold-out run that fails (SUT raise, worker crash)
no longer burns the single-shot budget silently — the checkout is
refunded via :meth:`~repro.core.holdout.HoldoutRegistry.release` and the
returned :class:`HoldoutReport` carries the error, so the submitter can
fix the SUT and resubmit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.benchmark import BenchmarkConfig
from repro.core.holdout import HoldoutRegistry
from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.core.streaming import load_spilled_columns
from repro.core.sut import SystemUnderTest
from repro.core.tenancy import BenchmarkServer, TenantSpec
from repro.errors import HoldoutViolationError, ReproError


@dataclass(frozen=True)
class HoldoutReport:
    """What the service reveals about one hold-out evaluation.

    Attributes:
        holdout_name: Name of the sealed scenario.
        fingerprint: The scenario's content hash (verifiable, not
            invertible).
        mean_throughput: Queries/second over the run.
        p99_latency: 99th-percentile query latency.
        total_training_cost: Dollars of training the SUT performed.
        query_count: Completed queries.
        error: ``None`` for a successful evaluation; otherwise the
            failure detail — the run's hold-out checkout was refunded,
            so resubmitting after a fix is allowed.
    """

    holdout_name: str
    fingerprint: str
    mean_throughput: float
    p99_latency: float
    total_training_cost: float
    query_count: int
    error: Optional[str] = None


class BenchmarkService:
    """Evaluates SUTs on sealed hold-outs, one shot per system."""

    def __init__(
        self,
        registry: Optional[HoldoutRegistry] = None,
        config: Optional[BenchmarkConfig] = None,
    ) -> None:
        """Wire the service to a registry and benchmark config."""
        self.registry = registry or HoldoutRegistry()
        self.config = config or BenchmarkConfig()
        self._server = BenchmarkServer(
            config=self.config, workers=1, registry=self.registry
        )
        self._raw_results: Dict[tuple, RunResult] = {}

    def publish_holdout(self, scenario: Scenario) -> str:
        """Operator API: seal a scenario into the service."""
        return self.registry.register(scenario)

    def submit(
        self, sut_factory: Callable[[], SystemUnderTest]
    ) -> List[HoldoutReport]:
        """User API: evaluate a system on every sealed hold-out.

        A fresh SUT instance is built per hold-out. Each hold-out runs
        at most once per SUT name — a second submission with the same
        name raises :class:`~repro.errors.HoldoutViolationError` before
        consuming *any* budget (checkouts made earlier in the same call
        are rolled back). A hold-out whose run fails is refunded and
        reported with its error instead of a result, so one bad run
        cannot silently burn the remaining single-shot budget.
        """
        sut_name = sut_factory().name
        checked = self._checkout_all(sut_name)
        tenants = [
            TenantSpec(name=name, sut_factory=sut_factory, scenario=scenario)
            for name, scenario in checked
        ]
        reports: List[HoldoutReport] = []
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            service_report = self._server.serve(tenants, spill_dir=tmp)
            for (name, scenario), tenant in zip(
                checked, service_report.tenants
            ):
                if not tenant.ok:
                    # Refund: the SUT never produced a result, so the
                    # single-shot budget survives for a fixed resubmit.
                    self.registry.release(name, sut_name)
                    reports.append(
                        HoldoutReport(
                            holdout_name=name,
                            fingerprint=self.registry.fingerprint(name),
                            mean_throughput=0.0,
                            p99_latency=0.0,
                            total_training_cost=0.0,
                            query_count=0,
                            error=tenant.error or tenant.status,
                        )
                    )
                    continue
                summary = tenant.summary
                result = RunResult(
                    sut_name=sut_name,
                    scenario_name=scenario.name,
                    columns=load_spilled_columns(Path(tmp) / name),
                    segments=summary.segments,
                    training_events=summary.training_events,
                    scenario_description=summary.scenario_description,
                    sut_description=summary.sut_description,
                )
                self._raw_results[(name, sut_name)] = result
                reports.append(self._summarize(name, result))
        return reports

    def _checkout_all(self, sut_name: str) -> List[Tuple[str, Scenario]]:
        """Check out every hold-out up front, atomically.

        A violation part-way through rolls back the checkouts this call
        already made and re-raises — a doomed submission must not leave
        some hold-outs consumed and others not.
        """
        checked: List[Tuple[str, Scenario]] = []
        try:
            for name in self.registry.names():
                checked.append((name, self.registry.checkout(name, sut_name)))
        except HoldoutViolationError:
            for name, _scenario in checked:
                self.registry.release(name, sut_name)
            raise
        return checked

    def _summarize(self, holdout_name: str, result: RunResult) -> HoldoutReport:
        """Distill a raw run into the aggregate the submitter may see."""
        latencies = result.latencies()
        p99 = float(np.percentile(latencies, 99)) if latencies.size else 0.0
        return HoldoutReport(
            holdout_name=holdout_name,
            fingerprint=self.registry.fingerprint(holdout_name),
            mean_throughput=result.mean_throughput(),
            p99_latency=p99,
            total_training_cost=result.total_training_cost(),
            query_count=result.num_queries,
        )

    def raw_result(self, holdout_name: str, sut_name: str) -> RunResult:
        """Operator API: full run record (not exposed to submitters)."""
        key = (holdout_name, sut_name)
        if key not in self._raw_results:
            stored = sorted(self._raw_results.keys())
            raise ReproError(
                f"no stored result for hold-out {holdout_name!r} and SUT "
                f"{sut_name!r}; stored results: {stored}; registered "
                f"hold-outs: {self.registry.names()}"
            )
        return self._raw_results[key]
