"""Benchmark-as-a-service (in-process).

§V-A: "A possible approach is to deploy the benchmark as a cloud
service and evaluate systems on behalf of users. The use of this
benchmark-as-a-service could be a requirement for inclusion in official
benchmark results."

:class:`BenchmarkService` is that service minus the network: users submit
a SUT factory; the service runs all sealed hold-outs it owns on the
user's behalf and returns only aggregate results (never the scenarios
themselves). Combined with :class:`~repro.core.holdout.HoldoutRegistry`'s
single-shot rule, a SUT cannot iterate against the hold-out — the
anti-overfitting mechanism the paper asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.holdout import HoldoutRegistry
from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.core.sut import SystemUnderTest


@dataclass(frozen=True)
class HoldoutReport:
    """What the service reveals about one hold-out evaluation.

    Attributes:
        holdout_name: Name of the sealed scenario.
        fingerprint: The scenario's content hash (verifiable, not
            invertible).
        mean_throughput: Queries/second over the run.
        p99_latency: 99th-percentile query latency.
        total_training_cost: Dollars of training the SUT performed.
        query_count: Completed queries.
    """

    holdout_name: str
    fingerprint: str
    mean_throughput: float
    p99_latency: float
    total_training_cost: float
    query_count: int


class BenchmarkService:
    """Evaluates SUTs on sealed hold-outs, one shot per system."""

    def __init__(
        self,
        registry: Optional[HoldoutRegistry] = None,
        config: Optional[BenchmarkConfig] = None,
    ) -> None:
        """Wire the service to a registry and benchmark config."""
        self.registry = registry or HoldoutRegistry()
        self._benchmark = Benchmark(config)
        self._raw_results: Dict[tuple, RunResult] = {}

    def publish_holdout(self, scenario: Scenario) -> str:
        """Operator API: seal a scenario into the service."""
        return self.registry.register(scenario)

    def submit(
        self, sut_factory: Callable[[], SystemUnderTest]
    ) -> List[HoldoutReport]:
        """User API: evaluate a system on every sealed hold-out.

        A fresh SUT instance is built per hold-out. Each hold-out runs at
        most once per SUT name — a second submission with the same name
        raises on the already-consumed hold-outs.
        """
        reports: List[HoldoutReport] = []
        for name in self.registry.names():
            sut = sut_factory()
            scenario = self.registry.checkout(name, sut.name)
            result = self._benchmark.run(sut, scenario)
            self._raw_results[(name, sut.name)] = result
            reports.append(self._summarize(name, result))
        return reports

    def _summarize(self, holdout_name: str, result: RunResult) -> HoldoutReport:
        import numpy as np

        latencies = result.latencies()
        p99 = float(np.percentile(latencies, 99)) if latencies.size else 0.0
        return HoldoutReport(
            holdout_name=holdout_name,
            fingerprint=self.registry.fingerprint(holdout_name),
            mean_throughput=result.mean_throughput(),
            p99_latency=p99,
            total_training_cost=result.total_training_cost(),
            query_count=result.num_queries,
        )

    def raw_result(self, holdout_name: str, sut_name: str) -> RunResult:
        """Operator API: full run record (not exposed to submitters)."""
        key = (holdout_name, sut_name)
        if key not in self._raw_results:
            from repro.errors import ReproError

            raise ReproError(f"no stored result for {key}")
        return self._raw_results[key]
