"""The system-under-test interface.

§IV of the paper requires the benchmark to work "without imposing
architectural, configuration, or runtime constraints" and to remain
"agnostic to the differences across systems". :class:`SystemUnderTest`
is therefore a thin lifecycle contract:

* ``setup(pairs)`` — load the initial database.
* ``offline_train(budget)`` — optional upfront/between-segment training;
  the SUT reports how much of the nominal budget it actually used.
* ``execute(query, now)`` — perform one query and return its service
  time in virtual seconds.
* ``on_tick(now)`` — periodic hook (≈1 virtual second); the SUT may
  request an *online* retrain by returning nominal training seconds,
  which the driver charges as blocking server time.

Concrete SUTs live in :mod:`repro.suts`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.observability import NULL_TRACER
from repro.workloads.generators import KVQuery, QueryBatch


@dataclass
class TrainingSummary:
    """Cumulative training accounting a SUT maintains about itself.

    Attributes:
        nominal_seconds: Total nominal CPU-seconds of training consumed.
        sessions: Number of distinct training sessions (offline + online).
    """

    nominal_seconds: float = 0.0
    sessions: int = 0

    def add(self, nominal_seconds: float) -> None:
        """Record one training session."""
        self.nominal_seconds += max(0.0, nominal_seconds)
        self.sessions += 1


class SystemUnderTest(ABC):
    """Lifecycle contract between the benchmark driver and a system."""

    def __init__(self, name: str) -> None:
        """Register the system under ``name`` with fresh bookkeeping."""
        self._name = name
        self.training = TrainingSummary()
        self.tracer = NULL_TRACER

    @property
    def name(self) -> str:
        """Identifier used in results and hold-out bookkeeping."""
        return self._name

    def attach_tracer(self, tracer) -> None:
        """Adopt the driver's tracer for the duration of a run.

        The driver calls this at run start; the default stores the
        tracer on ``self.tracer`` (a :data:`~repro.observability.NULL_TRACER`
        until then, so SUT code can always emit spans/counters without
        checking). Subclasses holding learned components override this
        to propagate the tracer into them.
        """
        self.tracer = tracer

    # -- lifecycle ----------------------------------------------------------------

    @abstractmethod
    def setup(self, pairs: List[Tuple[float, object]]) -> None:
        """Load the initial database contents."""

    @abstractmethod
    def execute(self, query: KVQuery, now: float) -> float:
        """Execute ``query`` at virtual time ``now``; return service time
        in virtual seconds (> 0)."""

    def execute_batch(self, batch: QueryBatch, now: float) -> np.ndarray:
        """Execute a :class:`QueryBatch`; return per-query service times.

        ``now`` is the virtual time of the batch's first arrival; each
        query is executed at its own arrival time. The default loops over
        :meth:`execute`, so SUTs that only implement the scalar interface
        work unchanged; vectorized SUTs override this for speed. Results
        must be identical to the scalar loop.
        """
        return np.asarray(
            [
                self.execute(batch.query(i), float(batch.arrivals[i]))
                for i in range(len(batch))
            ],
            dtype=np.float64,
        )

    def offline_train(self, budget_seconds: float) -> float:
        """Use up to ``budget_seconds`` nominal training; return usage.

        Default: no training (traditional systems). Implementations that
        train must also call ``self.training.add(used)``.
        """
        return 0.0

    def inject(self, pairs: List[Tuple[float, object]]) -> None:
        """Bulk-insert data outside the query stream (segment injection).

        The data appears instantaneously — no virtual time is charged —
        but the SUT's learned models are *not* retrained, which is what
        makes injections an adaptability stressor. Default: ignored.
        """

    def on_tick(self, now: float) -> Optional[float]:
        """Periodic hook; return nominal seconds of online training to
        charge now, or ``None``/0 for no training. Default: none."""
        return None

    def on_crash(self, now: float) -> Optional[float]:
        """Crash/restart hook fired by a :class:`~repro.faults.CrashFault`.

        The process has just restarted at virtual time ``now``: the SUT
        should discard warm state that would not survive a restart
        (caches, access history, drift-detector windows). Durable data
        (the stored key/value pairs) survives. Return nominal seconds of
        cold retraining to charge as blocking server time, or
        ``None``/0 if the SUT restarts without retraining. Default: no
        warm state, no retrain (traditional systems).
        """
        return None

    def teardown(self) -> None:
        """Release resources (default: nothing)."""

    # -- introspection -----------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly description for reports."""
        return {"name": self.name, "class": type(self).__name__}
