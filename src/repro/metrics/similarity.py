"""Similarity estimators for the Φ axis of Fig 1a.

§V-D1: "Similarity across workloads can be estimated, for example,
using the Jaccard similarity between the sets of all subtrees of the
query tree for all queries in the workload. Likewise, similarity across
data distributions can be evaluated using, e.g., the Kolmogorov-Smirnov
test or the Maximum Mean Discrepancy."

Conventions: similarities are in [0, 1] with 1 = identical; Φ values are
*distances* in [0, 1] with 0 = identical, so Fig 1a's x-axis sorts
ascending Φ. The paper notes Φ "need not be precise; it should be
sufficient to sort the results by Φ value".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generators import WorkloadSpec


def jaccard_similarity(a: Union[Set, FrozenSet], b: Union[Set, FrozenSet]) -> float:
    """|a ∩ b| / |a ∪ b| (1.0 for two empty sets)."""
    a, b = set(a), set(b)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def ks_statistic(sample_a: Iterable[float], sample_b: Iterable[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup CDF distance)."""
    a = np.sort(np.asarray(list(sample_a), dtype=np.float64))
    b = np.sort(np.asarray(list(sample_b), dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("KS statistic requires non-empty samples")
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def mmd_rbf(
    sample_a: Iterable[float],
    sample_b: Iterable[float],
    gamma: Optional[float] = None,
    max_points: int = 1000,
    seed: int = 0,
) -> float:
    """Unbiased squared Maximum Mean Discrepancy with an RBF kernel.

    Args:
        sample_a, sample_b: One-dimensional samples.
        gamma: RBF bandwidth parameter; ``None`` uses the median
            heuristic over the pooled sample.
        max_points: Subsample cap per side (MMD is quadratic).
        seed: Subsampling seed.

    Returns:
        The unbiased MMD² estimate, clipped at 0 (the estimator can go
        slightly negative under the null).
    """
    rng = np.random.default_rng(seed)
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ConfigurationError("MMD requires >= 2 points per sample")
    if a.size > max_points:
        a = rng.choice(a, max_points, replace=False)
    if b.size > max_points:
        b = rng.choice(b, max_points, replace=False)
    if gamma is None:
        pooled = np.concatenate([a, b])
        diffs = np.abs(pooled[:, None] - pooled[None, :])
        median = float(np.median(diffs[diffs > 0])) if (diffs > 0).any() else 1.0
        gamma = 1.0 / (2.0 * median**2) if median > 0 else 1.0

    def kernel_sum(x: np.ndarray, y: np.ndarray, exclude_diag: bool) -> float:
        sq = (x[:, None] - y[None, :]) ** 2
        k = np.exp(-gamma * sq)
        if exclude_diag:
            np.fill_diagonal(k, 0.0)
            denom = x.size * (x.size - 1)
        else:
            denom = x.size * y.size
        return float(k.sum() / denom)

    mmd2 = (
        kernel_sum(a, a, exclude_diag=True)
        + kernel_sum(b, b, exclude_diag=True)
        - 2.0 * kernel_sum(a, b, exclude_diag=False)
    )
    return max(0.0, mmd2)


def workload_phi(
    spec_a: WorkloadSpec, spec_b: WorkloadSpec, at_time: float = 0.0
) -> float:
    """Workload distance: 1 - Jaccard over the specs' structural features.

    For plan-shaped workloads, use
    :func:`repro.engine.plans.workload_subtrees` with
    :func:`jaccard_similarity` directly; this helper covers key-value
    workload specs.
    """
    return 1.0 - jaccard_similarity(
        spec_a.signature(at_time), spec_b.signature(at_time)
    )


def data_phi(
    sample_a: Iterable[float],
    sample_b: Iterable[float],
    method: str = "ks",
) -> float:
    """Data-distribution distance in [0, 1].

    Args:
        method: ``"ks"`` (KS statistic, already in [0, 1]) or ``"mmd"``
            (MMD² squashed by ``x / (1 + x)`` to [0, 1)).
    """
    if method == "ks":
        return ks_statistic(sample_a, sample_b)
    if method == "mmd":
        value = mmd_rbf(sample_a, sample_b)
        return value / (1.0 + value)
    raise ConfigurationError(f"unknown method {method!r}; expected 'ks' or 'mmd'")
