"""Similarity estimators for the Φ axis of Fig 1a.

§V-D1: "Similarity across workloads can be estimated, for example,
using the Jaccard similarity between the sets of all subtrees of the
query tree for all queries in the workload. Likewise, similarity across
data distributions can be evaluated using, e.g., the Kolmogorov-Smirnov
test or the Maximum Mean Discrepancy."

Conventions: similarities are in [0, 1] with 1 = identical; Φ values are
*distances* in [0, 1] with 0 = identical, so Fig 1a's x-axis sorts
ascending Φ. The paper notes Φ "need not be precise; it should be
sufficient to sort the results by Φ value".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    KV_OPERATIONS,
    KVWorkload,
    OperationMix,
    QueryBatch,
    WorkloadSpec,
)


def jaccard_similarity(a: Union[Set, FrozenSet], b: Union[Set, FrozenSet]) -> float:
    """|a ∩ b| / |a ∪ b| (1.0 for two empty sets)."""
    a, b = set(a), set(b)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def ks_statistic(sample_a: Iterable[float], sample_b: Iterable[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup CDF distance)."""
    a = np.sort(np.asarray(list(sample_a), dtype=np.float64))
    b = np.sort(np.asarray(list(sample_b), dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("KS statistic requires non-empty samples")
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def mmd_rbf(
    sample_a: Iterable[float],
    sample_b: Iterable[float],
    gamma: Optional[float] = None,
    max_points: int = 1000,
    seed: int = 0,
) -> float:
    """Unbiased squared Maximum Mean Discrepancy with an RBF kernel.

    Args:
        sample_a, sample_b: One-dimensional samples.
        gamma: RBF bandwidth parameter; ``None`` uses the median
            heuristic over the pooled sample.
        max_points: Subsample cap per side (MMD is quadratic).
        seed: Subsampling seed.

    Returns:
        The unbiased MMD² estimate, clipped at 0 (the estimator can go
        slightly negative under the null).
    """
    rng = np.random.default_rng(seed)
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ConfigurationError("MMD requires >= 2 points per sample")
    if a.size > max_points:
        a = rng.choice(a, max_points, replace=False)
    if b.size > max_points:
        b = rng.choice(b, max_points, replace=False)
    if gamma is None:
        pooled = np.concatenate([a, b])
        diffs = np.abs(pooled[:, None] - pooled[None, :])
        median = float(np.median(diffs[diffs > 0])) if (diffs > 0).any() else 1.0
        gamma = 1.0 / (2.0 * median**2) if median > 0 else 1.0

    def kernel_sum(x: np.ndarray, y: np.ndarray, exclude_diag: bool) -> float:
        sq = (x[:, None] - y[None, :]) ** 2
        k = np.exp(-gamma * sq)
        if exclude_diag:
            np.fill_diagonal(k, 0.0)
            denom = x.size * (x.size - 1)
        else:
            denom = x.size * y.size
        return float(k.sum() / denom)

    mmd2 = (
        kernel_sum(a, a, exclude_diag=True)
        + kernel_sum(b, b, exclude_diag=True)
        - 2.0 * kernel_sum(a, b, exclude_diag=False)
    )
    return max(0.0, mmd2)


def workload_phi(
    spec_a: WorkloadSpec, spec_b: WorkloadSpec, at_time: float = 0.0
) -> float:
    """Workload distance: 1 - Jaccard over the specs' structural features.

    For plan-shaped workloads, use
    :func:`repro.engine.plans.workload_subtrees` with
    :func:`jaccard_similarity` directly; this helper covers key-value
    workload specs.
    """
    return 1.0 - jaccard_similarity(
        spec_a.signature(at_time), spec_b.signature(at_time)
    )


def data_phi(
    sample_a: Iterable[float],
    sample_b: Iterable[float],
    method: str = "ks",
) -> float:
    """Data-distribution distance in [0, 1].

    Args:
        method: ``"ks"`` (KS statistic, already in [0, 1]) or ``"mmd"``
            (MMD² squashed by ``x / (1 + x)`` to [0, 1)).
    """
    if method == "ks":
        return ks_statistic(sample_a, sample_b)
    if method == "mmd":
        value = mmd_rbf(sample_a, sample_b)
        return value / (1.0 + value)
    raise ConfigurationError(f"unknown method {method!r}; expected 'ks' or 'mmd'")


# -- drift-axis Φ --------------------------------------------------------------------
#
# The drift-factor axis needs Φ *computed*, not assumed, at two levels:
# analytically from the specs (exact, used by the property tests — the
# blend construction makes it exactly linear in the factor) and from
# realized query streams (what a manifest reports per matrix cell).


def op_mix_distance(mix_a: OperationMix, mix_b: OperationMix) -> float:
    """Total-variation distance between two operation mixes, in [0, 1].

    ``0.5 * sum |p_a(op) - p_b(op)|`` over the full operation vocabulary
    — linear in mixture weight, so blended mixes land exactly on the
    line between their endpoints.
    """
    props_a = mix_a.proportions()
    props_b = mix_b.proportions()
    return 0.5 * sum(
        abs(props_a.get(op, 0.0) - props_b.get(op, 0.0)) for op in KV_OPERATIONS
    )


def expected_spec_phi(
    spec_a: WorkloadSpec,
    spec_b: WorkloadSpec,
    at_time: float = 0.0,
    grid_points: int = 2048,
) -> Dict[str, float]:
    """Analytic Φ between two workload specs at one instant.

    ``phi_data`` is the sup-CDF distance between the two active key
    distributions, evaluated on a fixed ``grid_points``-point grid over
    the union domain (a deterministic KS statistic — no sampling).
    ``phi_workload`` is the total-variation distance between the active
    operation mixes. ``phi`` is their mean. All three are in [0, 1]
    with 0 = identical, matching this module's Φ convention.
    """
    if grid_points < 2:
        raise ConfigurationError(f"grid_points must be >= 2, got {grid_points}")
    dist_a = spec_a.key_drift.at(at_time)
    dist_b = spec_b.key_drift.at(at_time)
    grid = np.linspace(
        min(dist_a.low, dist_b.low), max(dist_a.high, dist_b.high), grid_points
    )
    phi_data = float(np.abs(dist_a.cdf(grid) - dist_b.cdf(grid)).max())
    phi_workload = op_mix_distance(spec_a.mix_at(at_time), spec_b.mix_at(at_time))
    return {
        "phi_data": phi_data,
        "phi_workload": phi_workload,
        "phi": 0.5 * (phi_data + phi_workload),
    }


def realized_stream_phi(
    batch_a: QueryBatch, batch_b: QueryBatch
) -> Dict[str, float]:
    """Computed Φ between two *realized* query streams.

    ``phi_data`` is the two-sample KS statistic over the streams' keys;
    ``phi_workload`` is the total-variation distance between their
    operation-code histograms; ``phi`` is the mean. This is the
    measured counterpart of :func:`expected_spec_phi` — the Redbench
    point that interpolation endpoints must be measurable distributions,
    not labels.
    """
    phi_data = ks_statistic(batch_a.keys, batch_b.keys)
    n_ops = len(KV_OPERATIONS)
    hist_a = np.bincount(batch_a.ops.astype(np.int64), minlength=n_ops)
    hist_b = np.bincount(batch_b.ops.astype(np.int64), minlength=n_ops)
    phi_workload = 0.5 * float(
        np.abs(hist_a / max(len(batch_a), 1) - hist_b / max(len(batch_b), 1)).sum()
    )
    return {
        "phi_data": phi_data,
        "phi_workload": phi_workload,
        "phi": 0.5 * (phi_data + phi_workload),
    }


def realized_spec_phi(
    spec_a: WorkloadSpec,
    spec_b: WorkloadSpec,
    n: int = 4096,
    horizon: float = 1.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Computed Φ between the streams two specs actually generate.

    Each spec is driven through its own fresh
    :class:`~repro.workloads.generators.KVWorkload` at the same ``seed``
    over ``n`` probe arrivals evenly spaced in ``[0, horizon)``, and the
    two realized streams are compared with :func:`realized_stream_phi`.
    Deterministic for fixed ``(seed, n, horizon)`` — goldenable floats.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    times = np.linspace(0.0, float(horizon), n, endpoint=False)
    batch_a = KVWorkload(spec_a, seed=seed).next_batch(times)
    batch_b = KVWorkload(spec_b, seed=seed).next_batch(times)
    return realized_stream_phi(batch_a, batch_b)


def scenario_phi(scenario, n: int = 4096, seed: Optional[int] = None) -> Dict[str, float]:
    """Computed Φ between a scenario's first and last segments.

    The drift-axis manifest metric: how far the stream actually drifted,
    measured from realized probe streams of the two segment specs
    (:func:`realized_spec_phi` at the scenario's seed by default). For
    single-segment scenarios both specs are the same object and Φ is 0.
    """
    base = scenario.segments[0].spec
    last = scenario.segments[-1].spec
    probe_seed = scenario.seed if seed is None else seed
    return realized_spec_phi(base, last, n=n, seed=probe_seed)
