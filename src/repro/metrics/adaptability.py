"""Adaptability metrics — Fig 1b.

§V-D2: "We suggest reporting throughput variations by plotting the
cumulative queries completed over time. ... We can derive a single-value
result from this plot by computing the area difference between an ideal
system with a constant throughput. Similarly, ... the area difference
between the two systems provides a single-value result."

The timeline kernels here are vectorized over the run's columnar query
log and share their bucket grid with every other timeline metric via
:mod:`repro.metrics._buckets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.metrics._buckets import bucket_index, time_edges


def cumulative_curve(
    result: RunResult, resolution: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig 1b curve: (times, cumulative completed queries).

    Sampled on a regular grid of ``resolution`` seconds from 0 to the
    run horizon; the value at t is the number of queries completed by t.
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be > 0")
    completions = result.completions_sorted
    times = time_edges(result.horizon, resolution)
    cum = np.searchsorted(completions, times, side="right").astype(np.float64)
    return times, cum


def area_vs_ideal(
    result: RunResult,
    ideal_rate: Optional[float] = None,
    resolution: float = 1.0,
) -> float:
    """Signed area between the ideal line and the actual curve.

    The ideal system completes queries at a constant rate and ends with
    the same total. Positive area = the actual system lagged the ideal
    (query-seconds of deficit); 0 = perfectly steady throughput. Units:
    query·seconds.

    Args:
        ideal_rate: Ideal constant throughput; default = total queries /
            horizon (so ideal and actual meet at the end — the paper's
            construction).
        resolution: Integration step.
    """
    times, cum = cumulative_curve(result, resolution)
    if times.size == 0 or cum[-1] == 0:
        return 0.0
    horizon = times[-1]
    if ideal_rate is None:
        ideal_rate = cum[-1] / horizon if horizon > 0 else 0.0
    ideal = np.minimum(ideal_rate * times, cum[-1])
    return float(np.trapezoid(ideal - cum, times))


def area_between_systems(
    result_a: RunResult, result_b: RunResult, resolution: float = 1.0
) -> float:
    """Signed area between two systems' cumulative curves (A minus B).

    Positive = A stayed ahead (completed queries earlier) on balance.
    Units: query·seconds.

    Both cumulative curves are step functions, so the area is computed
    *exactly*: the step values are evaluated with ``np.searchsorted`` on
    the shared edge set (every completion time of either system, plus
    the union horizon) and integrated piecewise-constant. Linear
    interpolation between grid samples — the previous implementation —
    biased the metric whenever completions fell between grid points.

    Args:
        resolution: Unused; retained for backward compatibility (the
            exact integration needs no sampling grid).
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be > 0")
    completions_a = result_a.completions_sorted
    completions_b = result_b.completions_sorted
    horizon = max(result_a.horizon, result_b.horizon)
    if horizon <= 0:
        return 0.0
    edges = np.unique(np.concatenate((
        np.asarray([0.0, horizon]),
        completions_a,
        completions_b,
    )))
    edges = edges[(edges >= 0.0) & (edges <= horizon)]
    ahead_a = np.searchsorted(completions_a, edges[:-1], side="right")
    ahead_b = np.searchsorted(completions_b, edges[:-1], side="right")
    widths = np.diff(edges)
    return float(((ahead_a - ahead_b) * widths).sum())


def recovery_time(
    result: RunResult,
    change_time: float,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> Optional[float]:
    """Seconds after ``change_time`` until throughput recovers.

    Pre-change throughput is measured over the ``window`` seconds before
    the change; recovery is the first post-change window whose
    throughput reaches ``recovery_fraction`` of it. Returns ``None`` if
    the run ends first — or if the pre-change window is idle, in which
    case there is no baseline to recover *to* (reporting instant
    recovery there would be vacuous).
    """
    if window <= 0:
        raise ConfigurationError("window must be > 0")
    completions = result.completions_sorted
    if completions.size == 0:
        return None
    lo, hi = np.searchsorted(
        completions, (change_time - window, change_time), side="left"
    )
    before = int(hi - lo)
    if before == 0:
        return None
    target = recovery_fraction * before
    horizon = result.horizon
    n_windows = int(np.floor((horizon - change_time) / window)) + 1
    if n_windows <= 0:
        return None
    starts = change_time + window * np.arange(n_windows)
    counts = np.searchsorted(completions, starts + window, side="left") - (
        np.searchsorted(completions, starts, side="left")
    )
    recovered = counts >= target
    if not recovered.any():
        return None
    return float(starts[int(np.argmax(recovered))] - change_time)


def latency_timeline(
    result: RunResult,
    interval: float = 1.0,
    percentiles: Tuple[float, ...] = (50.0, 99.0),
) -> Tuple[np.ndarray, dict]:
    """Per-interval latency percentiles over the run.

    §IV asks for "throughput and latency during transitions between
    distributions"; this is the latency half: for each ``interval``-second
    bucket (by completion time), the requested percentiles of the
    latencies completed in it (NaN for idle buckets). Bucket boundaries
    come from the shared edge grid; the group-wise percentiles are
    computed in one vectorized pass (matching ``np.percentile``'s linear
    interpolation bucket-for-bucket).

    Returns:
        (bucket start times, {percentile: values array}).
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    cols = result.columns
    edges = time_edges(result.horizon, interval)
    times = edges[:-1]
    out = {p: np.full(times.size, np.nan) for p in percentiles}
    if cols.size == 0 or times.size == 0:
        return times, out
    buckets = bucket_index(cols.completions, edges)
    order = np.lexsort((cols.latencies, buckets))
    sorted_latencies = cols.latencies[order]
    boundaries = np.searchsorted(buckets[order], np.arange(times.size + 1))
    counts = np.diff(boundaries)
    nonempty = counts > 0
    base = np.where(nonempty, boundaries[:-1], 0)
    for p in percentiles:
        # np.percentile's "linear" method: virtual index h = (n-1) * q,
        # gathered with its two-sided lerp for bit-identical results.
        h = np.where(nonempty, counts - 1, 0) * (float(p) / 100.0)
        low = np.floor(h).astype(np.int64)
        high = np.ceil(h).astype(np.int64)
        frac = h - low
        a = sorted_latencies[base + low]
        b = sorted_latencies[base + high]
        diff = b - a
        values = np.where(frac >= 0.5, b - diff * (1.0 - frac), a + diff * frac)
        out[p] = np.where(nonempty, values, np.nan)
    return times, out


@dataclass(frozen=True)
class AdaptabilityReport:
    """Single-value adaptability summary for one run.

    Attributes:
        area_vs_ideal: Query·seconds of lag behind the ideal line.
        recovery_seconds: Throughput recovery time after the (first)
            distribution change, or None if never/not applicable.
        throughput_cv: Coefficient of variation of per-second throughput
            (the stability number averages hide — Lesson 2).
    """

    sut_name: str
    area_vs_ideal: float
    recovery_seconds: Optional[float]
    throughput_cv: float


def adaptability_report(
    result: RunResult,
    change_time: Optional[float] = None,
    resolution: float = 1.0,
) -> AdaptabilityReport:
    """Compute the Fig 1b summary for one run.

    Args:
        change_time: Time of the distribution change for recovery-time
            measurement; default = the first internal segment boundary
            (None if the scenario had a single segment).
    """
    if change_time is None and len(result.segments) > 1:
        change_time = result.segments[0][2]
    recovery = (
        recovery_time(result, change_time) if change_time is not None else None
    )
    _, counts = result.throughput_series(interval=resolution)
    mean = counts.mean() if counts.size else 0.0
    cv = float(counts.std() / mean) if mean > 0 else 0.0
    return AdaptabilityReport(
        sut_name=result.sut_name,
        area_vs_ideal=area_vs_ideal(result, resolution=resolution),
        recovery_seconds=recovery,
        throughput_cv=cv,
    )
