"""Adaptability metrics — Fig 1b.

§V-D2: "We suggest reporting throughput variations by plotting the
cumulative queries completed over time. ... We can derive a single-value
result from this plot by computing the area difference between an ideal
system with a constant throughput. Similarly, ... the area difference
between the two systems provides a single-value result."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError


def cumulative_curve(
    result: RunResult, resolution: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig 1b curve: (times, cumulative completed queries).

    Sampled on a regular grid of ``resolution`` seconds from 0 to the
    run horizon; the value at t is the number of queries completed by t.
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be > 0")
    completions = result.completions()
    horizon = max(result.duration, completions[-1] if completions.size else 0.0)
    times = np.arange(0.0, horizon + resolution, resolution)
    cum = np.searchsorted(completions, times, side="right").astype(np.float64)
    return times, cum


def area_vs_ideal(
    result: RunResult,
    ideal_rate: Optional[float] = None,
    resolution: float = 1.0,
) -> float:
    """Signed area between the ideal line and the actual curve.

    The ideal system completes queries at a constant rate and ends with
    the same total. Positive area = the actual system lagged the ideal
    (query-seconds of deficit); 0 = perfectly steady throughput. Units:
    query·seconds.

    Args:
        ideal_rate: Ideal constant throughput; default = total queries /
            horizon (so ideal and actual meet at the end — the paper's
            construction).
        resolution: Integration step.
    """
    times, cum = cumulative_curve(result, resolution)
    if times.size == 0 or cum[-1] == 0:
        return 0.0
    horizon = times[-1]
    if ideal_rate is None:
        ideal_rate = cum[-1] / horizon if horizon > 0 else 0.0
    ideal = np.minimum(ideal_rate * times, cum[-1])
    return float(np.trapezoid(ideal - cum, times))


def area_between_systems(
    result_a: RunResult, result_b: RunResult, resolution: float = 1.0
) -> float:
    """Signed area between two systems' cumulative curves (A minus B).

    Positive = A stayed ahead (completed queries earlier) on balance.
    Both curves are evaluated on the union horizon. Units: query·seconds.
    """
    times_a, cum_a = cumulative_curve(result_a, resolution)
    times_b, cum_b = cumulative_curve(result_b, resolution)
    horizon = max(times_a[-1] if times_a.size else 0, times_b[-1] if times_b.size else 0)
    times = np.arange(0.0, horizon + resolution, resolution)
    a = np.interp(times, times_a, cum_a, left=0.0, right=cum_a[-1] if cum_a.size else 0.0)
    b = np.interp(times, times_b, cum_b, left=0.0, right=cum_b[-1] if cum_b.size else 0.0)
    return float(np.trapezoid(a - b, times))


def recovery_time(
    result: RunResult,
    change_time: float,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> Optional[float]:
    """Seconds after ``change_time`` until throughput recovers.

    Pre-change throughput is measured over the ``window`` seconds before
    the change; recovery is the first post-change window whose
    throughput reaches ``recovery_fraction`` of it. Returns ``None`` if
    the run ends first.
    """
    if window <= 0:
        raise ConfigurationError("window must be > 0")
    completions = result.completions()
    if completions.size == 0:
        return None
    before = np.count_nonzero(
        (completions >= change_time - window) & (completions < change_time)
    )
    target = recovery_fraction * before
    horizon = max(result.duration, completions[-1])
    t = change_time
    while t + window <= horizon + window:
        count = np.count_nonzero((completions >= t) & (completions < t + window))
        if count >= target:
            return float(t - change_time)
        t += window
    return None


def latency_timeline(
    result: RunResult,
    interval: float = 1.0,
    percentiles: Tuple[float, ...] = (50.0, 99.0),
) -> Tuple[np.ndarray, dict]:
    """Per-interval latency percentiles over the run.

    §IV asks for "throughput and latency during transitions between
    distributions"; this is the latency half: for each ``interval``-second
    bucket (by completion time), the requested percentiles of the
    latencies completed in it (NaN for idle buckets).

    Returns:
        (bucket start times, {percentile: values array}).
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    edges = np.arange(0.0, horizon + interval, interval)
    times = edges[:-1]
    out = {p: np.full(times.size, np.nan) for p in percentiles}
    if completions.size:
        buckets = np.clip(
            (completions / interval).astype(np.int64), 0, times.size - 1
        )
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_latencies = latencies[order]
        boundaries = np.searchsorted(sorted_buckets, np.arange(times.size + 1))
        for i in range(times.size):
            chunk = sorted_latencies[boundaries[i] : boundaries[i + 1]]
            if chunk.size:
                for p in percentiles:
                    out[p][i] = float(np.percentile(chunk, p))
    return times, out


@dataclass(frozen=True)
class AdaptabilityReport:
    """Single-value adaptability summary for one run.

    Attributes:
        area_vs_ideal: Query·seconds of lag behind the ideal line.
        recovery_seconds: Throughput recovery time after the (first)
            distribution change, or None if never/not applicable.
        throughput_cv: Coefficient of variation of per-second throughput
            (the stability number averages hide — Lesson 2).
    """

    sut_name: str
    area_vs_ideal: float
    recovery_seconds: Optional[float]
    throughput_cv: float


def adaptability_report(
    result: RunResult,
    change_time: Optional[float] = None,
    resolution: float = 1.0,
) -> AdaptabilityReport:
    """Compute the Fig 1b summary for one run.

    Args:
        change_time: Time of the distribution change for recovery-time
            measurement; default = the first internal segment boundary
            (None if the scenario had a single segment).
    """
    if change_time is None and len(result.segments) > 1:
        change_time = result.segments[0][2]
    recovery = (
        recovery_time(result, change_time) if change_time is not None else None
    )
    _, counts = result.throughput_series(interval=resolution)
    mean = counts.mean() if counts.size else 0.0
    cv = float(counts.std() / mean) if mean > 0 else 0.0
    return AdaptabilityReport(
        sut_name=result.sut_name,
        area_vs_ideal=area_vs_ideal(result, resolution=resolution),
        recovery_seconds=recovery,
        throughput_cv=cv,
    )
