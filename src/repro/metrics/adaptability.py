"""Adaptability metrics — Fig 1b.

§V-D2: "We suggest reporting throughput variations by plotting the
cumulative queries completed over time. ... We can derive a single-value
result from this plot by computing the area difference between an ideal
system with a constant throughput. Similarly, ... the area difference
between the two systems provides a single-value result."

The timeline kernels here are vectorized over the run's columnar query
log and share their bucket grid with every other timeline metric via
:mod:`repro.metrics._buckets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.metrics._buckets import GridCounts, bucket_index, time_edges


def cumulative_curve(
    result: RunResult, resolution: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig 1b curve: (times, cumulative completed queries).

    Sampled on a regular grid of ``resolution`` seconds from 0 to the
    run horizon; the value at t is the number of queries completed by t.
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be > 0")
    completions = result.completions_sorted
    times = time_edges(result.horizon, resolution)
    cum = np.searchsorted(completions, times, side="right").astype(np.float64)
    return times, cum


def _area_from_curve(
    times: np.ndarray, cum: np.ndarray, ideal_rate: Optional[float] = None
) -> float:
    """Area-vs-ideal from an already-sampled cumulative curve.

    Shared by the offline kernel and the streaming accumulator so both
    paths run the identical float expressions on the identical curve.
    """
    if times.size == 0 or cum[-1] == 0:
        return 0.0
    horizon = times[-1]
    if ideal_rate is None:
        ideal_rate = cum[-1] / horizon if horizon > 0 else 0.0
    ideal = np.minimum(ideal_rate * times, cum[-1])
    return float(np.trapezoid(ideal - cum, times))


def area_vs_ideal(
    result: RunResult,
    ideal_rate: Optional[float] = None,
    resolution: float = 1.0,
) -> float:
    """Signed area between the ideal line and the actual curve.

    The ideal system completes queries at a constant rate and ends with
    the same total. Positive area = the actual system lagged the ideal
    (query-seconds of deficit); 0 = perfectly steady throughput. Units:
    query·seconds.

    Args:
        ideal_rate: Ideal constant throughput; default = total queries /
            horizon (so ideal and actual meet at the end — the paper's
            construction).
        resolution: Integration step.
    """
    times, cum = cumulative_curve(result, resolution)
    return _area_from_curve(times, cum, ideal_rate)


def area_between_systems(
    result_a: RunResult, result_b: RunResult, resolution: float = 1.0
) -> float:
    """Signed area between two systems' cumulative curves (A minus B).

    Positive = A stayed ahead (completed queries earlier) on balance.
    Units: query·seconds.

    Both cumulative curves are step functions, so the area is computed
    *exactly*: the step values are evaluated with ``np.searchsorted`` on
    the shared edge set (every completion time of either system, plus
    the union horizon) and integrated piecewise-constant. Linear
    interpolation between grid samples — the previous implementation —
    biased the metric whenever completions fell between grid points.

    Args:
        resolution: Unused; retained for backward compatibility (the
            exact integration needs no sampling grid).
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be > 0")
    completions_a = result_a.completions_sorted
    completions_b = result_b.completions_sorted
    horizon = max(result_a.horizon, result_b.horizon)
    if horizon <= 0:
        return 0.0
    edges = np.unique(np.concatenate((
        np.asarray([0.0, horizon]),
        completions_a,
        completions_b,
    )))
    edges = edges[(edges >= 0.0) & (edges <= horizon)]
    ahead_a = np.searchsorted(completions_a, edges[:-1], side="right")
    ahead_b = np.searchsorted(completions_b, edges[:-1], side="right")
    widths = np.diff(edges)
    return float(((ahead_a - ahead_b) * widths).sum())


def recovery_time(
    result: RunResult,
    change_time: float,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> Optional[float]:
    """Seconds after ``change_time`` until throughput recovers.

    Pre-change throughput is measured over the ``window`` seconds before
    the change; recovery is the first post-change window whose
    throughput reaches ``recovery_fraction`` of it. Returns ``None`` if
    the run ends first — or if the pre-change window is idle, in which
    case there is no baseline to recover *to* (reporting instant
    recovery there would be vacuous).
    """
    if window <= 0:
        raise ConfigurationError("window must be > 0")
    completions = result.completions_sorted
    if completions.size == 0:
        return None
    lo, hi = np.searchsorted(
        completions, (change_time - window, change_time), side="left"
    )
    before = int(hi - lo)
    if before == 0:
        return None
    target = recovery_fraction * before
    horizon = result.horizon
    n_windows = int(np.floor((horizon - change_time) / window)) + 1
    if n_windows <= 0:
        return None
    starts = change_time + window * np.arange(n_windows)
    counts = np.searchsorted(completions, starts + window, side="left") - (
        np.searchsorted(completions, starts, side="left")
    )
    recovered = counts >= target
    if not recovered.any():
        return None
    return float(starts[int(np.argmax(recovered))] - change_time)


def latency_timeline(
    result: RunResult,
    interval: float = 1.0,
    percentiles: Tuple[float, ...] = (50.0, 99.0),
) -> Tuple[np.ndarray, dict]:
    """Per-interval latency percentiles over the run.

    §IV asks for "throughput and latency during transitions between
    distributions"; this is the latency half: for each ``interval``-second
    bucket (by completion time), the requested percentiles of the
    latencies completed in it (NaN for idle buckets). Bucket boundaries
    come from the shared edge grid; the group-wise percentiles are
    computed in one vectorized pass (matching ``np.percentile``'s linear
    interpolation bucket-for-bucket).

    Returns:
        (bucket start times, {percentile: values array}).
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    cols = result.columns
    edges = time_edges(result.horizon, interval)
    times = edges[:-1]
    out = {p: np.full(times.size, np.nan) for p in percentiles}
    if cols.size == 0 or times.size == 0:
        return times, out
    buckets = bucket_index(cols.completions, edges)
    order = np.lexsort((cols.latencies, buckets))
    sorted_latencies = cols.latencies[order]
    boundaries = np.searchsorted(buckets[order], np.arange(times.size + 1))
    counts = np.diff(boundaries)
    nonempty = counts > 0
    base = np.where(nonempty, boundaries[:-1], 0)
    for p in percentiles:
        # np.percentile's "linear" method: virtual index h = (n-1) * q,
        # gathered with its two-sided lerp for bit-identical results.
        h = np.where(nonempty, counts - 1, 0) * (float(p) / 100.0)
        low = np.floor(h).astype(np.int64)
        high = np.ceil(h).astype(np.int64)
        frac = h - low
        a = sorted_latencies[base + low]
        b = sorted_latencies[base + high]
        diff = b - a
        values = np.where(frac >= 0.5, b - diff * (1.0 - frac), a + diff * frac)
        out[p] = np.where(nonempty, values, np.nan)
    return times, out


@dataclass(frozen=True)
class AdaptabilityReport:
    """Single-value adaptability summary for one run.

    Attributes:
        area_vs_ideal: Query·seconds of lag behind the ideal line.
        recovery_seconds: Throughput recovery time after the (first)
            distribution change, or None if never/not applicable.
        throughput_cv: Coefficient of variation of per-second throughput
            (the stability number averages hide — Lesson 2).
    """

    sut_name: str
    area_vs_ideal: float
    recovery_seconds: Optional[float]
    throughput_cv: float


def adaptability_report(
    result: RunResult,
    change_time: Optional[float] = None,
    resolution: float = 1.0,
) -> AdaptabilityReport:
    """Compute the Fig 1b summary for one run.

    Args:
        change_time: Time of the distribution change for recovery-time
            measurement; default = the first internal segment boundary
            (None if the scenario had a single segment).
    """
    if change_time is None and len(result.segments) > 1:
        change_time = result.segments[0][2]
    recovery = (
        recovery_time(result, change_time) if change_time is not None else None
    )
    _, counts = result.throughput_series(interval=resolution)
    mean = counts.mean() if counts.size else 0.0
    cv = float(counts.std() / mean) if mean > 0 else 0.0
    return AdaptabilityReport(
        sut_name=result.sut_name,
        area_vs_ideal=area_vs_ideal(result, resolution=resolution),
        recovery_seconds=recovery,
        throughput_cv=cv,
    )


def adaptability_vs_drift(
    runs,
    resolution: float = 1.0,
    phi_probe_size: int = 4096,
) -> List[dict]:
    """Adaptability-vs-drift-rate surface rows for a drift-factor sweep.

    Each entry of ``runs`` is a ``(scenario, result)`` pair from one
    point of a :func:`repro.scenarios.drift_axis` sweep. Per point: the
    computed Φ between base and drifted segments
    (:func:`~repro.metrics.similarity.scenario_phi`), the Fig 1b
    summary numbers (:func:`adaptability_report` with the change point
    at the base→drifted boundary), sorted by drift factor ascending —
    the surface no single-scenario benchmark can chart.
    """
    from repro.metrics.similarity import scenario_phi

    rows: List[dict] = []
    for scenario, result in runs:
        if scenario.drift_factor is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} carries no drift_factor; "
                "build sweep points with repro.scenarios.drift_axis"
            )
        phi = scenario_phi(scenario, n=phi_probe_size)
        report = adaptability_report(result, resolution=resolution)
        rows.append(
            {
                "drift_factor": scenario.drift_factor,
                "phi": phi["phi"],
                "phi_data": phi["phi_data"],
                "phi_workload": phi["phi_workload"],
                "area_vs_ideal": report.area_vs_ideal,
                "recovery_seconds": report.recovery_seconds,
                "throughput_cv": report.throughput_cv,
            }
        )
    rows.sort(key=lambda r: r["drift_factor"])
    return rows


# -- streaming accumulators ----------------------------------------------------------
#
# Single-pass versions of the kernels above for the bounded-memory
# pipeline (DESIGN.md §9). Each folds the driver's completed blocks as
# they stream past and, given the final horizon, reproduces the batch
# kernel's output bit for bit — the integer machinery (grid counts,
# window counts) is exactly additive over sorted blocks, and the float
# finishing expressions are shared with the offline code.


class OnlineThroughput:
    """Streaming ``RunResult.throughput_series`` plus mean/CV summary.

    Folds completion timestamps into a :class:`GridCounts`; finalize
    reproduces the per-interval counts (and the coefficient of variation
    :func:`adaptability_report` derives from them) bit-identically.
    """

    name = "throughput"

    def __init__(self, interval: float = 1.0) -> None:
        """Bucket completions into ``interval``-second grid cells."""
        if interval <= 0:
            raise ConfigurationError("interval must be > 0")
        self.interval = float(interval)
        self._grid = GridCounts(self.interval)

    def fold(self, block) -> None:
        """Fold one completed block (uses its sorted completions)."""
        self._grid.fold_sorted(block.completions_sorted)

    def merge(self, other: "OnlineThroughput") -> "OnlineThroughput":
        """Absorb another shard's grid counts (bit-exact)."""
        if other.interval != self.interval:
            raise ConfigurationError(
                "cannot merge OnlineThroughput with different intervals"
            )
        self._grid.merge(other._grid)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {"interval": self.interval, "grid": self._grid.state_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "OnlineThroughput":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls(interval=state["interval"])
        accumulator._grid = GridCounts.from_state(state["grid"])
        return accumulator

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: times, counts, mean q/s, and CV."""
        edges = time_edges(horizon, self.interval)
        counts = self._grid.counts_on(edges).astype(np.float64)
        mean = counts.mean() if counts.size else 0.0
        cv = float(counts.std() / mean) if mean > 0 else 0.0
        mean_throughput = self._grid.count / horizon if horizon > 0 else 0.0
        return {
            "interval": self.interval,
            "times": edges[: max(edges.size - 1, 0)].tolist(),
            "counts": counts.tolist(),
            "mean_throughput": mean_throughput,
            "cv": cv,
        }


class OnlineCumulativeCurve:
    """Streaming Fig 1b: cumulative curve and area-vs-ideal.

    Bit-identical to :func:`cumulative_curve` / :func:`area_vs_ideal`
    on the same run: the per-edge cumulative counts are exact integers
    and the area runs the shared :func:`_area_from_curve` expressions.
    """

    name = "adaptability"

    def __init__(
        self, resolution: float = 1.0, ideal_rate: Optional[float] = None
    ) -> None:
        """Sample the curve every ``resolution`` virtual seconds."""
        if resolution <= 0:
            raise ConfigurationError("resolution must be > 0")
        self.resolution = float(resolution)
        self.ideal_rate = ideal_rate
        self._grid = GridCounts(self.resolution)

    def fold(self, block) -> None:
        """Fold one completed block (uses its sorted completions)."""
        self._grid.fold_sorted(block.completions_sorted)

    def merge(self, other: "OnlineCumulativeCurve") -> "OnlineCumulativeCurve":
        """Absorb another shard's grid counts (bit-exact)."""
        if (
            other.resolution != self.resolution
            or other.ideal_rate != self.ideal_rate
        ):
            raise ConfigurationError(
                "cannot merge OnlineCumulativeCurve with different parameters"
            )
        self._grid.merge(other._grid)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "resolution": self.resolution,
            "ideal_rate": self.ideal_rate,
            "grid": self._grid.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineCumulativeCurve":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls(
            resolution=state["resolution"], ideal_rate=state.get("ideal_rate")
        )
        accumulator._grid = GridCounts.from_state(state["grid"])
        return accumulator

    def curve(self, horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """(times, cumulative) — :func:`cumulative_curve`'s output."""
        times = time_edges(horizon, self.resolution)
        return times, self._grid.cumulative_on(times).astype(np.float64)

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: the sampled curve and its area metric."""
        times, cum = self.curve(horizon)
        return {
            "resolution": self.resolution,
            "times": times.tolist(),
            "cumulative": cum.tolist(),
            "area_vs_ideal": _area_from_curve(times, cum, self.ideal_rate),
        }


class OnlineRecovery:
    """Streaming :func:`recovery_time` for one change point.

    Maintains, for the pre-change window and every post-change window
    probe, the exact count of completions strictly below the probe time.
    Window probes are materialized lazily as completions advance — each
    new probe lies beyond every completion seen, so it starts at the
    current fold count — with the same ``change + window * k`` float
    expressions the offline kernel's ``np.arange`` construction uses, so
    the finalized recovery time is bit-identical.
    """

    name = "recovery"

    def __init__(
        self,
        change_time: float,
        window: float = 5.0,
        recovery_fraction: float = 0.9,
    ) -> None:
        """Probe recovery after ``change_time`` in ``window`` strides."""
        if window <= 0:
            raise ConfigurationError("window must be > 0")
        self.change_time = float(change_time)
        self.window = float(window)
        self.recovery_fraction = float(recovery_fraction)
        self._lo_lt = 0  # completions < change - window
        self._hi_lt = 0  # completions < change
        self._starts_lt: List[int] = []  # per-k: completions < change + w*k
        self._ends_lt: List[int] = []  # per-k: completions < (change + w*k) + w
        self._n = 0
        self._max = -np.inf

    def _start_value(self, k: int) -> float:
        # Same double ops as change_time + window * np.arange(n)[k].
        return self.change_time + self.window * float(k)

    def fold(self, block) -> None:
        """Fold one completed block (uses its sorted completions)."""
        completions = block.completions_sorted
        if completions.size == 0:
            return
        bmax = float(completions[-1])
        # Materialize every window probe up to the block's max first:
        # each is strictly beyond all previously folded completions.
        k = len(self._starts_lt)
        while self._start_value(k) <= bmax:
            self._starts_lt.append(self._n)
            self._ends_lt.append(self._n)
            k += 1
        self._lo_lt += int(
            np.searchsorted(
                completions, self.change_time - self.window, side="left"
            )
        )
        self._hi_lt += int(
            np.searchsorted(completions, self.change_time, side="left")
        )
        if self._starts_lt:
            ks = np.arange(len(self._starts_lt), dtype=np.float64)
            starts = self.change_time + self.window * ks
            below_starts = np.searchsorted(completions, starts, side="left")
            below_ends = np.searchsorted(completions, starts + self.window, side="left")
            for i in range(len(self._starts_lt)):
                self._starts_lt[i] += int(below_starts[i])
                self._ends_lt[i] += int(below_ends[i])
        self._n += int(completions.size)
        if bmax > self._max:
            self._max = bmax

    def merge(self, other: "OnlineRecovery") -> "OnlineRecovery":
        """Absorb another shard's window counters (bit-exact).

        A probe one side never materialized lies strictly beyond every
        completion that side folded, so its implicit counter is that
        side's total fold count — the same rule ``fold`` applies when it
        materializes a probe lazily.
        """
        if (
            other.change_time != self.change_time
            or other.window != self.window
            or other.recovery_fraction != self.recovery_fraction
        ):
            raise ConfigurationError(
                "cannot merge OnlineRecovery with different parameters"
            )
        k = max(len(self._starts_lt), len(other._starts_lt))

        def _at(values: List[int], j: int, total: int) -> int:
            return values[j] if j < len(values) else total

        self._starts_lt = [
            _at(self._starts_lt, j, self._n) + _at(other._starts_lt, j, other._n)
            for j in range(k)
        ]
        self._ends_lt = [
            _at(self._ends_lt, j, self._n) + _at(other._ends_lt, j, other._n)
            for j in range(k)
        ]
        self._lo_lt += other._lo_lt
        self._hi_lt += other._hi_lt
        self._n += other._n
        if other._max > self._max:
            self._max = other._max
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "change_time": self.change_time,
            "window": self.window,
            "recovery_fraction": self.recovery_fraction,
            "lo_lt": self._lo_lt,
            "hi_lt": self._hi_lt,
            "starts_lt": list(self._starts_lt),
            "ends_lt": list(self._ends_lt),
            "count": self._n,
            "max_value": None if np.isinf(self._max) else float(self._max),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineRecovery":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls(
            state["change_time"],
            window=state["window"],
            recovery_fraction=state["recovery_fraction"],
        )
        accumulator._lo_lt = int(state["lo_lt"])
        accumulator._hi_lt = int(state["hi_lt"])
        accumulator._starts_lt = [int(v) for v in state["starts_lt"]]
        accumulator._ends_lt = [int(v) for v in state["ends_lt"]]
        accumulator._n = int(state["count"])
        max_value = state.get("max_value")
        accumulator._max = -np.inf if max_value is None else float(max_value)
        return accumulator

    def recovery_seconds(self, horizon: float) -> Optional[float]:
        """:func:`recovery_time`'s answer for the folded stream."""
        if self._n == 0:
            return None
        before = self._hi_lt - self._lo_lt
        if before == 0:
            return None
        target = self.recovery_fraction * before
        n_windows = (
            int(np.floor((horizon - self.change_time) / self.window)) + 1
        )
        if n_windows <= 0:
            return None
        counts = np.zeros(n_windows, dtype=np.int64)
        m = min(n_windows, len(self._starts_lt))
        for i in range(m):
            counts[i] = self._ends_lt[i] - self._starts_lt[i]
        # Probes never materialized lie beyond every completion: empty.
        recovered = counts >= target
        if not recovered.any():
            return None
        starts = self.change_time + self.window * np.arange(n_windows)
        return float(starts[int(np.argmax(recovered))] - self.change_time)

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: the change point and its recovery time."""
        return {
            "change_time": self.change_time,
            "window": self.window,
            "recovery_fraction": self.recovery_fraction,
            "recovery_seconds": self.recovery_seconds(horizon),
        }
