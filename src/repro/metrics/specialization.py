"""Specialization metrics — Fig 1a.

For each scenario segment (one workload/data distribution), compute the
distribution of per-interval throughput (box stats, not just the mean)
and the segment's Φ distance from a baseline segment. Sorting segments
by Φ yields exactly the plot of Fig 1a: throughput box plots against
distribution distance, with hold-out segments markable for out-of-sample
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.errors import ConfigurationError
from repro.metrics._buckets import span_edges
from repro.metrics.descriptive import BoxStats, box_stats
from repro.metrics.similarity import data_phi, workload_phi


@dataclass(frozen=True)
class SegmentPerformance:
    """Fig 1a ingredients for one segment.

    Attributes:
        label: Segment label.
        phi: Distance from the baseline segment (0 = the baseline).
        phi_workload: Structural workload distance (1 - Jaccard).
        phi_data: Data-distribution distance (KS).
        throughput: Box stats of per-interval completed-query counts.
        mean_latency: Mean query latency in the segment.
        holdout: Whether the segment is marked as a hold-out.
    """

    label: str
    phi: float
    phi_workload: float
    phi_data: float
    throughput: BoxStats
    mean_latency: float
    holdout: bool = False


@dataclass
class SpecializationReport:
    """All segments of a run, sorted by Φ ascending."""

    sut_name: str
    baseline_label: str
    segments: List[SegmentPerformance]

    def rows(self) -> List[dict]:
        """Flat rows for CSV/printing (sorted by Φ)."""
        out = []
        for seg in self.segments:
            row = {
                "segment": seg.label,
                "phi": round(seg.phi, 4),
                "phi_workload": round(seg.phi_workload, 4),
                "phi_data": round(seg.phi_data, 4),
                "holdout": seg.holdout,
                "mean_latency": seg.mean_latency,
            }
            row.update(
                {f"tp_{k}": v for k, v in seg.throughput.row().items()}
            )
            out.append(row)
        return out


def _segment_throughputs(
    result: RunResult, label: str, lo: float, hi: float, interval: float
) -> np.ndarray:
    """Per-interval completed-query counts inside [lo, hi)."""
    completions = result.completions_sorted
    first, last = np.searchsorted(completions, (lo, hi), side="left")
    edges = span_edges(lo, hi, interval)
    if edges.size < 2:
        return np.zeros(0)
    counts, _ = np.histogram(completions[first:last], bins=edges)
    return counts / interval


def specialization_report(
    result: RunResult,
    scenario: Scenario,
    interval: float = 1.0,
    baseline_label: Optional[str] = None,
    phi_sample_size: int = 2000,
    holdout_labels: Tuple[str, ...] = (),
    phi_seed: int = 0,
) -> SpecializationReport:
    """Build the Fig 1a report for one run.

    Φ per segment combines the workload-structure distance (1 - Jaccard
    over spec signatures) and the data distance (KS between key samples
    drawn at each segment's midpoint), averaged — the paper only needs Φ
    to *order* the segments.

    Args:
        result: The run to analyze.
        scenario: The scenario that produced it (provides the specs the
            Φ estimators need).
        interval: Throughput bucketing interval (virtual seconds).
        baseline_label: Baseline segment (default: the first).
        phi_sample_size: Keys sampled per segment for the KS distance.
        holdout_labels: Segments to mark as hold-outs in the report.
        phi_seed: Sampling seed for Φ estimation.
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    by_label = {}
    for segment, (label, lo, hi) in zip(scenario.segments, scenario.segment_boundaries()):
        by_label[label] = (segment, lo, hi)
    if baseline_label is None:
        baseline_label = scenario.segments[0].label
    if baseline_label not in by_label:
        raise ConfigurationError(f"unknown baseline segment {baseline_label!r}")

    rng = np.random.default_rng(phi_seed)
    base_segment, base_lo, base_hi = by_label[baseline_label]
    base_mid = (base_lo + base_hi) / 2.0
    base_sample = base_segment.spec.key_drift.at(base_mid - base_lo).sample(
        rng, phi_sample_size
    )

    rows: List[SegmentPerformance] = []
    for label, (segment, lo, hi) in by_label.items():
        mid_local = (hi - lo) / 2.0
        sample = segment.spec.key_drift.at(mid_local).sample(rng, phi_sample_size)
        phi_w = workload_phi(base_segment.spec, segment.spec, at_time=mid_local)
        phi_d = data_phi(base_sample, sample, method="ks")
        throughputs = _segment_throughputs(result, label, lo, hi, interval)
        if throughputs.size == 0:
            throughputs = np.zeros(1)
        cols = result.columns
        in_segment = (cols.arrivals >= lo) & (cols.arrivals < hi)
        mean_latency = (
            float(np.mean(cols.latencies[in_segment])) if in_segment.any() else 0.0
        )
        rows.append(
            SegmentPerformance(
                label=label,
                phi=(phi_w + phi_d) / 2.0,
                phi_workload=phi_w,
                phi_data=phi_d,
                throughput=box_stats(throughputs),
                mean_latency=mean_latency,
                holdout=label in holdout_labels,
            )
        )
    rows.sort(key=lambda s: s.phi)
    return SpecializationReport(
        sut_name=result.sut_name, baseline_label=baseline_label, segments=rows
    )
