"""Specialization metrics — Fig 1a.

For each scenario segment (one workload/data distribution), compute the
distribution of per-interval throughput (box stats, not just the mean)
and the segment's Φ distance from a baseline segment. Sorting segments
by Φ yields exactly the plot of Fig 1a: throughput box plots against
distribution distance, with hold-out segments markable for out-of-sample
comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.core.scenario import Scenario
from repro.errors import ConfigurationError
from repro.metrics._buckets import GridCounts, span_edges
from repro.metrics.descriptive import BoxStats, box_stats
from repro.metrics.similarity import data_phi, scenario_phi, workload_phi


@dataclass(frozen=True)
class SegmentPerformance:
    """Fig 1a ingredients for one segment.

    Attributes:
        label: Segment label.
        phi: Distance from the baseline segment (0 = the baseline).
        phi_workload: Structural workload distance (1 - Jaccard).
        phi_data: Data-distribution distance (KS).
        throughput: Box stats of per-interval completed-query counts.
        mean_latency: Mean query latency in the segment.
        holdout: Whether the segment is marked as a hold-out.
    """

    label: str
    phi: float
    phi_workload: float
    phi_data: float
    throughput: BoxStats
    mean_latency: float
    holdout: bool = False


@dataclass
class SpecializationReport:
    """All segments of a run, sorted by Φ ascending."""

    sut_name: str
    baseline_label: str
    segments: List[SegmentPerformance]

    def rows(self) -> List[dict]:
        """Flat rows for CSV/printing (sorted by Φ)."""
        out = []
        for seg in self.segments:
            row = {
                "segment": seg.label,
                "phi": round(seg.phi, 4),
                "phi_workload": round(seg.phi_workload, 4),
                "phi_data": round(seg.phi_data, 4),
                "holdout": seg.holdout,
                "mean_latency": seg.mean_latency,
            }
            row.update(
                {f"tp_{k}": v for k, v in seg.throughput.row().items()}
            )
            out.append(row)
        return out


def _segment_throughputs(
    result: RunResult, label: str, lo: float, hi: float, interval: float
) -> np.ndarray:
    """Per-interval completed-query counts inside [lo, hi)."""
    completions = result.completions_sorted
    first, last = np.searchsorted(completions, (lo, hi), side="left")
    edges = span_edges(lo, hi, interval)
    if edges.size < 2:
        return np.zeros(0)
    counts, _ = np.histogram(completions[first:last], bins=edges)
    return counts / interval


def _segment_table(scenario: Scenario) -> Dict[str, tuple]:
    """``label -> (segment, lo, hi)`` (duplicate labels: last wins)."""
    by_label: Dict[str, tuple] = {}
    for segment, (label, lo, hi) in zip(
        scenario.segments, scenario.segment_boundaries()
    ):
        by_label[label] = (segment, lo, hi)
    return by_label


def _phi_pairs(
    by_label: Dict[str, tuple],
    baseline_label: str,
    phi_sample_size: int,
    phi_seed: int,
) -> Iterator[Tuple[float, float]]:
    """Per-segment ``(phi_workload, phi_data)`` in ``by_label`` order.

    One RNG, one draw order — shared by the batch and streaming report
    builders so their Φ estimates are bit-identical.
    """
    rng = np.random.default_rng(phi_seed)
    base_segment, base_lo, base_hi = by_label[baseline_label]
    base_mid = (base_lo + base_hi) / 2.0
    base_sample = base_segment.spec.key_drift.at(base_mid - base_lo).sample(
        rng, phi_sample_size
    )
    for segment, lo, hi in by_label.values():
        mid_local = (hi - lo) / 2.0
        sample = segment.spec.key_drift.at(mid_local).sample(rng, phi_sample_size)
        phi_w = workload_phi(base_segment.spec, segment.spec, at_time=mid_local)
        phi_d = data_phi(base_sample, sample, method="ks")
        yield phi_w, phi_d


def specialization_report(
    result: RunResult,
    scenario: Scenario,
    interval: float = 1.0,
    baseline_label: Optional[str] = None,
    phi_sample_size: int = 2000,
    holdout_labels: Tuple[str, ...] = (),
    phi_seed: int = 0,
) -> SpecializationReport:
    """Build the Fig 1a report for one run.

    Φ per segment combines the workload-structure distance (1 - Jaccard
    over spec signatures) and the data distance (KS between key samples
    drawn at each segment's midpoint), averaged — the paper only needs Φ
    to *order* the segments.

    Args:
        result: The run to analyze.
        scenario: The scenario that produced it (provides the specs the
            Φ estimators need).
        interval: Throughput bucketing interval (virtual seconds).
        baseline_label: Baseline segment (default: the first).
        phi_sample_size: Keys sampled per segment for the KS distance.
        holdout_labels: Segments to mark as hold-outs in the report.
        phi_seed: Sampling seed for Φ estimation.
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    by_label = _segment_table(scenario)
    if baseline_label is None:
        baseline_label = scenario.segments[0].label
    if baseline_label not in by_label:
        raise ConfigurationError(f"unknown baseline segment {baseline_label!r}")

    rows: List[SegmentPerformance] = []
    phis = _phi_pairs(by_label, baseline_label, phi_sample_size, phi_seed)
    for (label, (segment, lo, hi)), (phi_w, phi_d) in zip(by_label.items(), phis):
        throughputs = _segment_throughputs(result, label, lo, hi, interval)
        if throughputs.size == 0:
            throughputs = np.zeros(1)
        cols = result.columns
        in_segment = (cols.arrivals >= lo) & (cols.arrivals < hi)
        mean_latency = (
            float(np.mean(cols.latencies[in_segment])) if in_segment.any() else 0.0
        )
        rows.append(
            SegmentPerformance(
                label=label,
                phi=(phi_w + phi_d) / 2.0,
                phi_workload=phi_w,
                phi_data=phi_d,
                throughput=box_stats(throughputs),
                mean_latency=mean_latency,
                holdout=label in holdout_labels,
            )
        )
    rows.sort(key=lambda s: s.phi)
    return SpecializationReport(
        sut_name=result.sut_name, baseline_label=baseline_label, segments=rows
    )


def drift_specialization_curve(
    runs,
    segment_label: str = "drifted",
    interval: float = 1.0,
    phi_probe_size: int = 4096,
) -> List[dict]:
    """Fig-1a-style curve of performance against the drift factor.

    Each entry of ``runs`` is a ``(scenario, result)`` pair from one
    point of a :func:`repro.scenarios.drift_axis` sweep (the scenario
    must carry ``drift_factor``). For each point the row reports the
    *computed* Φ between the scenario's base and drifted segments
    (:func:`~repro.metrics.similarity.scenario_phi` over realized probe
    streams) plus the drifted segment's throughput box stats and mean
    latency — the drift-axis analogue of :func:`specialization_report`'s
    per-segment rows, sorted by drift factor ascending.
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    rows: List[dict] = []
    for scenario, result in runs:
        if scenario.drift_factor is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} carries no drift_factor; "
                "build sweep points with repro.scenarios.drift_axis"
            )
        by_label = _segment_table(scenario)
        if segment_label not in by_label:
            raise ConfigurationError(
                f"scenario {scenario.name!r} has no segment {segment_label!r}"
            )
        _segment, lo, hi = by_label[segment_label]
        throughputs = _segment_throughputs(result, segment_label, lo, hi, interval)
        if throughputs.size == 0:
            throughputs = np.zeros(1)
        cols = result.columns
        in_segment = (cols.arrivals >= lo) & (cols.arrivals < hi)
        mean_latency = (
            float(np.mean(cols.latencies[in_segment])) if in_segment.any() else 0.0
        )
        phi = scenario_phi(scenario, n=phi_probe_size)
        row = {
            "drift_factor": scenario.drift_factor,
            "phi": phi["phi"],
            "phi_data": phi["phi_data"],
            "phi_workload": phi["phi_workload"],
            "mean_latency": mean_latency,
        }
        row.update({f"tp_{k}": v for k, v in box_stats(throughputs).row().items()})
        rows.append(row)
    rows.sort(key=lambda r: r["drift_factor"])
    return rows


# -- streaming accumulators ----------------------------------------------------------


class OnlineSegmentStats:
    """Streaming per-segment throughput and latency statistics.

    One :class:`~repro.metrics._buckets.GridCounts` per scenario segment,
    anchored at the segment's start edge, fed the block completions that
    land inside ``[lo, hi)``. The reconstructed per-interval throughput
    arrays match :func:`_segment_throughputs` bit for bit; per-segment
    mean latency accumulates ``np.sum`` partials combined with
    ``math.fsum``, matching the offline mean to float tolerance (the
    summation trees differ — see DESIGN.md §9).
    """

    name = "segments"

    def __init__(self, scenario: Scenario, interval: float = 1.0) -> None:
        """Build one grid per segment of ``scenario``."""
        if interval <= 0:
            raise ConfigurationError("interval must be > 0")
        self.interval = float(interval)
        self.boundaries: List[Tuple[str, float, float]] = list(
            scenario.segment_boundaries()
        )
        self._grids = [
            GridCounts(self.interval, start=lo) for _, lo, _ in self.boundaries
        ]
        self._latency_parts: List[List[float]] = [[] for _ in self.boundaries]
        self._latency_counts: List[int] = [0 for _ in self.boundaries]

    def fold(self, block) -> None:
        """Fold one completed block into every segment's counters."""
        completions = block.completions_sorted
        for i, (_label, lo, hi) in enumerate(self.boundaries):
            first, last = np.searchsorted(completions, (lo, hi), side="left")
            if last > first:
                self._grids[i].fold_sorted(completions[first:last])
            in_segment = (block.arrivals >= lo) & (block.arrivals < hi)
            hits = int(np.count_nonzero(in_segment))
            if hits:
                self._latency_parts[i].append(
                    float(np.sum(block.latencies[in_segment]))
                )
                self._latency_counts[i] += hits

    def merge(self, other: "OnlineSegmentStats") -> "OnlineSegmentStats":
        """Absorb another shard's per-segment counters.

        Shards must merge in stream order so the ``fsum`` partial lists
        concatenate in the order a sequential fold would have appended
        them. Grid counts stay bit-exact; mean latency matches the
        unsharded fold bit-for-bit when shard boundaries coincide with
        block boundaries, to float tolerance otherwise.
        """
        if (
            other.interval != self.interval
            or other.boundaries != self.boundaries
        ):
            raise ConfigurationError(
                "cannot merge OnlineSegmentStats with different parameters"
            )
        for mine, theirs in zip(self._grids, other._grids):
            mine.merge(theirs)
        for i, parts in enumerate(other._latency_parts):
            self._latency_parts[i].extend(parts)
            self._latency_counts[i] += other._latency_counts[i]
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "interval": self.interval,
            "boundaries": [list(b) for b in self.boundaries],
            "grids": [grid.state_dict() for grid in self._grids],
            "latency_parts": [list(parts) for parts in self._latency_parts],
            "latency_counts": list(self._latency_counts),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineSegmentStats":
        """Rebuild the accumulator from a :meth:`state_dict` payload.

        Bypasses ``__init__`` (which wants a live scenario): the stored
        boundaries carry everything the accumulator needs.
        """
        accumulator = cls.__new__(cls)
        accumulator.interval = float(state["interval"])
        accumulator.boundaries = [
            (str(label), float(lo), float(hi))
            for label, lo, hi in state["boundaries"]
        ]
        accumulator._grids = [
            GridCounts.from_state(g) for g in state["grids"]
        ]
        accumulator._latency_parts = [
            [float(p) for p in parts] for parts in state["latency_parts"]
        ]
        accumulator._latency_counts = [
            int(c) for c in state["latency_counts"]
        ]
        return accumulator

    def throughputs(self, index: int) -> np.ndarray:
        """:func:`_segment_throughputs`'s array for segment ``index``."""
        _label, lo, hi = self.boundaries[index]
        edges = span_edges(lo, hi, self.interval)
        if edges.size < 2:
            return np.zeros(0)
        return self._grids[index].counts_on(edges) / self.interval

    def mean_latency(self, index: int) -> float:
        """Mean latency of queries arriving in segment ``index``."""
        n = self._latency_counts[index]
        return math.fsum(self._latency_parts[index]) / n if n else 0.0

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: per-segment throughput box rows."""
        segments = []
        for i, (label, lo, hi) in enumerate(self.boundaries):
            throughputs = self.throughputs(i)
            if throughputs.size == 0:
                throughputs = np.zeros(1)
            segments.append(
                {
                    "label": label,
                    "start": lo,
                    "end": hi,
                    "mean_latency": self.mean_latency(i),
                    "throughput": box_stats(throughputs).row(),
                }
            )
        return {"interval": self.interval, "segments": segments}


def online_specialization_report(
    accumulator: OnlineSegmentStats,
    scenario: Scenario,
    sut_name: str,
    baseline_label: Optional[str] = None,
    phi_sample_size: int = 2000,
    holdout_labels: Tuple[str, ...] = (),
    phi_seed: int = 0,
) -> SpecializationReport:
    """Build the Fig 1a report from a folded :class:`OnlineSegmentStats`.

    Matches :func:`specialization_report` on the same run: Φ comes from
    the shared :func:`_phi_pairs` draw order, throughput boxes from the
    accumulator's bit-identical per-interval arrays, and the mean
    latencies from its ``fsum`` partials (float tolerance).
    """
    by_label = _segment_table(scenario)
    if baseline_label is None:
        baseline_label = scenario.segments[0].label
    if baseline_label not in by_label:
        raise ConfigurationError(f"unknown baseline segment {baseline_label!r}")
    # Duplicate labels collapse last-wins offline; mirror by indexing the
    # accumulator at each label's final boundary entry.
    last_index = {
        label: i for i, (label, _lo, _hi) in enumerate(accumulator.boundaries)
    }

    rows: List[SegmentPerformance] = []
    phis = _phi_pairs(by_label, baseline_label, phi_sample_size, phi_seed)
    for (label, _entry), (phi_w, phi_d) in zip(by_label.items(), phis):
        index = last_index[label]
        throughputs = accumulator.throughputs(index)
        if throughputs.size == 0:
            throughputs = np.zeros(1)
        rows.append(
            SegmentPerformance(
                label=label,
                phi=(phi_w + phi_d) / 2.0,
                phi_workload=phi_w,
                phi_data=phi_d,
                throughput=box_stats(throughputs),
                mean_latency=accumulator.mean_latency(index),
                holdout=label in holdout_labels,
            )
        )
    rows.sort(key=lambda s: s.phi)
    return SpecializationReport(
        sut_name=sut_name, baseline_label=baseline_label, segments=rows
    )
