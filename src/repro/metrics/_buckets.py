"""Shared bucket-edge construction for every timeline metric.

The Fig 1 timeline metrics — ``latency_bands``, ``multi_latency_bands``,
``latency_timeline``, ``cumulative_curve``, per-segment throughput, and
``RunResult.throughput_series`` — all bucket the run's time axis. They
must agree on the bucket boundaries, or band totals drift away from
throughput counts (accumulating ``t += interval`` in a float loop gains
or loses a trailing bucket on long runs). This module is the single
source of those edges: one ``np.arange`` call, shared by everyone.

Bucket semantics follow :func:`numpy.histogram`: every bucket is
half-open ``[e_i, e_{i+1})`` except the last, which is closed so a
completion landing exactly on the final edge is still counted.
"""

from __future__ import annotations

import numpy as np


def time_edges(horizon: float, interval: float) -> np.ndarray:
    """Bucket edges ``0, interval, 2*interval, ...`` covering ``[0, horizon]``.

    The last edge is the first grid point at or after ``horizon``.
    Degenerate inputs (``horizon <= 0``) yield a single edge, i.e. zero
    buckets; callers validate ``interval > 0`` with their own error types.
    """
    return np.arange(0.0, float(horizon) + float(interval), float(interval))


def span_edges(lo: float, hi: float, interval: float) -> np.ndarray:
    """Bucket edges for an arbitrary span ``[lo, hi]`` (segment-local grids)."""
    return np.arange(float(lo), float(hi) + float(interval), float(interval))


def bucket_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per-bucket counts of ``values`` (histogram semantics; int64)."""
    if edges.size < 2:
        return np.zeros(0, dtype=np.int64)
    counts, _ = np.histogram(values, bins=edges)
    return counts.astype(np.int64)


def bucket_index(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Index of the bucket each value falls in (histogram semantics).

    Values below the first edge clip into bucket 0, values at or beyond
    the last edge clip into the final bucket (the closed last bin).
    """
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.clip(idx, 0, max(edges.size - 2, 0))


class GridCounts:
    """Single-pass value counts on the shared edge grid.

    The streaming engine behind every online timeline metric: fold
    sorted blocks of values one at a time and, at the end, read back the
    exact numbers the batch kernels compute from the full array —
    ``np.histogram`` bucket counts and ``searchsorted(..., 'right')``
    cumulative counts — on the :func:`time_edges` / :func:`span_edges`
    grid, *bit for bit*.

    The trick is that ``np.histogram``'s internals are additive over
    sorted blocks: for array bins it accumulates, per edge, the count of
    values strictly below the edge (and at-or-below for the final edge),
    then differences. This class maintains exactly those two per-edge
    counters (``# < e_i`` and ``# <= e_i``) on a grid that grows with
    the data: every edge is materialized as ``start + i * interval``
    with the same float expressions ``np.arange`` uses, so the grid
    matches the offline edge arrays bitwise, and a new edge (always
    beyond every value seen so far) starts at the current fold count.

    Blocks must arrive sorted ascending. Values outside the final grid
    need no precondition: a value below ``start`` sorts before edge 0
    and therefore before every later edge, so it never lands in any
    ``counts_on`` bucket — exactly how ``np.histogram`` drops
    below-range values — while still counting toward every
    ``cumulative_on`` edge, matching ``searchsorted(..., 'right')``.
    Values beyond the current coverage grow the grid via ``_cover``
    before folding. Both cases are pinned by regression tests
    (``tests/metrics/test_accumulator_merge.py``).

    Two instances on the same ``(start, interval)`` grid are additive:
    :meth:`merge` sums the per-edge counters after aligning coverage,
    and :meth:`state_dict` / :meth:`from_state` provide the JSON wire
    form that carries the counters across a process boundary, so
    sharded runs can fold disjoint value streams independently and
    still read back bit-identical counts.
    """

    __slots__ = ("interval", "start", "_lt", "_le", "_k", "_n", "_max")

    def __init__(self, interval: float, start: float = 0.0) -> None:
        """Anchor the grid at ``start`` with ``interval`` spacing."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.start = float(start)
        # Per-edge counters for the first _k grid edges: _lt[i] counts
        # folded values < edge i, _le[i] counts values <= edge i.
        self._lt = np.zeros(1, dtype=np.int64)
        self._le = np.zeros(1, dtype=np.int64)
        self._k = 1
        self._n = 0
        self._max = -np.inf

    @property
    def count(self) -> int:
        """Total values folded so far."""
        return self._n

    @property
    def max_value(self) -> float:
        """Largest value folded so far (``-inf`` before the first fold)."""
        return self._max

    def _edge_values(self, k: int) -> np.ndarray:
        # Element i is start + i*interval via the same double ops
        # np.arange's fill loop uses, so edges match time_edges bitwise.
        return self.start + np.arange(k, dtype=np.float64) * self.interval

    def _grow_to(self, k: int) -> None:
        """Materialize edges up to index ``k-1``, seeding them at ``_n``.

        Every new edge lies strictly beyond the current coverage (hence
        beyond every folded value), so its counters start at ``_n``.
        """
        if k <= self._k:
            return
        if k > self._lt.size:
            for name in ("_lt", "_le"):
                old = getattr(self, name)
                new = np.full(max(k, old.size * 2), self._n, dtype=np.int64)
                new[: self._k] = old[: self._k]
                setattr(self, name, new)
        else:
            self._lt[self._k : k] = self._n
            self._le[self._k : k] = self._n
        self._k = k

    def _cover(self, vmax: float) -> None:
        """Grow the grid until its last edge is at or beyond ``vmax``."""
        if float(self._edge_values(self._k)[-1]) >= vmax:
            return
        k = max(
            int(np.ceil((vmax - self.start) / self.interval)) + 1, self._k + 1
        )
        while float(self._edge_values(k)[-1]) < vmax:  # ceil rounding slack
            k += 1
        self._grow_to(k)

    def fold_sorted(self, values: np.ndarray) -> None:
        """Fold one block of ascending values into the counters."""
        if values.size == 0:
            return
        vmax = float(values[-1])
        self._cover(vmax)
        edges = self._edge_values(self._k)
        self._lt[: self._k] += np.searchsorted(values, edges, side="left")
        self._le[: self._k] += np.searchsorted(values, edges, side="right")
        self._n += int(values.size)
        if vmax > self._max:
            self._max = vmax

    def fold(self, values: np.ndarray) -> None:
        """Fold one block of values in any order (sorts a copy)."""
        self.fold_sorted(np.sort(np.asarray(values, dtype=np.float64)))

    def merge(self, other: "GridCounts") -> "GridCounts":
        """Absorb another accumulator folded on the same grid.

        Per-edge counters are additive: after growing to the wider
        coverage, ``other``'s counters are padded with ``other.count``
        beyond its own coverage (every edge there exceeds its max folded
        value) and summed in. The merged state is bit-identical to
        folding both value streams into one instance, in any order.
        """
        if other.interval != self.interval or other.start != self.start:
            raise ValueError(
                "cannot merge GridCounts on different grids: "
                f"({self.start}, {self.interval}) vs "
                f"({other.start}, {other.interval})"
            )
        self._grow_to(other._k)
        k = self._k
        for name in ("_lt", "_le"):
            theirs = np.full(k, other._n, dtype=np.int64)
            theirs[: other._k] = getattr(other, name)[: other._k]
            getattr(self, name)[:k] += theirs
        self._n += other._n
        if other._max > self._max:
            self._max = other._max
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot of the counters (see :meth:`from_state`)."""
        return {
            "interval": self.interval,
            "start": self.start,
            "lt": self._lt[: self._k].tolist(),
            "le": self._le[: self._k].tolist(),
            "count": self._n,
            "max_value": None if np.isinf(self._max) else float(self._max),
        }

    @classmethod
    def from_state(cls, state: dict) -> "GridCounts":
        """Rebuild an accumulator from a :meth:`state_dict` payload."""
        grid = cls(state["interval"], start=state["start"])
        grid._lt = np.asarray(state["lt"], dtype=np.int64).copy()
        grid._le = np.asarray(state["le"], dtype=np.int64).copy()
        grid._k = int(grid._lt.size)
        grid._n = int(state["count"])
        max_value = state.get("max_value")
        grid._max = -np.inf if max_value is None else float(max_value)
        return grid

    def _lt_on(self, k: int) -> np.ndarray:
        """``# < edge`` for the first ``k`` final-grid edges (padded)."""
        out = np.full(k, self._n, dtype=np.int64)
        m = min(k, self._k)
        out[:m] = self._lt[:m]
        return out

    def counts_on(self, edges: np.ndarray) -> np.ndarray:
        """``np.histogram(all values, bins=edges)`` counts, bit-identical.

        ``edges`` must be the final grid from :func:`time_edges` /
        :func:`span_edges` with this accumulator's start and interval
        (any edges beyond the folded coverage count as empty buckets).
        """
        k = int(edges.size)
        if k < 2:
            return np.zeros(0, dtype=np.int64)
        cum = self._lt_on(k)
        # np.histogram closes the last bin: its boundary count is <=.
        cum[k - 1] = self._le[k - 1] if k <= self._k else self._n
        return np.diff(cum)

    def cumulative_on(self, edges: np.ndarray) -> np.ndarray:
        """``searchsorted(sorted values, edges, 'right')``, bit-identical.

        This is the cumulative-completions view the Fig 1b curve needs:
        the count of values at or below each edge, int64.
        """
        k = int(edges.size)
        out = np.full(k, self._n, dtype=np.int64)
        m = min(k, self._k)
        out[:m] = self._le[:m]
        return out
