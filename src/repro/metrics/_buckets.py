"""Shared bucket-edge construction for every timeline metric.

The Fig 1 timeline metrics — ``latency_bands``, ``multi_latency_bands``,
``latency_timeline``, ``cumulative_curve``, per-segment throughput, and
``RunResult.throughput_series`` — all bucket the run's time axis. They
must agree on the bucket boundaries, or band totals drift away from
throughput counts (accumulating ``t += interval`` in a float loop gains
or loses a trailing bucket on long runs). This module is the single
source of those edges: one ``np.arange`` call, shared by everyone.

Bucket semantics follow :func:`numpy.histogram`: every bucket is
half-open ``[e_i, e_{i+1})`` except the last, which is closed so a
completion landing exactly on the final edge is still counted.
"""

from __future__ import annotations

import numpy as np


def time_edges(horizon: float, interval: float) -> np.ndarray:
    """Bucket edges ``0, interval, 2*interval, ...`` covering ``[0, horizon]``.

    The last edge is the first grid point at or after ``horizon``.
    Degenerate inputs (``horizon <= 0``) yield a single edge, i.e. zero
    buckets; callers validate ``interval > 0`` with their own error types.
    """
    return np.arange(0.0, float(horizon) + float(interval), float(interval))


def span_edges(lo: float, hi: float, interval: float) -> np.ndarray:
    """Bucket edges for an arbitrary span ``[lo, hi]`` (segment-local grids)."""
    return np.arange(float(lo), float(hi) + float(interval), float(interval))


def bucket_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per-bucket counts of ``values`` (histogram semantics; int64)."""
    if edges.size < 2:
        return np.zeros(0, dtype=np.int64)
    counts, _ = np.histogram(values, bins=edges)
    return counts.astype(np.int64)


def bucket_index(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Index of the bucket each value falls in (histogram semantics).

    Values below the first edge clip into bucket 0, values at or beyond
    the last edge clip into the final bucket (the closed last bin).
    """
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.clip(idx, 0, max(edges.size - 2, 0))
