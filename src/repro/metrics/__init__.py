"""The paper's new metrics (§V-D) plus the similarity machinery.

* :mod:`~repro.metrics.descriptive` — box-plot statistics (Fig 1a's
  per-distribution summaries).
* :mod:`~repro.metrics.similarity` — Φ estimators: Jaccard over plan
  subtrees, Kolmogorov–Smirnov, Maximum Mean Discrepancy.
* :mod:`~repro.metrics.specialization` — Fig 1a: throughput per
  workload/data distribution ordered by Φ.
* :mod:`~repro.metrics.adaptability` — Fig 1b: cumulative queries over
  time and area-difference single-value metrics.
* :mod:`~repro.metrics.sla` — Fig 1c: SLA violation bands and the
  adjustment-speed metric.
* :mod:`~repro.metrics.cost` — Fig 1d: training/execution cost breakdown,
  the DBA step function, and training-cost-to-outperform.
* :mod:`~repro.metrics.resilience` — Fig 1b/1c machinery applied to
  injected faults: per-fault recovery time, degraded-window SLA mass,
  area lost to faults.
"""

from repro.metrics.adaptability import (
    AdaptabilityReport,
    adaptability_report,
    area_between_systems,
    area_vs_ideal,
    cumulative_curve,
    latency_timeline,
    recovery_time,
)
from repro.metrics.cost import (
    CostBreakdown,
    DBAModel,
    TCOModel,
    cost_breakdown,
    training_cost_to_outperform,
)
from repro.metrics.descriptive import BoxStats, box_stats, percentile
from repro.metrics.similarity import (
    data_phi,
    jaccard_similarity,
    ks_statistic,
    mmd_rbf,
    workload_phi,
)
from repro.metrics.sla import (
    LatencyBand,
    adjustment_speed,
    calibrate_sla,
    latency_bands,
    multi_latency_bands,
)
from repro.metrics.resilience import (
    FaultImpact,
    ResilienceReport,
    area_lost_to_faults,
    degraded_sla_mass,
    fault_recovery_times,
    resilience_report,
)
from repro.metrics.specialization import (
    SegmentPerformance,
    SpecializationReport,
    specialization_report,
)

__all__ = [
    "BoxStats",
    "box_stats",
    "percentile",
    "jaccard_similarity",
    "ks_statistic",
    "mmd_rbf",
    "workload_phi",
    "data_phi",
    "SegmentPerformance",
    "SpecializationReport",
    "specialization_report",
    "AdaptabilityReport",
    "adaptability_report",
    "cumulative_curve",
    "area_vs_ideal",
    "area_between_systems",
    "latency_timeline",
    "recovery_time",
    "LatencyBand",
    "calibrate_sla",
    "latency_bands",
    "multi_latency_bands",
    "adjustment_speed",
    "CostBreakdown",
    "DBAModel",
    "TCOModel",
    "cost_breakdown",
    "training_cost_to_outperform",
    "FaultImpact",
    "ResilienceReport",
    "fault_recovery_times",
    "degraded_sla_mass",
    "area_lost_to_faults",
    "resilience_report",
]
