"""The paper's new metrics (§V-D) plus the similarity machinery.

* :mod:`~repro.metrics.descriptive` — box-plot statistics (Fig 1a's
  per-distribution summaries).
* :mod:`~repro.metrics.similarity` — Φ estimators: Jaccard over plan
  subtrees, Kolmogorov–Smirnov, Maximum Mean Discrepancy.
* :mod:`~repro.metrics.specialization` — Fig 1a: throughput per
  workload/data distribution ordered by Φ.
* :mod:`~repro.metrics.adaptability` — Fig 1b: cumulative queries over
  time and area-difference single-value metrics.
* :mod:`~repro.metrics.sla` — Fig 1c: SLA violation bands and the
  adjustment-speed metric.
* :mod:`~repro.metrics.cost` — Fig 1d: training/execution cost breakdown,
  the DBA step function, and training-cost-to-outperform.
* :mod:`~repro.metrics.resilience` — Fig 1b/1c machinery applied to
  injected faults: per-fault recovery time, degraded-window SLA mass,
  area lost to faults.
"""

from typing import List, Optional

from repro.metrics.adaptability import (
    AdaptabilityReport,
    OnlineCumulativeCurve,
    OnlineRecovery,
    OnlineThroughput,
    adaptability_report,
    adaptability_vs_drift,
    area_between_systems,
    area_vs_ideal,
    cumulative_curve,
    latency_timeline,
    recovery_time,
)
from repro.metrics.cost import (
    CostBreakdown,
    DBAModel,
    TCOModel,
    cost_breakdown,
    training_cost_to_outperform,
)
from repro.metrics.descriptive import (
    BoxStats,
    OnlineLatencyStats,
    RunningStats,
    box_stats,
    percentile,
)
from repro.metrics.similarity import (
    data_phi,
    expected_spec_phi,
    jaccard_similarity,
    ks_statistic,
    mmd_rbf,
    op_mix_distance,
    realized_spec_phi,
    realized_stream_phi,
    scenario_phi,
    workload_phi,
)
from repro.metrics.sla import (
    LatencyBand,
    OnlineAdjustmentSpeed,
    OnlineLatencyBands,
    adjustment_speed,
    calibrate_sla,
    latency_bands,
    multi_latency_bands,
)
from repro.metrics.resilience import (
    FaultImpact,
    OnlineResilience,
    ResilienceReport,
    area_lost_to_faults,
    degraded_sla_mass,
    fault_recovery_times,
    resilience_report,
)
from repro.metrics.specialization import (
    OnlineSegmentStats,
    SegmentPerformance,
    SpecializationReport,
    drift_specialization_curve,
    online_specialization_report,
    specialization_report,
)


def streaming_accumulators(
    scenario,
    sla: Optional[float] = None,
    interval: float = 1.0,
    resolution: float = 1.0,
    change_time: Optional[float] = None,
    adjustment_queries: int = 1000,
    plan=None,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> List[object]:
    """The default accumulator set for a streaming run of ``scenario``.

    Always includes throughput, the Fig 1b cumulative curve, latency
    summary stats, and per-segment stats. A recovery probe (and, with an
    SLA, adjustment speed) is added at ``change_time`` — defaulting to
    the first segment boundary when the scenario has several segments.
    An SLA adds Fig 1c latency bands; a fault ``plan`` adds resilience.

    Args:
        scenario: The scenario the run executes.
        sla: SLA threshold in seconds (enables band + adjustment/mass
            accumulators).
        interval: Bucket width for throughput/band/segment grids.
        resolution: Sample spacing for the cumulative curve.
        change_time: Distribution-change instant for recovery and
            adjustment speed; ``None`` picks the first segment boundary
            (skipped entirely for single-segment scenarios).
        adjustment_queries: N for the adjustment-speed window.
        plan: Optional :class:`~repro.faults.FaultPlan` to score.
        window: Recovery-probe window width in seconds.
        recovery_fraction: Fraction of pre-change throughput that counts
            as recovered.
    """
    accumulators: List[object] = [
        OnlineThroughput(interval=interval),
        OnlineCumulativeCurve(resolution=resolution),
        OnlineLatencyStats(),
        OnlineSegmentStats(scenario, interval=interval),
    ]
    if change_time is None:
        boundaries = scenario.segment_boundaries()
        if len(boundaries) > 1:
            change_time = float(boundaries[1][1])
    if change_time is not None:
        accumulators.append(
            OnlineRecovery(
                change_time, window=window, recovery_fraction=recovery_fraction
            )
        )
    if sla is not None:
        accumulators.append(OnlineLatencyBands(sla, interval=interval))
        if change_time is not None:
            accumulators.append(
                OnlineAdjustmentSpeed(change_time, adjustment_queries, sla)
            )
    if plan is not None:
        accumulators.append(
            OnlineResilience(
                plan,
                sla=sla,
                window=window,
                recovery_fraction=recovery_fraction,
            )
        )
    return accumulators


#: Streaming accumulator classes keyed by their ``name`` attribute —
#: the registry :func:`accumulator_from_state` uses to rebuild merged
#: accumulators from shard wire payloads.
STREAMING_ACCUMULATOR_TYPES = {
    cls.name: cls
    for cls in (
        OnlineThroughput,
        OnlineCumulativeCurve,
        OnlineRecovery,
        OnlineLatencyStats,
        OnlineLatencyBands,
        OnlineAdjustmentSpeed,
        OnlineSegmentStats,
        OnlineResilience,
    )
}


def accumulator_from_state(name: str, state: dict) -> object:
    """Rebuild a streaming accumulator from a ``(name, state)`` pair.

    ``name`` is the accumulator's ``name`` attribute as carried in a
    shard payload; ``state`` is its ``state_dict()``. Raises
    :class:`~repro.errors.ConfigurationError` for unregistered names
    (custom accumulators must be reconstructed by their own factory).
    """
    from repro.errors import ConfigurationError

    cls = STREAMING_ACCUMULATOR_TYPES.get(name)
    if cls is None:
        raise ConfigurationError(f"unknown streaming accumulator {name!r}")
    return cls.from_state(state)


__all__ = [
    "STREAMING_ACCUMULATOR_TYPES",
    "accumulator_from_state",
    "BoxStats",
    "RunningStats",
    "box_stats",
    "percentile",
    "OnlineThroughput",
    "OnlineCumulativeCurve",
    "OnlineRecovery",
    "OnlineLatencyStats",
    "OnlineLatencyBands",
    "OnlineAdjustmentSpeed",
    "OnlineSegmentStats",
    "OnlineResilience",
    "online_specialization_report",
    "streaming_accumulators",
    "jaccard_similarity",
    "ks_statistic",
    "mmd_rbf",
    "workload_phi",
    "data_phi",
    "op_mix_distance",
    "expected_spec_phi",
    "realized_stream_phi",
    "realized_spec_phi",
    "scenario_phi",
    "SegmentPerformance",
    "SpecializationReport",
    "specialization_report",
    "drift_specialization_curve",
    "AdaptabilityReport",
    "adaptability_report",
    "adaptability_vs_drift",
    "cumulative_curve",
    "area_vs_ideal",
    "area_between_systems",
    "latency_timeline",
    "recovery_time",
    "LatencyBand",
    "calibrate_sla",
    "latency_bands",
    "multi_latency_bands",
    "adjustment_speed",
    "CostBreakdown",
    "DBAModel",
    "TCOModel",
    "cost_breakdown",
    "training_cost_to_outperform",
    "FaultImpact",
    "ResilienceReport",
    "fault_recovery_times",
    "degraded_sla_mass",
    "area_lost_to_faults",
    "resilience_report",
]
