"""Cost metrics — Fig 1d and Lesson 4.

§V-D3 proposes breaking the cost-per-performance metric "into training
and execution time", comparing the learned system's training-cost →
throughput curve against a traditional system whose cost "is a step
function representing different optimization efforts" by a database
administrator, and deriving "a new metric: the training cost to
outperform a traditional system."

:class:`DBAModel` is that step function; :class:`TCOModel` prices a
whole deployment (hardware + training + DBA) over a horizon; and
:func:`training_cost_to_outperform` computes the new metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


from repro.core.phases import TrainingEvent, event_from_telemetry
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.observability import Trace


@dataclass(frozen=True)
class DBAModel:
    """Manual-tuning cost as a step function of optimization effort.

    Attributes:
        hourly_rate: Loaded DBA cost per hour (salary + overhead).
        hours_per_level: Cumulative DBA hours to reach each tuning level
            (level 0 = shipped defaults = 0 hours). Must be ascending.
    """

    hourly_rate: float = 75.0
    hours_per_level: Tuple[float, ...] = (0.0, 8.0, 40.0, 120.0)

    def __post_init__(self) -> None:
        if self.hourly_rate < 0:
            raise ConfigurationError("hourly_rate must be >= 0")
        if list(self.hours_per_level) != sorted(self.hours_per_level):
            raise ConfigurationError("hours_per_level must be ascending")
        if self.hours_per_level and self.hours_per_level[0] != 0.0:
            raise ConfigurationError("level 0 must cost 0 hours")

    @property
    def levels(self) -> int:
        """Number of tuning levels (including level 0)."""
        return len(self.hours_per_level)

    def cost_of_level(self, level: int) -> float:
        """Cumulative dollars to reach ``level``."""
        if not 0 <= level < self.levels:
            raise ConfigurationError(f"invalid level {level}")
        return self.hours_per_level[level] * self.hourly_rate

    def level_at_cost(self, budget: float) -> int:
        """Highest tuning level affordable within ``budget`` dollars."""
        level = 0
        for i in range(self.levels):
            if self.cost_of_level(i) <= budget:
                level = i
        return level


@dataclass(frozen=True)
class TCOModel:
    """Total-cost-of-ownership over an ownership horizon.

    Attributes:
        hardware_monthly: Base serving-hardware cost per month.
        horizon_months: Ownership horizon (the paper notes TCO is
            "typically three years").
        dba: The manual-tuning cost model.
    """

    hardware_monthly: float = 300.0
    horizon_months: float = 36.0
    dba: DBAModel = field(default_factory=DBAModel)

    def traditional_tco(self, tuning_level: int, retunes: int = 0) -> float:
        """TCO of a traditional system.

        Args:
            tuning_level: DBA effort level maintained.
            retunes: Number of times the DBA must redo the tuning over
                the horizon (workload changes → re-tuning; Lesson 4's
                hidden recurring cost).
        """
        tuning = self.dba.cost_of_level(tuning_level) * (1 + max(0, retunes))
        return self.hardware_monthly * self.horizon_months + tuning

    def learned_tco(
        self, training_cost_per_session: float, sessions: int
    ) -> float:
        """TCO of a learned system: hardware + all training sessions."""
        return (
            self.hardware_monthly * self.horizon_months
            + max(0, sessions) * max(0.0, training_cost_per_session)
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Per-run cost/performance decomposition (the Fig 1d rows).

    Attributes:
        sut_name: System name.
        training_cost: Dollars of training during the run.
        execution_cost: Dollars of serving hardware over the run's
            virtual duration.
        throughput: Mean completed queries/second.
        cost_per_kquery: Total dollars per thousand completed queries.
    """

    sut_name: str
    training_cost: float
    execution_cost: float
    throughput: float
    cost_per_kquery: float

    @property
    def total_cost(self) -> float:
        """Training + execution."""
        return self.training_cost + self.execution_cost


def phases_from_trace(trace: Trace) -> List[TrainingEvent]:
    """Rebuild measured :class:`TrainingEvent` s from a run's trace.

    The driver annotates every train/adapt span with a
    ``training_event`` attribute holding the exact event fields (see
    :func:`repro.core.phases.event_to_telemetry`), so a stored trace is
    a second, independent source of the run's training timeline:
    feeding the result through :func:`cost_breakdown` with these events
    reproduces the breakdown computed from the result's own
    ``training_events`` exactly.
    """
    events: List[TrainingEvent] = []
    for span in trace.walk():
        payload = span.attrs.get("training_event")
        if payload is not None:
            events.append(event_from_telemetry(payload))
    events.sort(key=lambda e: e.start)
    return events


def cost_breakdown(
    result: RunResult,
    serving_dollars_per_hour: float = 0.40,
    training_events: Optional[Sequence[TrainingEvent]] = None,
) -> CostBreakdown:
    """Split a run's cost into training and execution (§V-D3).

    Execution cost prices the run's virtual duration on the serving
    hardware; training cost sums the run's training events — or, when
    ``training_events`` is given (e.g. rebuilt from a trace via
    :func:`phases_from_trace`), that sequence instead.
    """
    duration = result.horizon
    execution_cost = duration / 3600.0 * serving_dollars_per_hour
    if training_events is None:
        training_cost = result.total_training_cost()
    else:
        training_cost = float(sum(e.cost for e in training_events))
    n = result.num_queries
    per_kquery = (execution_cost + training_cost) / (n / 1000.0) if n else 0.0
    return CostBreakdown(
        sut_name=result.sut_name,
        training_cost=training_cost,
        execution_cost=execution_cost,
        throughput=result.mean_throughput(),
        cost_per_kquery=per_kquery,
    )


def training_cost_to_outperform(
    learned_curve: Sequence[Tuple[float, float]],
    traditional_levels: Sequence[Tuple[float, float]],
) -> Optional[float]:
    """The paper's new metric: min training cost where learned wins.

    Args:
        learned_curve: ``(training_cost, throughput)`` points for the
            learned system, any order.
        traditional_levels: ``(dba_cost, throughput)`` per tuning level.
            At a given budget the traditional system runs at the best
            level it can afford.

    Returns:
        The smallest training cost ``c`` at which the learned system's
        throughput meets or beats the traditional system's throughput at
        the same budget ``c`` — or ``None`` if it never does on the
        sampled curve.
    """
    if not learned_curve or not traditional_levels:
        raise ConfigurationError("both curves need at least one point")
    levels = sorted(traditional_levels)

    def traditional_at(budget: float) -> float:
        best = 0.0
        for cost, tp in levels:
            if cost <= budget:
                best = tp
        return best

    for cost, throughput in sorted(learned_curve):
        if throughput >= traditional_at(cost):
            return float(cost)
    return None
