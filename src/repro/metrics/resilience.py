"""Resilience metrics: scoring runs under injected faults.

The paper's dynamic metric families (Fig 1b's area differences, Fig 1c's
SLA bands) quantify behavior around *distribution* changes; these
kernels apply the same machinery to the *environmental* changes injected
by a :class:`~repro.faults.FaultPlan`:

* :func:`fault_recovery_times` — Fig 1b recovery time measured at each
  fault's onset instead of a segment boundary.
* :func:`degraded_sla_mass` — Fig 1c's adjustment-speed idea restricted
  to queries that arrived inside a fault's degraded window: the total
  over-SLA latency attributable to faults.
* :func:`area_lost_to_faults` — Fig 1b's area-between-systems applied
  to a faulted run vs. its fault-free twin (same scenario, seed, and
  driver config, no plan): query·seconds of progress the faults cost.

All kernels reuse the exact step-integration / searchsorted machinery
from :mod:`repro.metrics.adaptability`, so resilience numbers are
directly comparable with the drift-driven adaptability numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.metrics.adaptability import (
    OnlineRecovery,
    area_between_systems,
    recovery_time,
)

__all__ = [
    "FaultImpact",
    "OnlineResilience",
    "ResilienceReport",
    "fault_recovery_times",
    "degraded_sla_mass",
    "area_lost_to_faults",
    "resilience_report",
]


@dataclass(frozen=True)
class FaultImpact:
    """Recovery scoring for one injected fault.

    Attributes:
        kind: Fault kind ("latency", "degradation", "stall", "crash").
        at: Fault onset in virtual seconds.
        recovery_seconds: Throughput recovery time after the onset
            (:func:`repro.metrics.adaptability.recovery_time` semantics),
            or ``None`` when the run ended before recovering or the
            pre-fault window was idle.
    """

    kind: str
    at: float
    recovery_seconds: Optional[float]


@dataclass(frozen=True)
class ResilienceReport:
    """Single-value resilience summary for one faulted run.

    Attributes:
        sut_name: The run's SUT.
        impacts: Per-fault recovery scoring, in onset order.
        degraded_sla_mass: Over-SLA latency seconds of queries arriving
            in degraded windows (``None`` when no SLA was supplied).
        area_lost: Query·seconds lost vs. the fault-free twin run
            (``None`` when no baseline was supplied).
    """

    sut_name: str
    impacts: Tuple[FaultImpact, ...]
    degraded_sla_mass: Optional[float]
    area_lost: Optional[float]

    @property
    def recovered_faults(self) -> int:
        """Faults the system recovered from before the run ended."""
        return sum(1 for i in self.impacts if i.recovery_seconds is not None)

    @property
    def worst_recovery_seconds(self) -> Optional[float]:
        """Slowest measured recovery (``None`` if nothing recovered)."""
        measured = [
            i.recovery_seconds
            for i in self.impacts
            if i.recovery_seconds is not None
        ]
        return max(measured) if measured else None


def _plan_for(result: RunResult, plan: Optional[FaultPlan]) -> FaultPlan:
    """Resolve the fault plan: explicit, or from the run's own record."""
    if plan is not None:
        return plan
    described = (result.scenario_description or {}).get("faults")
    if not described:
        raise ConfigurationError(
            "run records no fault plan; pass one explicitly via plan="
        )
    return FaultPlan.from_dict(described)


def fault_recovery_times(
    result: RunResult,
    plan: Optional[FaultPlan] = None,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> List[FaultImpact]:
    """Throughput recovery time at each fault onset.

    Applies :func:`repro.metrics.adaptability.recovery_time` at every
    fault's onset time (window fault start / point fault firing time),
    so a fault the system shrugged off scores near zero and an outage
    with a long queue drain scores its true recovery span.

    Args:
        plan: The injected plan; defaults to the one recorded in the
            run's scenario description.
        window: Throughput comparison window (seconds).
        recovery_fraction: Fraction of pre-fault throughput that counts
            as recovered.
    """
    resolved = _plan_for(result, plan)
    impacts = []
    for start, _end, kind in resolved.degraded_windows():
        impacts.append(
            FaultImpact(
                kind=kind,
                at=start,
                recovery_seconds=recovery_time(
                    result,
                    start,
                    window=window,
                    recovery_fraction=recovery_fraction,
                ),
            )
        )
    return impacts


def degraded_sla_mass(
    result: RunResult,
    sla: float,
    plan: Optional[FaultPlan] = None,
) -> float:
    """Total over-SLA latency of queries arriving in degraded windows.

    A query is attributed to a fault when its *arrival* falls in the
    fault's degraded interval (window faults: ``[start, end)``; stalls:
    ``[at, at + duration)``; crashes: ``[at, at + recovery_seconds)``).
    The mass is the sum of ``max(0, latency - sla)`` over attributed
    queries — the same units as Fig 1c's adjustment speed, so the two
    can be compared side by side. Overlapping windows count each query
    once. Units: seconds.
    """
    if sla <= 0:
        raise ConfigurationError("sla must be > 0")
    resolved = _plan_for(result, plan)
    cols = result.columns
    if cols.size == 0:
        return 0.0
    arrivals = cols.arrivals
    mask = np.zeros(arrivals.size, dtype=bool)
    for start, end, _kind in resolved.degraded_windows():
        mask |= (arrivals >= start) & (arrivals < end)
    if not mask.any():
        return 0.0
    over = np.maximum(0.0, cols.latencies[mask] - sla)
    return float(over.sum())


def area_lost_to_faults(faulted: RunResult, baseline: RunResult) -> float:
    """Query·seconds of progress lost to faults vs. the fault-free twin.

    ``baseline`` must be the same (SUT, scenario, seed, driver config)
    run without the fault plan; the drivers' determinism guarantees the
    two runs differ only by the injected faults, so the exact
    area-between-curves (baseline minus faulted) is entirely
    fault-attributable. Positive = the faults cost progress.
    """
    return area_between_systems(baseline, faulted)


def resilience_report(
    result: RunResult,
    plan: Optional[FaultPlan] = None,
    sla: Optional[float] = None,
    baseline: Optional[RunResult] = None,
    window: float = 5.0,
    recovery_fraction: float = 0.9,
) -> ResilienceReport:
    """Compute the full resilience summary for one faulted run.

    Args:
        plan: Injected plan (default: recorded in the run).
        sla: SLA threshold for :func:`degraded_sla_mass` (skipped when
            ``None``; calibrate with
            :func:`repro.metrics.sla.calibrate_sla` on a fault-free
            baseline).
        baseline: Fault-free twin run for :func:`area_lost_to_faults`
            (skipped when ``None``).
    """
    impacts = fault_recovery_times(
        result, plan, window=window, recovery_fraction=recovery_fraction
    )
    return ResilienceReport(
        sut_name=result.sut_name,
        impacts=tuple(impacts),
        degraded_sla_mass=(
            degraded_sla_mass(result, sla, plan) if sla is not None else None
        ),
        area_lost=(
            area_lost_to_faults(result, baseline) if baseline is not None else None
        ),
    )


# -- streaming accumulators ----------------------------------------------------------


class OnlineResilience:
    """Streaming :func:`fault_recovery_times` + :func:`degraded_sla_mass`.

    One :class:`~repro.metrics.adaptability.OnlineRecovery` per degraded
    window onset (bit-identical recovery times) plus, when an SLA is
    supplied, per-block over-SLA partial sums over queries arriving in
    degraded windows, combined with ``math.fsum`` (float tolerance vs.
    the offline pairwise sum — see DESIGN.md §9).
    ``area_lost_to_faults`` needs a second full run, so it stays offline.
    """

    name = "resilience"

    def __init__(
        self,
        plan: FaultPlan,
        sla: Optional[float] = None,
        window: float = 5.0,
        recovery_fraction: float = 0.9,
    ) -> None:
        """Track every degraded window of ``plan`` (SLA optional)."""
        if sla is not None and sla <= 0:
            raise ConfigurationError("sla must be > 0")
        self.sla = float(sla) if sla is not None else None
        self.window = float(window)
        self.recovery_fraction = float(recovery_fraction)
        self.windows: List[Tuple[float, float, str]] = list(
            plan.degraded_windows()
        )
        self._recoveries = [
            OnlineRecovery(start, window=window, recovery_fraction=recovery_fraction)
            for start, _end, _kind in self.windows
        ]
        self._mass_parts: List[float] = []

    def fold(self, block) -> None:
        """Fold one completed block into every fault's counters."""
        for recovery in self._recoveries:
            recovery.fold(block)
        if self.sla is None or not self.windows:
            return
        arrivals = block.arrivals
        mask = np.zeros(arrivals.size, dtype=bool)
        for start, end, _kind in self.windows:
            mask |= (arrivals >= start) & (arrivals < end)
        if mask.any():
            over = np.maximum(0.0, block.latencies[mask] - self.sla)
            self._mass_parts.append(float(np.sum(over)))

    def merge(self, other: "OnlineResilience") -> "OnlineResilience":
        """Absorb another shard's fault counters.

        Recovery window counts merge bit-exactly; the over-SLA mass
        partials concatenate in stream order (merge shards in order),
        matching the unsharded ``fsum`` bit-for-bit when shard
        boundaries coincide with block boundaries.
        """
        if (
            other.sla != self.sla
            or other.window != self.window
            or other.recovery_fraction != self.recovery_fraction
            or other.windows != self.windows
        ):
            raise ConfigurationError(
                "cannot merge OnlineResilience with different parameters"
            )
        for mine, theirs in zip(self._recoveries, other._recoveries):
            mine.merge(theirs)
        self._mass_parts.extend(other._mass_parts)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "sla": self.sla,
            "window": self.window,
            "recovery_fraction": self.recovery_fraction,
            "windows": [list(w) for w in self.windows],
            "recoveries": [r.state_dict() for r in self._recoveries],
            "mass_parts": list(self._mass_parts),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineResilience":
        """Rebuild the accumulator from a :meth:`state_dict` payload.

        Bypasses ``__init__`` (which wants a live fault plan): the
        stored degraded windows carry everything the accumulator needs.
        """
        accumulator = cls.__new__(cls)
        accumulator.sla = (
            float(state["sla"]) if state.get("sla") is not None else None
        )
        accumulator.window = float(state["window"])
        accumulator.recovery_fraction = float(state["recovery_fraction"])
        accumulator.windows = [
            (float(start), float(end), str(kind))
            for start, end, kind in state["windows"]
        ]
        accumulator._recoveries = [
            OnlineRecovery.from_state(r) for r in state["recoveries"]
        ]
        accumulator._mass_parts = [float(p) for p in state["mass_parts"]]
        return accumulator

    def impacts(self, horizon: float) -> List[FaultImpact]:
        """:func:`fault_recovery_times`'s rows for the folded stream."""
        return [
            FaultImpact(
                kind=kind,
                at=start,
                recovery_seconds=recovery.recovery_seconds(horizon),
            )
            for (start, _end, kind), recovery in zip(
                self.windows, self._recoveries
            )
        ]

    def degraded_mass(self) -> Optional[float]:
        """Over-SLA mass in degraded windows (``None`` without an SLA)."""
        if self.sla is None:
            return None
        return math.fsum(self._mass_parts)

    def report(self, horizon: float, sut_name: str) -> ResilienceReport:
        """:func:`resilience_report`'s summary (minus ``area_lost``)."""
        return ResilienceReport(
            sut_name=sut_name,
            impacts=tuple(self.impacts(horizon)),
            degraded_sla_mass=self.degraded_mass(),
            area_lost=None,
        )

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: per-fault impacts and the SLA mass."""
        return {
            "sla": self.sla,
            "window": self.window,
            "recovery_fraction": self.recovery_fraction,
            "impacts": [
                {
                    "kind": impact.kind,
                    "at": impact.at,
                    "recovery_seconds": impact.recovery_seconds,
                }
                for impact in self.impacts(horizon)
            ],
            "degraded_sla_mass": self.degraded_mass(),
        }
